"""Unit tests for the zero-skipping axis arithmetic."""

import pytest

from repro.core import (
    AxisError,
    axis_add,
    axis_diff,
    axis_distance,
    axis_next,
    axis_points,
    axis_prev,
)


class TestAxisAdd:
    def test_positive_stays_positive(self):
        assert axis_add(1, 1) == 2
        assert axis_add(5, 10) == 15

    def test_negative_stays_negative(self):
        assert axis_add(-5, 2) == -3
        assert axis_add(-5, -2) == -7

    def test_crossing_zero_forward(self):
        assert axis_add(-1, 1) == 1
        assert axis_add(-3, 3) == 1
        assert axis_add(-3, 5) == 3

    def test_crossing_zero_backward(self):
        assert axis_add(1, -1) == -1
        assert axis_add(3, -3) == -1
        assert axis_add(2, -5) == -4

    def test_zero_delta(self):
        assert axis_add(7, 0) == 7
        assert axis_add(-7, 0) == -7

    def test_point_zero_rejected(self):
        with pytest.raises(AxisError):
            axis_add(0, 1)

    def test_non_int_rejected(self):
        with pytest.raises(AxisError):
            axis_add(1.5, 1)

    def test_bool_rejected(self):
        with pytest.raises(AxisError):
            axis_add(True, 1)

    def test_never_lands_on_zero(self):
        for t in range(-10, 11):
            if t == 0:
                continue
            for d in range(-15, 16):
                assert axis_add(t, d) != 0


class TestAxisDiff:
    def test_same_sign(self):
        assert axis_diff(5, 2) == 3
        assert axis_diff(-2, -5) == 3

    def test_across_zero(self):
        assert axis_diff(1, -1) == 1
        assert axis_diff(-1, 1) == -1
        assert axis_diff(3, -2) == 4

    def test_inverse_of_add(self):
        for t in [-7, -1, 1, 3, 12]:
            for d in [-9, -1, 0, 1, 9]:
                assert axis_diff(axis_add(t, d), t) == d

    def test_zero_rejected(self):
        with pytest.raises(AxisError):
            axis_diff(0, 1)
        with pytest.raises(AxisError):
            axis_diff(1, 0)


class TestAxisDistance:
    def test_adjacent(self):
        assert axis_distance(1, 2) == 2
        assert axis_distance(-1, 1) == 2

    def test_single_point(self):
        assert axis_distance(5, 5) == 1

    def test_symmetric(self):
        assert axis_distance(3, -4) == axis_distance(-4, 3) == 7


class TestSuccessorPredecessor:
    def test_next_skips_zero(self):
        assert axis_next(-1) == 1

    def test_prev_skips_zero(self):
        assert axis_prev(1) == -1

    def test_roundtrip(self):
        for t in [-3, -1, 1, 4]:
            assert axis_prev(axis_next(t)) == t


class TestAxisPoints:
    def test_simple_range(self):
        assert list(axis_points(1, 4)) == [1, 2, 3, 4]

    def test_spanning_zero(self):
        assert list(axis_points(-2, 2)) == [-2, -1, 1, 2]

    def test_empty_when_inverted(self):
        assert list(axis_points(4, 1)) == []

    def test_zero_endpoint_rejected(self):
        with pytest.raises(AxisError):
            list(axis_points(0, 3))
