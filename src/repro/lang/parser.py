"""Recursive-descent parser for the calendar expression language.

Grammar (informal; tokens per :mod:`repro.lang.lexer`):

.. code-block:: text

   script    := '{' stmt* '}' | stmt*
   stmt      := 'if' '(' expr ')' block ('else' block)?
              | 'while' '(' expr ')' block
              | 'return' '(' expr ')' ';'?
              | IDENT '=' expr ';'
              | expr ';'
              | ';'                          (empty statement)
   block     := '{' stmt* '}' | stmt
   expr      := selchain (('+' | '-' | '&') selchain)*
   selchain  := ('[' pred ']' '/')* chain
   chain     := atom ((':' op ':' | '.' op '.') chain)?     (right assoc)
   op        := IDENT | '<' | '<='
   atom      := NUMBER '/' atom                              (label select)
              | IDENT '(' args ')' | IDENT | 'today'
              | '(' expr ')' | STRING | NUMBER
   pred      := item ((';' | ',') item)*
   item      := 'n' | '-'? NUMBER ('-' NUMBER)?              (index / range)
   args      := (expr | '*') ((',' | ';') (expr | '*'))*

Selection binds *looser* than foreach chains (``[3]/WEEKS:overlaps:Jan-1993``
selects from the chain's result, per the paper's worked example) and
tighter than ``+``/``-``.  Foreach chains associate to the right — the
paper's parsing algorithm explicitly reads expressions right to left.
"""

from __future__ import annotations

from repro.core.algebra import LAST, SelectionPredicate
from repro.lang.ast import (
    Assign,
    Expr,
    ExprStmt,
    ForEach,
    FunCall,
    If,
    IntervalLit,
    LabelSelect,
    Name,
    NumberLit,
    Return,
    Script,
    Select,
    SetOp,
    Stmt,
    StringLit,
    Today,
    While,
)
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenType

__all__ = ["Parser", "parse_script", "parse_expression"]

_T = TokenType


class Parser:
    """A single-use recursive-descent parser over a token list."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not _T.EOF:
            self._pos += 1
        return token

    def _check(self, *types: TokenType) -> bool:
        return self._peek().type in types

    def _match(self, *types: TokenType) -> Token | None:
        if self._check(*types):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ParseError(
                f"expected {what}, found {token.text or 'end of input'!r}",
                token.line, token.column)
        return self._advance()

    # -- entry points -----------------------------------------------------------

    def parse_script(self) -> Script:
        """Parse a (possibly braced) statement list."""
        braced = self._match(_T.LBRACE) is not None
        body: list[Stmt] = []
        while not self._check(_T.EOF):
            if braced and self._check(_T.RBRACE):
                break
            stmt = self._statement()
            if stmt is not None:
                body.append(stmt)
        if braced:
            self._expect(_T.RBRACE, "'}'")
        token = self._peek()
        if token.type is not _T.EOF:
            raise ParseError(f"unexpected trailing input {token.text!r}",
                             token.line, token.column)
        return Script(tuple(body))

    def parse_expression(self) -> Expr:
        """Parse a single calendar expression (rejects trailing input)."""
        expr = self._expression()
        token = self._peek()
        if token.type is not _T.EOF:
            raise ParseError(f"unexpected trailing input {token.text!r}",
                             token.line, token.column)
        return expr

    # -- statements ---------------------------------------------------------------

    def _statement(self) -> Stmt | None:
        if self._match(_T.SEMI):
            return None
        if self._match(_T.IF):
            return self._if_statement()
        if self._match(_T.WHILE):
            return self._while_statement()
        if self._match(_T.RETURN):
            return self._return_statement()
        if (self._check(_T.IDENT) and self._peek(1).type is _T.ASSIGN):
            name = self._advance().text
            self._advance()  # '='
            expr = self._expression()
            self._expect(_T.SEMI, "';' after assignment")
            return Assign(name, expr)
        expr = self._expression()
        self._expect(_T.SEMI, "';' after expression statement")
        return ExprStmt(expr)

    def _block(self) -> tuple:
        if self._match(_T.LBRACE):
            body: list[Stmt] = []
            while not self._check(_T.RBRACE, _T.EOF):
                stmt = self._statement()
                if stmt is not None:
                    body.append(stmt)
            self._expect(_T.RBRACE, "'}'")
            return tuple(body)
        stmt = self._statement()
        return (stmt,) if stmt is not None else ()

    def _if_statement(self) -> If:
        self._expect(_T.LPAREN, "'(' after if")
        condition = self._expression()
        self._expect(_T.RPAREN, "')' after if condition")
        then_body = self._block()
        else_body: tuple = ()
        if self._match(_T.ELSE):
            else_body = self._block()
        return If(condition, then_body, else_body)

    def _while_statement(self) -> While:
        self._expect(_T.LPAREN, "'(' after while")
        condition = self._expression()
        self._expect(_T.RPAREN, "')' after while condition")
        body = self._block()
        return While(condition, body)

    def _return_statement(self) -> Return:
        self._expect(_T.LPAREN, "'(' after return")
        expr = self._expression()
        self._expect(_T.RPAREN, "')' after return expression")
        self._match(_T.SEMI)
        return Return(expr)

    # -- expressions -----------------------------------------------------------------

    def _expression(self) -> Expr:
        left = self._selchain()
        while True:
            op_token = self._match(_T.PLUS, _T.MINUS, _T.AMP)
            if op_token is None:
                return left
            right = self._selchain()
            left = SetOp(op_token.text, left, right)

    def _selchain(self) -> Expr:
        prefixes: list[SelectionPredicate] = []
        while (self._check(_T.LBRACKET)):
            self._advance()
            prefixes.append(self._selection_predicate())
            self._expect(_T.RBRACKET, "']' after selection predicate")
            self._expect(_T.SLASH, "'/' after selection predicate")
        expr = self._chain()
        for pred in reversed(prefixes):
            expr = Select(pred, expr)
        return expr

    def _selection_predicate(self) -> SelectionPredicate:
        items: list = [self._selection_item()]
        while self._match(_T.SEMI, _T.COMMA):
            items.append(self._selection_item())
        token = self._peek()
        try:
            return SelectionPredicate(tuple(items))
        except Exception as exc:  # re-raise with position info
            raise ParseError(str(exc), token.line, token.column) from exc

    def _selection_item(self):
        if self._check(_T.IDENT) and self._peek().text == "n":
            self._advance()
            return LAST
        negative = self._match(_T.MINUS) is not None
        number = self._expect(_T.NUMBER, "selection index")
        value = int(number.text)
        if negative:
            return -value
        if self._match(_T.MINUS):
            end = self._expect(_T.NUMBER, "range end")
            return (value, int(end.text))
        return value

    def _chain(self) -> Expr:
        left = self._atom()
        if self._check(_T.COLON):
            self._advance()
            op = self._opname()
            self._expect(_T.COLON, "':' after listop name")
            # The right operand of a foreach may itself carry selection
            # prefixes (the paper's factorized Example 2:
            # [3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS).
            right = self._selchain()
            return ForEach(left, op, right, strict=True)
        if self._check(_T.DOT):
            self._advance()
            op = self._opname()
            self._expect(_T.DOT, "'.' after listop name")
            right = self._selchain()
            return ForEach(left, op, right, strict=False)
        return left

    def _opname(self) -> str:
        token = self._peek()
        if token.type is _T.IDENT:
            self._advance()
            return token.text.lower()
        if token.type in (_T.LT, _T.LE):
            self._advance()
            return token.text
        raise ParseError(f"expected a listop name, found {token.text!r}",
                         token.line, token.column)

    def _atom(self) -> Expr:
        token = self._peek()
        if token.type is _T.NUMBER:
            self._advance()
            if self._match(_T.SLASH):
                child = self._atom()
                return LabelSelect(int(token.text), child)
            return NumberLit(int(token.text))
        if token.type is _T.STRING:
            self._advance()
            return StringLit(token.text)
        if token.type is _T.IDENT:
            self._advance()
            if token.text.lower() == "today":
                return Today()
            if self._check(_T.LPAREN):
                return self._funcall(token.text)
            return Name(token.text)
        if token.type is _T.LPAREN:
            self._advance()
            expr = self._expression()
            self._expect(_T.RPAREN, "')'")
            return expr
        raise ParseError(f"expected an expression, found "
                         f"{token.text or 'end of input'!r}",
                         token.line, token.column)

    def _funcall(self, name: str) -> Expr:
        self._expect(_T.LPAREN, "'('")
        args: list = []
        if not self._check(_T.RPAREN):
            args.append(self._funarg())
            while self._match(_T.COMMA, _T.SEMI):
                args.append(self._funarg())
        self._expect(_T.RPAREN, "')' after arguments")
        lowered = name.lower()
        if lowered == "interval":
            return self._interval_literal(name, args)
        return FunCall(lowered, tuple(args))

    def _funarg(self):
        if self._match(_T.STAR):
            return "*"
        negative = (self._check(_T.MINUS)
                    and self._peek(1).type is _T.NUMBER)
        if negative:
            self._advance()
            number = self._advance()
            return NumberLit(-int(number.text))
        return self._expression()

    @staticmethod
    def _interval_literal(name: str, args: list) -> IntervalLit:
        values: list[int] = []
        for arg in args:
            if isinstance(arg, NumberLit):
                values.append(arg.value)
            else:
                raise ParseError(
                    f"{name}() requires two integer endpoints, got {arg}")
        if len(values) != 2:
            raise ParseError(f"{name}() requires exactly two endpoints")
        return IntervalLit(values[0], values[1])


def parse_script(source: str) -> Script:
    """Parse a calendar script (the CALENDARS ``derivation-script`` field)."""
    return Parser(source).parse_script()


def parse_expression(source: str) -> Expr:
    """Parse a single calendar expression."""
    return Parser(source).parse_expression()
