"""Lazy streaming interval pipelines (bounded-memory kernel forms).

The eager kernels (:func:`repro.core.algebra.foreach`,
:meth:`repro.core.calendar.Calendar.intersection`/``difference``) operate
on fully materialised element lists.  This module provides iterator forms
of the same operations for *sorted* interval streams — the shape every
``CalendarSystem.iter_generate`` tiling and every plan register has — so
optimised plan pipelines can produce intervals incrementally and hold
only a sliding buffer in memory:

* :func:`iter_merge_overlapping` — streaming twin of
  ``Calendar._merge_overlapping`` for lo-sorted input.
* :func:`iter_intersection` / :func:`iter_difference` — merge-join set
  kernels over two lo-sorted streams, yielding exactly the (pre-merge)
  pieces the eager columnar kernels compute.
* :func:`stream_foreach_grouped` — the streaming foreach merge-join: one
  pass over a lo-sorted member stream against lo-sorted reference
  intervals, yielding ``(ref_index, members)`` groups with the same
  per-group contents as :func:`repro.core.algebra._apply_over`.
* :class:`PeakTracker` — opt-in live-interval accounting used by the plan
  VM to report peak materialised-interval counts.

All functions assume their input streams are sorted by ``lo`` (ties
broken arbitrarily); generated tilings satisfy this by construction.
Every kernel also accepts a :class:`~repro.core.calendar.Calendar`
directly: column-backed calendars stream straight off their ``lo``/``hi``
lanes (no element-tuple materialisation), so feeding a columnar calendar
into a streaming pipeline never bumps ``columnar.materialisations``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

from repro.core.interval import Interval, Listop, get_listop

__all__ = [
    "as_interval_stream",
    "iter_merge_overlapping",
    "iter_intersection",
    "iter_difference",
    "stream_foreach_grouped",
    "PeakTracker",
]


def as_interval_stream(source: "Iterable[Interval]") -> Iterator[Interval]:
    """Yield the intervals of ``source`` lazily, one object at a time.

    ``source`` may be any interval iterable, including a ``Calendar``.
    Column-backed calendars are streamed directly off their integer
    lanes via ``Interval._of`` so the calendar's element tuple is never
    materialised; everything else is simply iterated.
    """
    cols = getattr(source, "columns", None)
    if cols is not None:
        los, his = cols.los, cols.his
        return (Interval._of(los[i], his[i]) for i in range(len(los)))
    return iter(source)


def iter_merge_overlapping(intervals: Iterable[Interval]
                           ) -> Iterator[Interval]:
    """Merge genuinely overlapping intervals of a lo-sorted stream.

    Streaming equivalent of ``Calendar._merge_overlapping`` (adjacent
    intervals are preserved, only overlaps merge); holds a single pending
    interval at a time.
    """
    pending: Interval | None = None
    for iv in as_interval_stream(intervals):
        if pending is not None and pending.overlaps(iv):
            pending = pending.union_hull(iv)
        else:
            if pending is not None:
                yield pending
            pending = iv
    if pending is not None:
        yield pending


def _buffered_overlaps(stream: Iterator[Interval],
                       buffer: "deque[Interval]",
                       probe: Interval,
                       exhausted: list) -> list[Interval]:
    """Advance ``buffer`` to hold every stream interval overlapping ``probe``.

    Drops buffered intervals that end before ``probe`` starts (they cannot
    overlap this or any later probe of a lo-sorted probe sequence) and
    pulls new ones while they may still start within ``probe``.
    """
    while buffer and buffer[0].hi < probe.lo:
        buffer.popleft()
    while not exhausted:
        nxt = next(stream, None)
        if nxt is None:
            exhausted.append(True)
            break
        if nxt.hi >= probe.lo:
            buffer.append(nxt)
        if nxt.lo > probe.hi:
            break
    return [iv for iv in buffer if iv.lo <= probe.hi]


def iter_intersection(a: Iterable[Interval], b: Iterable[Interval]
                      ) -> Iterator[Interval]:
    """Pairwise intersection pieces of two lo-sorted streams, in ``a`` order.

    Yields the same pieces (same order) as the columnar
    ``Calendar.intersection`` kernel before its final overlap merge; wrap
    with :func:`iter_merge_overlapping` (no sort needed — output is
    lo-sorted when ``a`` is disjoint, the shape of every real tiling)
    for full parity.
    """
    b_iter = as_interval_stream(b)
    buffer: deque[Interval] = deque()
    exhausted: list = []
    for iv in as_interval_stream(a):
        for other in _buffered_overlaps(b_iter, buffer, iv, exhausted):
            common = iv.intersect(other)
            if common is not None:
                yield common


def iter_difference(a: Iterable[Interval], b: Iterable[Interval]
                    ) -> Iterator[Interval]:
    """Difference pieces of two lo-sorted streams, in ``a`` order.

    Each ``a`` interval is split around every overlapping ``b`` interval,
    exactly as the eager ``Calendar.difference`` kernel does.
    """
    b_iter = as_interval_stream(b)
    buffer: deque[Interval] = deque()
    exhausted: list = []
    for iv in as_interval_stream(a):
        pieces = [iv]
        for cut in _buffered_overlaps(b_iter, buffer, iv, exhausted):
            pieces = [p for piece in pieces for p in piece.subtract(cut)]
            if not pieces:
                break
        yield from pieces


def stream_foreach_grouped(members: Iterable[Interval],
                           op: "Listop | str",
                           refs: Sequence[Interval],
                           strict: bool = True,
                           reach: int = 0,
                           tracker: "PeakTracker | None" = None,
                           ) -> Iterator[tuple[int, list[Interval]]]:
    """Streaming grouped foreach: one pass of ``members`` against ``refs``.

    ``members`` must be lo-sorted and ``refs`` is processed in lo order
    (the original indices are yielded so callers can restore reference
    order).  For each reference the yielded member list is exactly what
    ``algebra._apply_over`` collects — same candidates, same strict
    clipping, same order — provided every member satisfying ``op`` against
    a reference ``r`` lies within ``[r.lo - reach, r.hi + reach]``.  All
    clipping (non-lookback) listops satisfy this with ``reach=0`` because
    a related member must intersect the reference; callers pushing other
    operators must supply a sufficient ``reach``.

    Only members that can still relate to the current or a later reference
    are buffered, so peak memory is one reference window's worth of
    members, not the whole stream.
    """
    if isinstance(op, str):
        op = get_listop(op)
    order = sorted(range(len(refs)), key=lambda i: (refs[i].lo, refs[i].hi))
    stream = as_interval_stream(members)
    buffer: deque[Interval] = deque()
    exhausted: list = []
    clip = strict and op.clips
    for idx in order:
        ref = refs[idx]
        lo_bound = ref.lo - reach
        hi_bound = ref.hi + reach
        while buffer and buffer[0].hi < lo_bound:
            if tracker is not None:
                tracker.sub(1)
            buffer.popleft()
        while not exhausted:
            nxt = next(stream, None)
            if nxt is None:
                exhausted.append(True)
                break
            if nxt.hi >= lo_bound:
                buffer.append(nxt)
                if tracker is not None:
                    tracker.add(1)
            if nxt.lo > hi_bound:
                break
        group: list[Interval] = []
        for iv in buffer:
            if iv.lo > hi_bound:
                break
            if not op(iv, ref):
                continue
            if clip:
                clipped = iv.intersect(ref)
                if clipped is None:
                    continue
                group.append(clipped)
            else:
                group.append(iv)
        yield idx, group


class PeakTracker:
    """Incremental live-interval accounting for bounded-memory reporting.

    Attached to an evaluation's ``stats`` dict when the caller opts in
    (``stats["peak_live_intervals"]`` present); kernels and the plan VM
    call :meth:`add`/:meth:`sub` as intervals become live / are released,
    and the peak is folded into the stats dict.
    """

    __slots__ = ("live", "peak")

    def __init__(self) -> None:
        self.live = 0
        self.peak = 0

    def add(self, n: int) -> None:
        """Account ``n`` intervals becoming live; update the peak."""
        self.live += n
        if self.live > self.peak:
            self.peak = self.live

    def sub(self, n: int) -> None:
        """Account ``n`` intervals being released."""
        self.live -= n

    def publish(self, stats: dict) -> None:
        """Fold the observed peak into ``stats["peak_live_intervals"]``."""
        if self.peak > stats.get("peak_live_intervals", 0):
            stats["peak_live_intervals"] = self.peak
