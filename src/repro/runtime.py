"""Shared worker-pool runtime for concurrent batch evaluation.

One small abstraction — :class:`WorkerPool` — sits between the session
layer (``Session.eval_many``), DBCRON's parallel rule firing and the CLI
``\\workers`` command.  It wraps a lazily created
:class:`~concurrent.futures.ThreadPoolExecutor` so that

* sessions that never evaluate a batch pay nothing (no threads are
  started until the first parallel dispatch),
* the pool can be resized at runtime (``\\workers N``) without tearing
  down the session, and
* a **process-wide default pool** (:func:`get_default_pool`, sized by
  the ``REPRO_WORKERS`` environment variable) bounds the total thread
  count when many components — every directly constructed
  :class:`~repro.rules.dbcron.DBCron`, say — share it.

Threads (not processes) are the right substrate here: batch evaluation
is dominated by shared-cache effects — single-flight materialisation
misses, cross-script generate hoisting — that require shared memory,
and the matcache releases its stripe locks around every
:meth:`CalendarSystem.generate` call.
"""

from __future__ import annotations

import os
import threading

from concurrent.futures import ThreadPoolExecutor

__all__ = ["WorkerPool", "default_workers", "get_default_pool",
           "set_default_pool"]


def default_workers() -> int:
    """The pool size from ``REPRO_WORKERS`` (>= 1; 1 when unset/invalid)."""
    raw = os.environ.get("REPRO_WORKERS", "1")
    try:
        workers = int(raw)
    except ValueError:
        return 1
    return max(1, workers)


class WorkerPool:
    """A lazily started, resizable thread pool.

    ``WorkerPool()`` sizes itself from ``REPRO_WORKERS``;
    ``WorkerPool(4)`` pins the size.  The underlying executor is created
    on the first :meth:`submit`/:meth:`map` call and replaced on
    :meth:`resize`, so a pool of size 1 — the default everywhere — never
    spawns a thread (callers run size-1 work inline).
    """

    def __init__(self, workers: int | None = None) -> None:
        self._size = default_workers() if workers is None \
            else max(1, int(workers))
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False
        #: Optional telemetry pipeline (``pool.dispatch`` events);
        #: None keeps dispatch at a single extra branch.
        self.telemetry = None

    @property
    def size(self) -> int:
        """The configured number of workers (>= 1)."""
        return self._size

    @property
    def alive(self) -> bool:
        """False only after :meth:`close` until the next dispatch.

        A lazily-started pool that has never run is alive: it will start
        on demand.  ``/healthz`` reports a closed pool as degraded.
        """
        return not self._closed

    def resize(self, workers: int) -> None:
        """Change the pool size; a running executor is retired.

        The old executor finishes in-flight work in the background
        (``wait=False``) — callers holding futures from it are unaffected.
        """
        workers = max(1, int(workers))
        with self._lock:
            if workers == self._size and self._executor is not None:
                return
            old, self._executor = self._executor, None
            self._size = workers
        if old is not None:
            old.shutdown(wait=False)

    def executor(self) -> ThreadPoolExecutor:
        """The live executor, created on first use."""
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._size,
                    thread_name_prefix="repro-worker")
            self._closed = False
            return self._executor

    def submit(self, fn, /, *args, **kwargs):
        """Schedule ``fn(*args, **kwargs)``; a Future."""
        return self.executor().submit(fn, *args, **kwargs)

    def map(self, fn, iterable) -> list:
        """``[fn(x) for x in iterable]`` across the pool (ordered)."""
        items = list(iterable)
        if self.telemetry is not None:
            self.telemetry.emit("pool.dispatch", tasks=len(items),
                                workers=self._size)
        return list(self.executor().map(fn, items))

    def sharded_map(self, fn, batches) -> list:
        """``[fn(batch) for batch in batches]``, one pool task per batch.

        The shard-batched dispatch used by the timing-wheel DBCRON: a
        wave pre-grouped by wheel shard runs as ``len(batches)`` tasks
        regardless of how many rules each batch holds, keeping dispatch
        overhead constant as waves grow.  A single batch runs inline on
        the calling thread (no executor start, no hand-off).
        """
        batches = list(batches)
        if self.telemetry is not None:
            self.telemetry.emit("pool.dispatch", tasks=len(batches),
                                workers=self._size,
                                items=sum(len(b) for b in batches))
        if len(batches) <= 1 or self._size <= 1:
            return [fn(batch) for batch in batches]
        return list(self.executor().map(fn, batches))

    def close(self, wait: bool = True) -> None:
        """Shut the executor down (the pool can be lazily restarted)."""
        with self._lock:
            old, self._executor = self._executor, None
            self._closed = True
        if old is not None:
            old.shutdown(wait=wait)


# -- process-wide default -----------------------------------------------------

_default_pool: WorkerPool | None = None
_default_pool_lock = threading.Lock()


def get_default_pool() -> WorkerPool:
    """The process-wide pool (created on first use from ``REPRO_WORKERS``)."""
    global _default_pool
    with _default_pool_lock:
        if _default_pool is None:
            _default_pool = WorkerPool()
        return _default_pool


def set_default_pool(pool: WorkerPool) -> WorkerPool | None:
    """Swap the process-wide pool; returns the previous one."""
    global _default_pool
    with _default_pool_lock:
        previous = _default_pool
        _default_pool = pool
        return previous
