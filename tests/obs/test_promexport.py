"""Prometheus exposition conformance and OTLP span-export shape."""

from __future__ import annotations

import json
import re

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import (
    prometheus_name,
    render_prometheus,
    spans_to_otlp,
)
from repro.obs.tracer import Tracer

#: One sample line of the 0.0.4 text format, optionally followed by an
#: OpenMetrics exemplar: name{labels} value [# {exemplar-labels} value ts]
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})? (?P<value>\S+)'
    r'(?: # \{(?P<exemplar>[^}]*)\} (?P<exvalue>\S+)(?: (?P<exts>\S+))?)?$')

#: One label pair inside a label block, with escapes inside the value.
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_labels(block: "str | None") -> dict:
    """A sample's label block as a dict of unescaped values."""
    if not block:
        return {}
    pairs = _LABEL_RE.findall(block)
    reconstructed = ",".join(f'{k}="{v}"' for k, v in pairs)
    assert reconstructed == block, f"malformed label block: {block!r}"
    return {k: v.replace('\\"', '"').replace("\\n", "\n")
             .replace("\\\\", "\\") for k, v in pairs}


def _parse_exposition(text: str) -> dict:
    """Minimal 0.0.4 parser: {name: {"type":…, "help":…, "samples":[…]}}."""
    assert text.endswith("\n"), "exposition must end with a newline"
    metrics: dict = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            metrics.setdefault(name, {"samples": []})["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            metrics.setdefault(name, {"samples": []})["type"] = kind
        else:
            match = _SAMPLE_RE.match(line)
            assert match is not None, f"malformed sample line: {line!r}"
            if match["exemplar"] is not None:
                float(match["exvalue"])  # exemplar value must parse
                if match["exts"] is not None:
                    float(match["exts"])
            base = match["name"]
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and \
                        base[:-len(suffix)] in metrics:
                    base = base[:-len(suffix)]
                    break
            assert base in metrics, f"sample before TYPE/HELP: {line!r}"
            metrics[base]["samples"].append(
                (match["name"], match["labels"], match["value"]))
    return metrics


class TestNames:
    def test_dotted_names_become_underscores(self):
        assert prometheus_name("matcache.hit_seconds") == \
            "repro_matcache_hit_seconds"

    def test_namespace_optional(self):
        assert prometheus_name("db.query.latency", namespace="") == \
            "db_query_latency"

    def test_leading_digit_guarded(self):
        assert prometheus_name("9lives", namespace="")[0] == "_"


class TestCounterGauge:
    def test_counter_gets_total_suffix_and_type(self):
        registry = MetricsRegistry()
        registry.counter("matcache.hits").inc(7)
        parsed = _parse_exposition(render_prometheus(registry))
        metric = parsed["repro_matcache_hits_total"]
        assert metric["type"] == "counter"
        assert metric["help"]
        assert metric["samples"] == [
            ("repro_matcache_hits_total", None, "7")]

    def test_existing_total_suffix_not_doubled(self):
        registry = MetricsRegistry()
        registry.counter("events_total").inc()
        text = render_prometheus(registry)
        assert "repro_events_total 1" in text
        assert "total_total" not in text

    def test_gauge_renders_value(self):
        registry = MetricsRegistry()
        registry.gauge("dbcron.fire_drift_ticks").set(3.5)
        parsed = _parse_exposition(render_prometheus(registry))
        metric = parsed["repro_dbcron_fire_drift_ticks"]
        assert metric["type"] == "gauge"
        assert float(metric["samples"][0][2]) == 3.5


class TestHistogramConformance:
    def _render(self, samples):
        registry = MetricsRegistry()
        hist = registry.histogram("eval.seconds")
        for value in samples:
            hist.observe(value)
        return _parse_exposition(render_prometheus(registry)), hist

    def test_buckets_monotone_cumulative_ending_in_inf(self):
        parsed, hist = self._render([1e-6, 5e-4, 0.02, 0.02, 3.0, 100.0])
        buckets = [s for s in parsed["repro_eval_seconds"]["samples"]
                   if s[0].endswith("_bucket")]
        counts = [int(value) for _, _, value in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        les = [dict(pair.split("=") for pair in [labels])
               for _, labels, _ in buckets]
        assert les[-1] == {"le": '"+Inf"'}
        assert counts[-1] == hist.count == 6

    def test_inf_bucket_equals_count_sample(self):
        parsed, hist = self._render([0.001, 0.1, 50.0])
        samples = {name: value for name, _, value
                   in parsed["repro_eval_seconds"]["samples"]
                   if not name.endswith("_bucket")}
        inf_bucket = next(
            int(value) for _, labels, value
            in parsed["repro_eval_seconds"]["samples"]
            if labels == 'le="+Inf"')
        assert int(samples["repro_eval_seconds_count"]) == inf_bucket == 3
        assert float(samples["repro_eval_seconds_sum"]) == \
            pytest.approx(50.101)

    def test_type_is_histogram_with_help(self):
        parsed, _ = self._render([0.5])
        metric = parsed["repro_eval_seconds"]
        assert metric["type"] == "histogram"
        assert metric["help"]

    def test_every_bound_renders_parseable_le(self):
        parsed, hist = self._render([0.01])
        buckets = [s for s in parsed["repro_eval_seconds"]["samples"]
                   if s[0].endswith("_bucket")]
        assert len(buckets) == len(hist.bounds) + 1
        for _, labels, _ in buckets[:-1]:
            le = labels.split("=", 1)[1].strip('"')
            float(le)  # must parse

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_help_escapes_newlines_and_backslashes(self):
        registry = MetricsRegistry()
        registry.counter("weird", description="line1\nline2\\tail").inc()
        text = render_prometheus(registry)
        help_line = next(line for line in text.splitlines()
                         if line.startswith("# HELP"))
        assert "\n" not in help_line
        assert "line1\\nline2\\\\tail" in help_line


class TestLabelledExposition:
    def test_counter_family_one_help_block_sorted_series(self):
        registry = MetricsRegistry()
        fam = registry.counter("rules.fired", "Fires per tenant",
                               labels=("tenant",))
        fam.labels("beta").inc(2)
        fam.labels("acme").inc(5)
        text = render_prometheus(registry)
        parsed = _parse_exposition(text)
        metric = parsed["repro_rules_fired_total"]
        assert metric["type"] == "counter"
        assert text.count("# TYPE repro_rules_fired_total") == 1
        samples = [(_parse_labels(labels), value)
                   for _, labels, value in metric["samples"]]
        assert samples == [({"tenant": "acme"}, "5"),
                           ({"tenant": "beta"}, "2")]

    def test_gauge_family_multi_label(self):
        registry = MetricsRegistry()
        fam = registry.gauge("wheel.lag", labels=("shard", "kind"))
        fam.labels("0", "soft").set(1.5)
        parsed = _parse_exposition(render_prometheus(registry))
        (_, labels, value) = parsed["repro_wheel_lag"]["samples"][0]
        assert _parse_labels(labels) == {"shard": "0", "kind": "soft"}
        assert float(value) == 1.5

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        fam = registry.counter("c", labels=("script",))
        fam.labels('say "hi"\n\\done').inc()
        text = render_prometheus(registry)
        parsed = _parse_exposition(text)
        (_, labels, _) = parsed["repro_c_total"]["samples"][0]
        assert _parse_labels(labels) == {"script": 'say "hi"\n\\done'}
        assert "\n\\done" not in text.splitlines()[2]  # raw newline gone

    def test_histogram_family_le_appended_to_series_labels(self):
        registry = MetricsRegistry()
        fam = registry.histogram("eval.script_seconds", labels=("script",))
        fam.labels("DAYS").observe(0.002)
        fam.labels("WEEKS").observe(0.5)
        parsed = _parse_exposition(render_prometheus(registry))
        samples = parsed["repro_eval_script_seconds"]["samples"]
        buckets = [(_parse_labels(labels), value)
                   for name, labels, value in samples
                   if name.endswith("_bucket")]
        for labels, _ in buckets:
            assert set(labels) == {"script", "le"}
        days = [int(v) for lb, v in buckets if lb["script"] == "DAYS"]
        assert days == sorted(days) and days[-1] == 1
        # _sum/_count keep the bare series labels.
        count_labels = [_parse_labels(labels)
                        for name, labels, _ in samples
                        if name.endswith("_count")]
        assert {"script": "DAYS"} in count_labels
        assert {"script": "WEEKS"} in count_labels

    def test_overflow_series_renders_other(self):
        registry = MetricsRegistry()
        fam = registry.counter("c", labels=("tenant",), max_series=1)
        fam.labels("a").inc()
        fam.labels("b").inc()
        parsed = _parse_exposition(render_prometheus(registry))
        label_sets = [_parse_labels(labels) for _, labels, _
                      in parsed["repro_c_total"]["samples"]]
        assert {"tenant": "other"} in label_sets
        # The governor's drop counter is part of the exposition too.
        assert "repro_metrics_series_dropped_total" in parsed


class TestExemplars:
    def _render(self, *, exemplars=True):
        registry = MetricsRegistry()
        hist = registry.histogram("db.relation.query_seconds",
                                  labels=("relation",))
        hist.labels("emp").observe(0.003, "ab" * 16)
        return render_prometheus(registry, exemplars=exemplars)

    def test_exemplar_appended_to_bucket_line(self):
        text = self._render()
        _parse_exposition(text)  # syntax accepted end to end
        line = next(l for l in text.splitlines() if " # {" in l)
        assert "_bucket{" in line
        assert f'trace_id="{"ab" * 16}"' in line
        match = _SAMPLE_RE.match(line)
        assert float(match["exvalue"]) == pytest.approx(0.003)
        assert float(match["exts"]) > 0

    def test_exemplars_suppressed_on_request(self):
        assert " # {" not in self._render(exemplars=False)

    def test_sum_and_count_never_carry_exemplars(self):
        for line in self._render().splitlines():
            if "_sum" in line or "_count" in line:
                assert " # {" not in line


class TestOtlpExport:
    def _trace(self):
        tracer = Tracer()
        with tracer.span("session.eval", source="WEEKS"):
            with tracer.span("plan.run", steps=3):
                pass
            with tracer.span("plan.finish"):
                pass
        return tracer.recent()

    def test_structure_and_parenting(self):
        doc = spans_to_otlp(self._trace())
        json.dumps(doc)  # JSON-serialisable end to end
        (resource,) = doc["resourceSpans"]
        (scope,) = resource["scopeSpans"]
        spans = scope["spans"]
        assert [s["name"] for s in spans] == \
            ["session.eval", "plan.run", "plan.finish"]
        root, child_a, child_b = spans
        assert "parentSpanId" not in root
        assert child_a["parentSpanId"] == root["spanId"]
        assert child_b["parentSpanId"] == root["spanId"]
        assert child_a["traceId"] == root["traceId"]
        assert len(root["traceId"]) == 32
        assert len(root["spanId"]) == 16

    def test_timestamps_ordered_nanos(self):
        doc = spans_to_otlp(self._trace())
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        for span in spans:
            assert int(span["endTimeUnixNano"]) >= \
                int(span["startTimeUnixNano"]) > 0

    def test_error_meta_becomes_error_status(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        doc = spans_to_otlp(tracer.recent())
        (span,) = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert span["status"]["code"] == 2
        assert "nope" in span["status"]["message"]

    def test_attribute_typing(self):
        tracer = Tracer()
        with tracer.span("typed", n=3, ratio=0.5, on=True, label="x"):
            pass
        doc = spans_to_otlp(tracer.recent())
        (span,) = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        values = {a["key"]: a["value"] for a in span["attributes"]}
        assert values["n"] == {"intValue": "3"}
        assert values["ratio"] == {"doubleValue": 0.5}
        assert values["on"] == {"boolValue": True}
        assert values["label"] == {"stringValue": "x"}

    def test_distinct_roots_get_distinct_trace_ids(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        doc = spans_to_otlp(tracer.recent())
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert spans[0]["traceId"] != spans[1]["traceId"]
