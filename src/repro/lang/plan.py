"""Evaluation plans: the "set of procedural statements" of section 3.2.

A plan is a linear sequence of register-targeted steps (generate a basic
calendar over a window, apply a foreach/selection/set operation, …)
produced by :mod:`repro.lang.planner` from a factorized expression and
executed by :class:`PlanVM` against an
:class:`~repro.lang.interpreter.EvalContext`.

Plans are what the CALENDARS catalog stores in its ``eval-plan`` column
(Figure 1) — :meth:`Plan.text` renders them in a readable procedural form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core import columnar
from repro.core.algebra import SelectionPredicate, _SortedView, _apply_over, \
    _sweepable, caloperate, foreach, label_select, select
from repro.core.calendar import Calendar
from repro.core.granularity import Granularity
from repro.core.interval import Interval, axis_add, get_listop
from repro.core.stream import PeakTracker
from repro.lang.defs import BasicDef, DerivedDef, ExplicitDef
from repro.lang.errors import EvaluationError, PlanError

__all__ = [
    "WindowSpec", "PlanStep", "GenerateStep", "LoadStep", "ForEachStep",
    "SelectStep", "LabelSelectStep", "SetOpStep", "CalOperateStep",
    "FlattenStep", "ShiftStep", "InstantsStep", "HullStep",
    "IntervalStep", "PointStep", "TodayStep", "GenerateCallStep",
    "FusedForEachStep", "MergedForEachStep", "PipelineForEachStep",
    "PeriodicStep", "Plan", "PlanVM",
]


@dataclass(frozen=True)
class WindowSpec:
    """A generation window: either the context window or a fixed tick range.

    ``dynamic=True`` marks a window that a streaming pipeline narrows at
    run time to the neighbourhood of one reference interval; the
    ``fixed``/context part is then the *eager bound* — the window the
    unoptimised plan would have generated over — which the per-reference
    window is intersected with so optimised results stay byte-identical.
    """

    fixed: tuple[int, int] | None = None
    dynamic: bool = False

    def resolve(self, context) -> tuple[int, int]:
        """The concrete tick window for an evaluation context."""
        if self.fixed is not None:
            return self.fixed
        return context.window

    def __str__(self) -> str:
        base = ("<context-window>" if self.fixed is None
                else f"[{self.fixed[0]}, {self.fixed[1]}]")
        if self.dynamic:
            return f"<per-ref ∩ {base}>"
        return base


CONTEXT_WINDOW = WindowSpec(None)


class PlanStep:
    """Base class of plan steps; every step writes one register."""

    target: str

    def describe(self) -> str:
        """One-line procedural rendering of this step."""
        raise NotImplementedError


@dataclass(frozen=True)
class GenerateStep(PlanStep):
    """Materialise a basic calendar over a window (cover mode).

    ``pad`` overrides the evaluation context's blanket window padding
    (in unit ticks); ``None`` keeps the legacy blanket, ``0`` disables
    padding entirely (dynamic pipeline windows arrive pre-padded).
    """

    target: str
    calendar: Granularity
    window: WindowSpec
    pad: int | None = None

    def describe(self) -> str:
        pad = f", pad={self.pad}" if self.pad is not None else ""
        return (f"{self.target} := generate({self.calendar.name}, "
                f"<unit>, {self.window}{pad})")


@dataclass(frozen=True)
class LoadStep(PlanStep):
    """Load a named calendar via the resolver (explicit values or a
    multi-statement derivation that cannot be compiled inline)."""

    target: str
    name: str

    def describe(self) -> str:
        return f"{self.target} := load({self.name!r})"


@dataclass(frozen=True)
class ForEachStep(PlanStep):
    target: str
    op: str
    strict: bool
    left: str
    right: str

    def describe(self) -> str:
        sep = ":" if self.strict else "."
        return (f"{self.target} := for each c in {self.left}: "
                f"keep c {sep}{self.op}{sep} {self.right}")


@dataclass(frozen=True)
class SelectStep(PlanStep):
    target: str
    predicate: SelectionPredicate
    source: str

    def describe(self) -> str:
        return f"{self.target} := select {self.predicate} from {self.source}"


@dataclass(frozen=True)
class LabelSelectStep(PlanStep):
    target: str
    label: int | str
    source: str

    def describe(self) -> str:
        return f"{self.target} := select label {self.label} from {self.source}"


@dataclass(frozen=True)
class SetOpStep(PlanStep):
    target: str
    op: str
    left: str
    right: str

    def describe(self) -> str:
        return f"{self.target} := {self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class CalOperateStep(PlanStep):
    target: str
    source: str
    counts: tuple[int, ...]
    end: int | None

    def describe(self) -> str:
        end = "*" if self.end is None else str(self.end)
        counts = "; ".join(str(c) for c in self.counts)
        return (f"{self.target} := caloperate({self.source}, {end}; "
                f"({counts}))")


@dataclass(frozen=True)
class IntervalStep(PlanStep):
    target: str
    lo: int
    hi: int

    def describe(self) -> str:
        return f"{self.target} := interval({self.lo}, {self.hi})"


@dataclass(frozen=True)
class PointStep(PlanStep):
    target: str
    date_text: str

    def describe(self) -> str:
        return f"{self.target} := point({self.date_text!r})"


@dataclass(frozen=True)
class TodayStep(PlanStep):
    target: str

    def describe(self) -> str:
        return f"{self.target} := today"


@dataclass(frozen=True)
class FlattenStep(PlanStep):
    """Collapse an order-n calendar to order 1."""

    target: str
    source: str

    def describe(self) -> str:
        return f"{self.target} := flatten({self.source})"


@dataclass(frozen=True)
class ShiftStep(PlanStep):
    """Translate every interval of a calendar by a tick delta."""

    target: str
    source: str
    delta: int

    def describe(self) -> str:
        return f"{self.target} := shift({self.source}, {self.delta})"


@dataclass(frozen=True)
class InstantsStep(PlanStep):
    """Explode a calendar into one instant per covered point."""

    target: str
    source: str

    def describe(self) -> str:
        return f"{self.target} := instants({self.source})"


@dataclass(frozen=True)
class HullStep(PlanStep):
    """Collapse a calendar to its single spanning interval."""

    target: str
    source: str

    def describe(self) -> str:
        return f"{self.target} := hull({self.source})"


@dataclass(frozen=True)
class GenerateCallStep(PlanStep):
    """An explicit ``generate(cal, unit, start, end[, mode])`` call."""

    target: str
    calendar: str
    unit: str
    start: object
    end: object
    mode: str = "clip"

    def describe(self) -> str:
        return (f"{self.target} := generate({self.calendar}, {self.unit}, "
                f"[{self.start!r}, {self.end!r}], {self.mode})")


@dataclass(frozen=True)
class FusedForEachStep(PlanStep):
    """A foreach and its sole-consumer positional selection fused into one
    merge-join pass: groups are selected as they form instead of
    materialising the intermediate order-2 calendar."""

    target: str
    op: str
    strict: bool
    left: str
    right: str
    predicate: SelectionPredicate

    def describe(self) -> str:
        sep = ":" if self.strict else "."
        return (f"{self.target} := select {self.predicate} from each group "
                f"of (for each c in {self.left}: keep c "
                f"{sep}{self.op}{sep} {self.right})")


@dataclass(frozen=True)
class MergedForEachStep(PlanStep):
    """Two adjacent foreach steps over the same materialised reference merged
    into one kernel: the inner grouping's flatten is skipped and members
    stream straight into the outer foreach."""

    target: str
    op1: str
    strict1: bool
    left: str
    right: str
    op2: str
    strict2: bool
    right2: str

    def describe(self) -> str:
        s1 = ":" if self.strict1 else "."
        s2 = ":" if self.strict2 else "."
        return (f"{self.target} := for each c in (each group of {self.left} "
                f"{s1}{self.op1}{s1} {self.right}): keep c "
                f"{s2}{self.op2}{s2} {self.right2}")


@dataclass(frozen=True)
class PipelineForEachStep(PlanStep):
    """Selection push-down: evaluate the left-operand chain lazily per
    reference interval over a narrowed dynamic window.

    ``subplan`` is the foreach's left chain with its generation windows
    marked dynamic; for each reference interval ``r`` the chain runs over
    ``[r.lo - pad, r.hi + pad]`` (intersected with each generate's eager
    bound), so only the neighbourhood of the selected references is ever
    materialised.  ``predicate`` carries a fused trailing selection.
    ``granularity`` is the statically known granularity of the chain's
    result (needed to assemble empty groups identically to the eager
    plan).
    """

    target: str
    op: str
    strict: bool
    right: str
    subplan: "Plan"
    pad: int
    granularity: Granularity
    predicate: SelectionPredicate | None = None

    def describe(self) -> str:
        sep = ":" if self.strict else "."
        inner = "; ".join(s.describe() for s in self.subplan.steps)
        pred = (f"; select {self.predicate} per group"
                if self.predicate is not None else "")
        return (f"{self.target} := for each r in {self.right}: eval "
                f"[{inner}; yield {self.subplan.result}] over r±{self.pad}, "
                f"keep c {sep}{self.op}{sep} r{pred}")


@dataclass(frozen=True)
class PeriodicStep(PlanStep):
    """Expand a compiled :class:`~repro.core.periodic.PeriodicSet` over
    the context window — the periodic backend the cost model can pick
    instead of a generate/foreach/select chain.

    ``pset`` carries verified element structure (``exact_elements``), so
    expansion by modular arithmetic reproduces the materialising chain's
    result without generating any intermediate cover.
    """

    target: str
    source: str
    pset: object = field(compare=False)

    def describe(self) -> str:
        return (f"{self.target} := periodic({self.source!r}; "
                f"{self.pset.describe()})")


@dataclass
class Plan:
    """An ordered list of steps plus the register holding the result.

    A compiled plan is **frozen by convention**: nothing mutates
    ``steps`` after the planner returns it.  That is what lets the
    catalog cache one plan per expression and lets
    ``Session.eval_many`` hand the same plan object to several worker
    threads at once — each execution's mutable state lives in the
    :class:`PlanVM` run, never on the plan.
    """

    steps: list[PlanStep] = field(default_factory=list)
    result: str = ""

    def text(self) -> str:
        """Readable procedural rendering (the eval-plan catalog column)."""
        lines = [step.describe() for step in self.steps]
        lines.append(f"return {self.result}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.steps)

    def generate_steps(self) -> "list[GenerateStep]":
        """All basic-calendar generation steps of the plan."""
        return [s for s in self.steps if isinstance(s, GenerateStep)]


class PlanVM:
    """Executes a :class:`Plan` against an EvalContext.

    **Re-entrancy contract**: a VM instance is cheap and single-use —
    construct one per ``run`` call.  The register file is a local of
    :meth:`run`, so concurrent runs of the *same* plan (the batch
    engine's worker threads) never share execution state; the only
    shared mutable structure is the context's materialisation dict,
    whose entries are idempotent (same key → equal calendar), making
    duplicate concurrent writes harmless.
    """

    def __init__(self, context, window_override: "tuple[int, int] | None" = None,
                 tracker: "PeakTracker | None" = None) -> None:
        self.context = context
        # Set for per-reference sub-runs of a PipelineForEachStep: dynamic
        # generation windows resolve to this tick range instead of the
        # context window.
        self.window_override = window_override
        self.tracker = tracker

    def run(self, plan: Plan) -> Calendar:
        """Execute the steps in order; the (window-clipped) result.

        When the context carries an active tracer this dispatches to the
        instrumented twin :meth:`_run_traced`; the disabled-tracing cost
        is this single ``is not None`` branch per plan run (plus one for
        the telemetry pipeline, which emits a ``plan.run`` event per
        execution when attached).
        """
        ctx = self.context
        publish = False
        if self.tracker is None and "peak_live_intervals" in ctx.stats:
            self.tracker = PeakTracker()
            publish = True
        try:
            events = ctx.events
            if ctx.tracer is not None:
                result = self._run_traced(plan)
                if events is not None:
                    events.emit("plan.run", steps=len(plan.steps),
                                result=plan.result, traced=True)
                return result
            if events is not None:
                from time import perf_counter
                t0 = perf_counter()
                registers = {}
                for step in plan.steps:
                    registers[step.target] = self._exec(step, registers)
                result = self._finish(plan, registers)
                events.emit("plan.run", steps=len(plan.steps),
                            result=plan.result, traced=False,
                            duration_s=perf_counter() - t0)
                return result
            registers: dict[str, object] = {}
            for step in plan.steps:
                registers[step.target] = self._exec(step, registers)
            return self._finish(plan, registers)
        finally:
            if publish:
                self.tracker.publish(ctx.stats)

    def run_raw(self, plan: Plan):
        """Execute a pipeline sub-plan: plain loop, no final window clip.

        Used for the per-reference chain runs of
        :class:`PipelineForEachStep`; registers die with the run, so the
        peak tracker releases everything but the returned result.
        """
        registers: dict[str, object] = {}
        for step in plan.steps:
            registers[step.target] = self._exec(step, registers)
        try:
            result = registers[plan.result]
        except KeyError:
            raise PlanError(
                f"plan result register {plan.result!r} was never written")
        if self.tracker is not None:
            for name, value in registers.items():
                if name != plan.result and isinstance(value, Calendar):
                    self.tracker.sub(value.leaf_count())
        return result

    def _exec(self, step: "PlanStep", registers: dict):
        value = self._run_step(step, registers)
        if self.tracker is not None and isinstance(value, Calendar):
            self.tracker.add(value.leaf_count())
        return value

    def _run_traced(self, plan: Plan) -> Calendar:
        """Instrumented twin of :meth:`run`: per-opcode spans + timings."""
        from time import perf_counter

        tracer = self.context.tracer
        metrics = self.context.metrics
        step_hist = metrics.histogram("vm.step_seconds") if metrics else None
        step_count = metrics.counter("vm.steps") if metrics else None
        with tracer.span("plan.run", steps=len(plan.steps),
                         result=plan.result):
            registers: dict[str, object] = {}
            for step in plan.steps:
                with tracer.span(f"plan.step.{type(step).__name__}",
                                 target=step.target):
                    t0 = perf_counter()
                    registers[step.target] = self._exec(step, registers)
                    if step_hist is not None:
                        step_hist.observe(perf_counter() - t0)
                        step_count.inc()
            with tracer.span("plan.finish"):
                return self._finish(plan, registers)

    def _finish(self, plan: Plan, registers: dict) -> Calendar:
        """Fetch the result register and clip it to the context window."""
        try:
            result = registers[plan.result]
        except KeyError:
            raise PlanError(
                f"plan result register {plan.result!r} was never written")
        if not isinstance(result, Calendar):
            raise PlanError("plan did not produce a calendar")
        from repro.lang.interpreter import clip_to_window
        return clip_to_window(result, self.context.window)

    def _run_step(self, step: PlanStep, registers: dict):
        ctx = self.context
        if isinstance(step, GenerateStep):
            if step.window.dynamic and self.window_override is not None:
                # Per-reference pipeline run: narrow to the reference
                # neighbourhood, intersected with the window the eager
                # plan would have covered (keeps boundary truncation
                # byte-identical to the unoptimised plan).
                lo0, hi0 = ctx.padded_tick_window(step.window.resolve(ctx),
                                                  step.pad)
                lo = max(self.window_override[0], lo0)
                hi = min(self.window_override[1], hi0)
                if lo > hi:
                    return Calendar.from_intervals([], step.calendar)
                return ctx.materialise_basic(step.calendar, (lo, hi),
                                             mode="cover", pad=0)
            return ctx.materialise_basic(step.calendar,
                                         step.window.resolve(ctx),
                                         mode="cover", pad=step.pad)
        if isinstance(step, LoadStep):
            definition = ctx.resolver(step.name)
            if definition is None:
                raise PlanError(f"unknown calendar {step.name!r}")
            # Defer to the interpreter for scripted/explicit definitions.
            from repro.lang.interpreter import Interpreter
            return Interpreter(ctx)._eval_definition(step.name, definition)
        if isinstance(step, ForEachStep):
            left = registers[step.left]
            right = registers[step.right]
            if left.order != 1:
                left = left.flatten()
            reference = (right[0]
                         if right.order == 1 and len(right) == 1 else right)
            return foreach(step.op, left, reference, strict=step.strict)
        if isinstance(step, SelectStep):
            return select(registers[step.source], step.predicate)
        if isinstance(step, LabelSelectStep):
            return label_select(registers[step.source], step.label)
        if isinstance(step, SetOpStep):
            left, right = registers[step.left], registers[step.right]
            if step.op == "+":
                return left.union(right)
            if step.op == "-":
                return left.difference(right)
            if step.op == "&":
                return left.intersection(right)
            raise PlanError(f"unknown set op {step.op!r}")
        if isinstance(step, CalOperateStep):
            source = registers[step.source]
            if source.order != 1:
                source = source.flatten()
            return caloperate(source, step.counts, step.end)
        if isinstance(step, IntervalStep):
            return Calendar.interval(step.lo, step.hi, ctx.unit)
        if isinstance(step, PointStep):
            if ctx.unit != Granularity.DAYS:
                raise EvaluationError(
                    "point() literals require a DAYS evaluation unit")
            return Calendar.point(ctx.system.day_of(step.date_text),
                                  Granularity.DAYS)
        if isinstance(step, FlattenStep):
            return registers[step.source].flatten()
        if isinstance(step, ShiftStep):
            source = registers[step.source]
            if source.order != 1:
                source = source.flatten()
            return source.shifted(step.delta)
        if isinstance(step, InstantsStep):
            source = registers[step.source]
            points = sorted({t for iv in source.iter_intervals()
                             for t in iv})
            return Calendar.from_intervals([(t, t) for t in points],
                                           source.granularity)
        if isinstance(step, HullStep):
            source = registers[step.source]
            span = source.span()
            if span is None:
                return Calendar.from_intervals([], source.granularity)
            return Calendar.from_intervals([span], source.granularity)
        if isinstance(step, TodayStep):
            if ctx.today is None:
                raise EvaluationError("'today' is not bound in this context")
            return Calendar.point(ctx.today, ctx.unit)
        if isinstance(step, GenerateCallStep):
            return ctx.generate_call(step.calendar, step.unit,
                                     (step.start, step.end),
                                     mode=step.mode)
        if isinstance(step, PeriodicStep):
            return step.pset.expand(ctx.window)
        if isinstance(step, FusedForEachStep):
            return self._run_fused(step, registers)
        if isinstance(step, MergedForEachStep):
            return self._run_merged(step, registers)
        if isinstance(step, PipelineForEachStep):
            return self._run_pipeline(step, registers)
        raise PlanError(f"unknown plan step {step!r}")

    # -- fused / streaming kernels ----------------------------------------------

    def _run_fused(self, step: FusedForEachStep, registers: dict) -> Calendar:
        """``select(foreach(...))`` in one pass over the groups."""
        left = registers[step.left]
        right = registers[step.right]
        if left.order != 1:
            left = left.flatten()
        reference = (right[0]
                     if right.order == 1 and len(right) == 1 else right)
        op = get_listop(step.op)
        if (isinstance(reference, Interval) or op.shape == "filtering"
                or reference.order != 1):
            return select(foreach(op, left, reference, strict=step.strict),
                          step.predicate)
        pred = step.predicate
        singleton = pred.is_singleton()
        cols = left.columns
        if cols is not None and _sweepable(op):
            refs = reference._lanes()
            if refs is not None:
                return self._run_fused_columnar(op, cols, refs, pred,
                                                singleton, step.strict,
                                                left.granularity)
        view = _SortedView.of(left)
        picked_intervals: list[Interval] = []
        picked_subs: list[Calendar] = []
        for r in reference.elements:
            group: list[Interval] = []
            _apply_over(view, op, r, step.strict, group)
            if not group:
                continue
            positions = pred.positions(len(group))
            if not positions:
                continue
            if singleton:
                picked_intervals.append(group[positions[0]])
            else:
                picked_subs.append(Calendar.from_intervals(
                    [group[p] for p in positions], left.granularity))
        if singleton:
            return Calendar.from_intervals(picked_intervals,
                                           left.granularity)
        return Calendar.from_calendars(picked_subs, left.granularity)

    @staticmethod
    def _run_fused_columnar(op, cols, refs, pred, singleton, strict,
                            granularity) -> Calendar:
        """Fused grouped-foreach + selection straight over the lanes.

        Groups come from the gapless lane sweep; the selection indexes
        each group's columns, so no ``Interval`` objects (and no order-2
        intermediate) exist at any point.
        """
        clip = strict and op.clips
        picked_los: list[int] = []
        picked_his: list[int] = []
        picked_subs: list[Calendar] = []
        for _i, group in columnar.iter_groups(cols, refs, op.name, clip):
            glen = len(group)
            if not glen:
                continue
            positions = pred.positions(glen)
            if not positions:
                continue
            if singleton:
                p = positions[0]
                picked_los.append(group.los[p])
                picked_his.append(group.his[p])
            else:
                if positions[-1] - positions[0] + 1 == len(positions):
                    sub = group.slice(positions[0], positions[-1] + 1)
                else:
                    sub = group.take(positions)
                picked_subs.append(Calendar._from_columns(sub, granularity))
        if singleton:
            out = columnar.IntervalColumns.from_lists(picked_los, picked_his)
            return Calendar._from_columns(out, granularity)
        return Calendar.from_calendars(picked_subs, granularity)

    def _run_merged(self, step: MergedForEachStep, registers: dict
                    ) -> Calendar:
        """Inner grouping + flatten + outer foreach in one member pass."""
        left = registers[step.left]
        right = registers[step.right]
        right2 = registers[step.right2]
        if left.order != 1:
            left = left.flatten()
        op1 = get_listop(step.op1)
        ref_cal = right if right.order == 1 else right.flatten()
        cols = left.columns
        mid = None
        if cols is not None and _sweepable(op1):
            refs = ref_cal._lanes()
            if refs is not None:
                clip = step.strict1 and op1.clips
                rlos, rhis = refs.los, refs.his
                parts = [columnar.sweep_one(cols, op1.name, rlos[i],
                                            rhis[i], clip)
                         for i in range(len(rlos))]
                mid = Calendar._from_columns(
                    columnar.concat_columns(parts), left.granularity)
        if mid is None:
            view = _SortedView.of(left)
            flat: list[Interval] = []
            for ref in ref_cal.elements:
                _apply_over(view, op1, ref, step.strict1, flat)
            mid = Calendar.from_intervals(flat, left.granularity)
        reference2 = (right2[0]
                      if right2.order == 1 and len(right2) == 1 else right2)
        return foreach(step.op2, mid, reference2, strict=step.strict2)

    def _run_pipeline(self, step: PipelineForEachStep, registers: dict
                      ) -> Calendar:
        """Per-reference lazy evaluation of the foreach's left chain."""
        right = registers[step.right]
        reference = (right[0]
                     if right.order == 1 and len(right) == 1 else right)
        out = self._pipeline_foreach(step, reference)
        if step.predicate is not None:
            out = select(out, step.predicate)
        return out

    def _pipeline_foreach(self, step: PipelineForEachStep, ref) -> Calendar:
        """Mirror of :func:`repro.core.algebra.foreach`'s assembly, with the
        left operand re-evaluated per reference over a narrowed window."""
        if isinstance(ref, Interval):
            left = self._eval_chain_for_ref(step, ref)
            return foreach(step.op, left, ref, strict=step.strict)
        if ref.order == 1:
            subs: list[Calendar] = []
            labels: list = []
            for i, r in enumerate(ref):
                left = self._eval_chain_for_ref(step, r)
                sub = foreach(step.op, left, r, strict=step.strict)
                if self.tracker is not None:
                    self.tracker.sub(left.leaf_count())
                if sub.is_empty():
                    continue
                subs.append(sub)
                labels.append(ref.label_of(i))
            out = Calendar.from_calendars(subs, step.granularity)
            if ref.labels is not None:
                out = out.with_labels(labels)
            return out
        subs = [self._pipeline_foreach(step, sub) for sub in ref.elements]
        subs = [s for s in subs if not s.is_empty()]
        return Calendar.from_calendars(subs, step.granularity)

    def _eval_chain_for_ref(self, step: PipelineForEachStep,
                            ref: Interval) -> Calendar:
        """Run the left chain over the reference's padded neighbourhood."""
        lo = axis_add(ref.lo, -step.pad)
        hi = axis_add(ref.hi, step.pad)
        vm = PlanVM(self.context, window_override=(lo, hi),
                    tracker=self.tracker)
        result = vm.run_raw(step.subplan)
        if not isinstance(result, Calendar):
            raise PlanError("pipeline sub-plan did not produce a calendar")
        if result.order != 1:
            flat = result.flatten()
            if self.tracker is not None:
                self.tracker.sub(result.leaf_count())
                self.tracker.add(flat.leaf_count())
            result = flat
        return result
