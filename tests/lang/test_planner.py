"""Unit tests for the plan compiler: window narrowing, caching, VM."""

import pytest

from repro.core import Calendar, CalendarSystem, Granularity
from repro.lang import (
    EvalContext,
    Interpreter,
    PlanVM,
    compile_expression,
    factorize,
    parse_expression,
    parse_script,
)
from repro.lang.defs import (
    DerivedDef,
    ExplicitDef,
    basic_resolver,
    chain_resolvers,
)
from repro.lang.plan import (
    ForEachStep,
    GenerateStep,
    LoadStep,
    SelectStep,
)


@pytest.fixture(scope="module")
def sys87():
    return CalendarSystem.starting("Jan 1 1987")


def make_resolver():
    defs = {
        "mondays": DerivedDef(
            parse_script("{return([1]/DAYS:during:WEEKS);}"),
            Granularity.DAYS),
        "emp_days": DerivedDef(
            parse_script("{x = [n]/DAYS:during:MONTHS; return(x);}"),
            Granularity.DAYS),
        "holidays": ExplicitDef(Calendar.from_intervals([(100, 100)]),
                                Granularity.DAYS),
    }
    return chain_resolvers(lambda n: defs.get(n.lower()), basic_resolver)


RESOLVER = make_resolver()


def window_of(sys87, y0, y1):
    lo, _ = sys87.epoch.days_of_year(y0)
    _, hi = sys87.epoch.days_of_year(y1)
    return (lo, hi)


def compile_for(sys87, text, window):
    expr = factorize(parse_expression(text), RESOLVER).expression
    return compile_expression(expr, sys87, RESOLVER,
                              context_window=window), expr


class TestWindowNarrowing:
    def test_label_select_narrows_generate(self, sys87):
        window = window_of(sys87, 1987, 2016)
        plan, _ = compile_for(sys87, "1993/YEARS", window)
        (step,) = plan.generate_steps()
        lo, hi = sys87.epoch.days_of_year(1993)
        assert step.window.fixed == (lo, hi)

    def test_narrowing_propagates_into_chain(self, sys87):
        window = window_of(sys87, 1987, 2016)
        plan, _ = compile_for(
            sys87, "Mondays:during:Januarys_x:during:1993/YEARS", window) \
            if False else compile_for(
            sys87,
            "[1]/DAYS:during:WEEKS:during:[1]/MONTHS:during:1993/YEARS",
            window)
        for step in plan.generate_steps():
            assert step.window.fixed is not None
            # Every generated window is a small slice of the 30-year
            # context (year + padding), never the whole context.
            lo, hi = step.window.fixed
            assert hi - lo < 366 + 2 * 400

    def test_unrestricted_expression_uses_context(self, sys87):
        window = window_of(sys87, 1987, 2016)
        plan, _ = compile_for(sys87, "[2]/DAYS:during:WEEKS", window)
        for step in plan.generate_steps():
            assert step.window.fixed is None

    def test_lookback_extends_to_context_start(self, sys87):
        window = window_of(sys87, 1987, 2016)
        plan, _ = compile_for(
            sys87, "[n]/DAYS:<:[1]/MONTHS:during:1993/YEARS", window)
        day_steps = [s for s in plan.generate_steps()
                     if s.calendar == Granularity.DAYS]
        assert any(s.window.fixed is not None
                   and s.window.fixed[0] == window[0]
                   for s in day_steps)


class TestSharedSubexpressions:
    def test_repeated_basic_generated_once(self, sys87):
        window = window_of(sys87, 1990, 1995)
        plan, _ = compile_for(
            sys87, "([1]/DAYS:during:WEEKS) + ([2]/DAYS:during:WEEKS)",
            window)
        generates = plan.generate_steps()
        kinds = [(s.calendar, s.window) for s in generates]
        assert len(kinds) == len(set(kinds)) == 2  # DAYS and WEEKS once

    def test_identical_subtrees_share_registers(self, sys87):
        window = window_of(sys87, 1990, 1995)
        plan, _ = compile_for(
            sys87, "([1]/DAYS:during:WEEKS) - ([1]/DAYS:during:WEEKS)",
            window)
        selects = [s for s in plan.steps if isinstance(s, SelectStep)]
        assert len(selects) == 1

    def test_explicit_and_derived_load_steps(self, sys87):
        window = window_of(sys87, 1990, 1995)
        plan, _ = compile_for(sys87, "EMP_DAYS - HOLIDAYS", window)
        loads = [s for s in plan.steps if isinstance(s, LoadStep)]
        assert {s.name.lower() for s in loads} == {"emp_days", "holidays"}


class TestPlanShape:
    def test_plan_text_render(self, sys87):
        window = window_of(sys87, 1990, 1995)
        plan, _ = compile_for(sys87, "[2]/DAYS:during:WEEKS", window)
        text = plan.text()
        assert "generate(DAYS" in text
        assert "select [2]" in text
        assert text.strip().endswith(f"return {plan.result}")

    def test_foreach_step_strictness(self, sys87):
        window = window_of(sys87, 1990, 1995)
        plan, _ = compile_for(sys87, "WEEKS.overlaps.MONTHS", window)
        (step,) = [s for s in plan.steps if isinstance(s, ForEachStep)]
        assert step.strict is False

    def test_caloperate_and_flatten_compile(self, sys87):
        window = window_of(sys87, 1990, 1995)
        plan, _ = compile_for(
            sys87, "flatten(caloperate(MONTHS, *; 3))", window)
        assert "caloperate" in plan.text()
        assert "flatten" in plan.text()


class TestDifferentialPlanVsInterpreter:
    """The plan VM must agree with the reference interpreter."""

    EXPRESSIONS = [
        "[2]/DAYS:during:WEEKS:during:[1]/MONTHS:during:1993/YEARS",
        "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS",
        "[n]/DAYS:during:MONTHS",
        "WEEKS:during:1993/YEARS",
        "[n]/DAYS:<:[1]/MONTHS:during:1993/YEARS",
        "([n]/DAYS:during:MONTHS) - HOLIDAYS",
        "flatten([1-5]/DAYS:during:WEEKS)",
        "caloperate(MONTHS, *; 3)",
        "1993/YEARS + 1994/YEARS",
        "[-2]/DAYS:during:MONTHS",
        'generate(YEARS, DAYS, "Jan 1 1987", "Jan 3 1992")',
    ]

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_same_result(self, sys87, text):
        window = window_of(sys87, 1991, 1995)
        plan, expr = compile_for(sys87, text, window)
        ctx_plan = EvalContext(system=sys87, resolver=RESOLVER,
                               window=window)
        ctx_interp = EvalContext(system=sys87, resolver=RESOLVER,
                                 window=window)
        from_plan = PlanVM(ctx_plan).run(plan)
        from_interp = Interpreter(ctx_interp).evaluate(expr)
        assert from_plan.to_pairs() == from_interp.to_pairs()

    def test_narrowed_plan_generates_fewer_intervals(self, sys87):
        window = window_of(sys87, 1987, 2016)
        text = "[2]/DAYS:during:WEEKS:during:[1]/MONTHS:during:1993/YEARS"
        plan, expr = compile_for(sys87, text, window)
        ctx_plan = EvalContext(system=sys87, resolver=RESOLVER,
                               window=window)
        ctx_interp = EvalContext(system=sys87, resolver=RESOLVER,
                                 window=window)
        assert PlanVM(ctx_plan).run(plan).to_pairs() == \
            Interpreter(ctx_interp).evaluate(expr).to_pairs()
        assert ctx_plan.stats["intervals_generated"] < \
            ctx_interp.stats["intervals_generated"] / 3


class TestPlanErrors:
    def test_unknown_name(self, sys87):
        from repro.lang.errors import PlanError
        with pytest.raises(PlanError):
            compile_expression(parse_expression("NOPE"), sys87, RESOLVER)

    def test_vm_missing_result_register(self, sys87):
        from repro.lang.errors import PlanError
        from repro.lang.plan import Plan
        ctx = EvalContext(system=sys87, resolver=RESOLVER, window=(1, 10))
        with pytest.raises(PlanError):
            PlanVM(ctx).run(Plan([], "t1"))


class TestFunctionPlanSteps:
    """shift/instants/hull compile to plan steps matching the interpreter."""

    FUNCTION_EXPRESSIONS = [
        "shift([n]/DAYS:during:MONTHS, -3)",
        "instants([1]/WEEKS:during:MONTHS)",
        "hull([2]/DAYS:during:WEEKS)",
        "shift(hull([1]/MONTHS:during:1993/YEARS), 7)",
    ]

    @pytest.mark.parametrize("text", FUNCTION_EXPRESSIONS)
    def test_plan_matches_interpreter(self, sys87, text):
        window = window_of(sys87, 1992, 1994)
        plan, expr = compile_for(sys87, text, window)
        ctx_plan = EvalContext(system=sys87, resolver=RESOLVER,
                               window=window)
        ctx_interp = EvalContext(system=sys87, resolver=RESOLVER,
                                 window=window)
        assert PlanVM(ctx_plan).run(plan).to_pairs() == \
            Interpreter(ctx_interp).evaluate(expr).to_pairs()

    def test_steps_render_in_plan_text(self, sys87):
        window = window_of(sys87, 1992, 1994)
        plan, _ = compile_for(
            sys87, "shift(instants(hull([1]/WEEKS:during:MONTHS)), 2)",
            window)
        text = plan.text()
        assert "shift(" in text and "instants(" in text and "hull(" in text
