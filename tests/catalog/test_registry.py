"""Unit tests for the calendar registry (define/evaluate/next_occurrence)."""

import pytest

from repro.core import Calendar, CalendarError, Granularity


class TestDefine:
    def test_define_script_calendar(self, registry):
        record = registry.define(
            "MidMonth", script="{return([15]/DAYS:during:MONTHS);}")
        assert record.derivation_script is not None
        assert "MidMonth" in registry

    def test_define_explicit_values(self, registry):
        registry.define("Special", values=[(100, 100), (200, 200)],
                        granularity="DAYS")
        cal = registry.evaluate("Special")
        assert cal.to_pairs() == ((100, 100), (200, 200))

    def test_both_script_and_values_rejected(self, registry):
        with pytest.raises(CalendarError):
            registry.define("Bad", script="{return(DAYS);}",
                            values=[(1, 1)])

    def test_neither_rejected(self, registry):
        with pytest.raises(CalendarError):
            registry.define("Bad")

    def test_duplicate_rejected(self, registry):
        with pytest.raises(CalendarError):
            registry.define("Tuesdays",
                            script="{return([2]/DAYS:during:WEEKS);}")

    def test_replace(self, registry):
        registry.define("Tuesdays",
                        script="{return([3]/DAYS:during:WEEKS);}",
                        granularity="DAYS", replace=True)
        cal = registry.evaluate("Tuesdays",
                                window=("Jan 1 1993", "Jan 31 1993"))
        # Now actually Wednesdays.
        assert all(registry.system.epoch.weekday_of(iv.lo) == 3
                   for iv in cal.elements)

    def test_plan_compiled_for_single_expression(self, registry):
        record = registry.record("Tuesdays")
        assert record.eval_plan is not None

    def test_no_plan_for_multi_statement(self, registry):
        record = registry.define(
            "TwoStep", script="{x = [2]/DAYS:during:WEEKS; return(x);}")
        assert record.eval_plan is None

    def test_granularity_inference_single_expr(self, registry):
        record = registry.define(
            "SomeWeeks", script="{return([2]/WEEKS:during:MONTHS);}")
        assert record.granularity == Granularity.WEEKS

    def test_granularity_inference_through_if(self, registry):
        record = registry.define("Branchy", script="""
        {t = [5]/DAYS:during:WEEKS;
         if (t) return(t); else return([4]/DAYS:during:WEEKS);}
        """)
        assert record.granularity == Granularity.DAYS

    def test_drop(self, registry):
        registry.define("Gone", script="{return(DAYS);}")
        registry.drop("Gone")
        assert "Gone" not in registry
        with pytest.raises(CalendarError):
            registry.record("Gone")


class TestEvaluate:
    def test_plan_and_interpreter_agree(self, registry):
        window = ("Jan 1 1993", "Dec 31 1993")
        via_plan = registry.evaluate("Tuesdays", window=window,
                                     use_plan=True)
        via_interp = registry.evaluate("Tuesdays", window=window,
                                       use_plan=False)
        assert via_plan.to_pairs() == via_interp.to_pairs()

    def test_window_as_dates_or_ticks(self, registry):
        d1 = registry.system.day_of("Jan 1 1993")
        d2 = registry.system.day_of("Dec 31 1993")
        by_dates = registry.evaluate("Tuesdays",
                                     window=("Jan 1 1993", "Dec 31 1993"))
        by_ticks = registry.evaluate("Tuesdays", window=(d1, d2))
        assert by_dates.to_pairs() == by_ticks.to_pairs()

    def test_granularity_stamped(self, registry):
        cal = registry.evaluate("Tuesdays",
                                window=("Jan 1 1993", "Jan 31 1993"))
        assert cal.granularity == Granularity.DAYS

    def test_lifespan_clips_result(self, registry):
        registry.define("Nineties",
                        script="{return([n]/DAYS:during:MONTHS);}",
                        granularity="DAYS",
                        lifespan=(1990.0, 1991.0))
        cal = registry.evaluate("Nineties",
                                window=("Jan 1 1989", "Dec 31 1992"))
        years = {registry.system.date_of(iv.lo).year
                 for iv in cal.elements}
        assert years == {1990, 1991}

    def test_eval_expression(self, registry):
        cal = registry.eval_expression(
            "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS")
        lo = registry.system.day_of("Jan 11 1993")
        assert cal.to_pairs() == ((lo, lo + 6),)

    def test_eval_expression_unoptimized_agrees(self, registry):
        text = "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS"
        assert registry.eval_expression(text, optimize=True).to_pairs() \
            == registry.eval_expression(text, optimize=False).to_pairs()

    def test_eval_script_with_env(self, registry):
        result = registry.eval_script(
            "{return(X + Y);}",
            env={"X": Calendar.point(5), "Y": Calendar.point(9)})
        assert result.to_pairs() == ((5, 5), (9, 9))

    def test_unknown_calendar(self, registry):
        with pytest.raises(CalendarError):
            registry.evaluate("NoSuch")


class TestNextOccurrence:
    def test_next_tuesday(self, registry):
        t0 = registry.system.day_of("Jan 1 1993")  # a Friday
        nxt = registry.next_occurrence("Tuesdays", t0)
        assert str(registry.system.date_of(nxt)) == "Jan 5 1993"

    def test_strictly_after(self, registry):
        tue = registry.system.day_of("Jan 5 1993")
        nxt = registry.next_occurrence("Tuesdays", tue)
        assert str(registry.system.date_of(nxt)) == "Jan 12 1993"

    def test_expression_text(self, registry):
        t0 = registry.system.day_of("Jan 1 1993")
        nxt = registry.next_occurrence("[1]/DAYS:during:MONTHS", t0)
        assert str(registry.system.date_of(nxt)) == "Feb 1 1993"

    def test_horizon_exhausted(self, registry):
        registry.define("OneShot", values=[(10, 10)], granularity="DAYS")
        assert registry.next_occurrence("OneShot", 10,
                                        horizon_days=400) is None

    def test_far_occurrence_found_by_growing_window(self, registry):
        registry.define("FarShot", values=[(3000, 3000)],
                        granularity="DAYS")
        assert registry.next_occurrence("FarShot", 10) == 3000


class TestRender:
    def test_figure1_via_registry(self, registry):
        text = registry.render("Tuesdays")
        assert "Tuesdays" in text
        assert "Eval-Plan" in text
        assert "set of procedural statements" in text
