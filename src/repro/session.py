"""The unified entry point: one object wiring the whole stack together.

A :class:`Session` constructs (or adopts) the calendar registry, the
database, the rule manager, the simulated clock and the DBCRON daemon
*together*, attaching one :class:`~repro.obs.instrument.Instrumentation`
to all of them.  It is the recommended facade for programmatic use::

    from repro import Session

    session = Session("Jan 1 1987")
    cal = session.eval("[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS")
    print(session.explain("AM_BUS_DAYS - HOLIDAYS").render())
    profile = session.profile("[22]/DAYS:during:MONTHS")
    print(profile.render())

The individual constructors (:class:`~repro.catalog.CalendarRegistry`,
:class:`~repro.db.Database`, :class:`~repro.rules.RuleManager`, …) keep
working unchanged; a session merely saves the boilerplate of wiring them
and gives observability (``explain`` / ``profile`` / ``metrics``) one
obvious home.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog import (
    CalendarRegistry,
    install_standard_calendars,
    install_us_holidays,
)
from repro.core.basis import CalendarSystem
from repro.core.matcache import MaterialisationCache
from repro.db import Database
from repro.lang.errors import ParseError, PlanError
from repro.lang.factorizer import factorize
from repro.lang.parser import parse_expression
from repro.lang.plan import Plan
from repro.lang.planner import compile_expression
from repro.obs.instrument import Instrumentation
from repro.obs.export import export_json
from repro.obs.tracer import Span, Tracer
from repro.rules import DBCron, RuleManager, SimulatedClock

__all__ = ["Session", "Explanation", "Profile"]


@dataclass
class Explanation:
    """The annotated evaluation strategy of a calendar expression."""

    #: The expression (or calendar name) that was explained.
    source: str
    #: Rendering of the factorized expression actually evaluated.
    factored: str
    #: Factorizer rewrites applied, in application order.
    rewrites: list[str] = field(default_factory=list)
    #: The compiled evaluation plan, or None when the expression can only
    #: run through the interpreter.
    plan: Plan | None = None
    #: Why there is no plan (empty when there is one).
    note: str = ""

    def render(self) -> str:
        """Readable multi-line rendering of the whole strategy."""
        lines = [f"expression : {self.source}"]
        if self.factored != self.source:
            lines.append(f"factorized : {self.factored}")
        for rewrite in self.rewrites:
            lines.append(f"  rewrite  : {rewrite}")
        if self.plan is not None:
            lines.append(f"plan ({len(self.plan)} steps):")
            for step in self.plan.steps:
                lines.append(f"  {step.describe()}")
            lines.append(f"  return {self.plan.result}")
        else:
            lines.append(f"plan       : none ({self.note or 'interpreter'})")
        return "\n".join(lines)


@dataclass
class Profile:
    """A timed execution: the span tree of one traced evaluation."""

    #: The expression/script that was profiled.
    source: str
    #: Root span of the traced run ("session.profile").
    root: Span
    #: The evaluation result (usually a Calendar).
    result: object = None

    def steps(self) -> list[Span]:
        """The per-opcode plan VM spans, in execution order."""
        return [span for span in self.root.walk()
                if span.name.startswith("plan.step.")]

    @property
    def coverage(self) -> float:
        """Share of the root's wall time covered by leaf spans."""
        total = self.root.duration
        if total <= 0.0:
            return 1.0
        covered = sum(span.duration for span in self.root.leaves())
        return min(1.0, covered / total)

    def render(self) -> str:
        """The per-step timing tree (ms and share of total)."""
        return self.root.tree()


class Session:
    """Registry + database + rules + clock behind one constructor.

    ``Session(epoch)`` builds the full stack with the standard calendars
    installed; ``Session(database=db)`` adopts an existing database (and
    its registry) instead — both leave every component reachable as an
    attribute (``registry``, ``db``, ``manager``, ``clock``, ``cron``)
    so existing code keeps working underneath the facade.
    """

    def __init__(self, epoch: str = "Jan 1 1987", *,
                 system: CalendarSystem | None = None,
                 registry: CalendarRegistry | None = None,
                 database: Database | None = None,
                 horizon_years: int = 30,
                 standard_calendars: bool = True,
                 holiday_years: tuple[int, int] | None = None,
                 clock_start: int = 1, cron_period: int = 7,
                 matcache: MaterialisationCache | None = None,
                 instrumentation: Instrumentation | None = None) -> None:
        self._explicit_instrumentation = instrumentation
        if database is None:
            if registry is None:
                registry = CalendarRegistry(
                    system or CalendarSystem.starting(epoch),
                    default_horizon_years=horizon_years,
                    matcache=matcache,
                    instrumentation=instrumentation)
                if standard_calendars:
                    install_standard_calendars(registry)
                if holiday_years is not None:
                    install_us_holidays(registry, *holiday_years)
            database = Database(calendars=registry)
        self.attach_database(database, clock_start=clock_start,
                             cron_period=cron_period)

    def attach_database(self, database: Database, *,
                        clock_start: int = 1,
                        cron_period: int = 7) -> None:
        """Adopt a database (e.g. a restored one) as this session's stack.

        Rebuilds the rule manager / clock / DBCRON wiring around it and
        re-points the session attributes; the previous components are
        discarded.
        """
        if self._explicit_instrumentation is not None:
            database.calendars.instrumentation = \
                self._explicit_instrumentation
        self.db = database
        self.registry = database.calendars
        self.system = self.registry.system
        self.manager = database.rule_manager or RuleManager(database)
        self.clock = SimulatedClock(now=clock_start)
        self.cron = DBCron(self.manager, self.clock, period=cron_period)

    # -- observability -------------------------------------------------------

    @property
    def instrumentation(self) -> Instrumentation:
        """The metrics/tracing attachment point shared by the stack."""
        return self.registry.instrumentation

    def metrics(self) -> dict:
        """Snapshot of every metric: name -> value/summary."""
        return self.instrumentation.metrics.snapshot()

    def recent_traces(self) -> list[Span]:
        """Recently finished root spans (requires tracing enabled)."""
        return self.instrumentation.recent_traces()

    def export_json(self, *, traces: bool = True, indent: int = 2) -> str:
        """Metrics (and optionally traces) as a JSON document."""
        return export_json(self.instrumentation, traces=traces,
                           indent=indent)

    def cache_stats(self) -> dict:
        """The shared materialisation cache's counters and latencies."""
        return self.registry.cache_stats()

    # -- evaluation ----------------------------------------------------------

    def eval(self, text: str, *, window=None, today=None):
        """Evaluate a calendar name, expression, or script.

        Defined calendar names go through the catalog (stored plan),
        expressions through factorize+plan, and anything that does not
        parse as a single expression is run as a full script.
        """
        return self._run_text(text, window, today)

    def query(self, text: str, bindings: dict | None = None):
        """Execute one Postquel statement against the session database."""
        return self.db.execute(text, bindings)

    def next_occurrence(self, name_or_expr: str, after, **kwargs):
        """Delegate to :meth:`CalendarRegistry.next_occurrence`."""
        return self.registry.next_occurrence(name_or_expr, after, **kwargs)

    def _run_text(self, text: str, window, today):
        if text in self.registry:
            return self.registry.evaluate(text, window=window, today=today)
        try:
            return self.registry.eval_expression(text, window=window,
                                                 today=today)
        except ParseError:
            return self.registry.eval_script(text, window=window,
                                             today=today)

    # -- explain -------------------------------------------------------------

    def explain(self, text: str, *, window=None) -> Explanation:
        """The evaluation strategy of an expression or defined calendar.

        Parses and factorizes ``text`` (or the derivation script of a
        defined calendar), compiles the evaluation plan and reports the
        applied rewrites — without executing anything.
        """
        registry = self.registry
        source = text
        if text in registry:
            record = registry.record(text)
            if record.is_explicit:
                return Explanation(source=text, factored=text,
                                   note="explicit calendar (stored values)")
            parsed = record.parsed_script
            if not parsed.is_single_expression():
                return Explanation(
                    source=text,
                    factored=record.derivation_script or text,
                    note="multi-statement script (interpreter)")
            expr = parsed.single_expression()
        else:
            expr = parse_expression(text)
        result = factorize(expr, registry.resolver)
        ctx_window = registry._coerce_window(window)
        try:
            plan = compile_expression(result.expression, registry.system,
                                      registry.resolver,
                                      context_window=ctx_window)
        except PlanError as exc:
            return Explanation(source=source,
                               factored=str(result.expression),
                               rewrites=list(result.rewrites),
                               note=f"interpreter fallback: {exc}")
        return Explanation(source=source, factored=str(result.expression),
                           rewrites=list(result.rewrites), plan=plan)

    # -- profile -------------------------------------------------------------

    def profile(self, text: str, *, window=None, today=None) -> Profile:
        """Execute ``text`` with tracing forced on; the timing tree.

        A private tracer is installed for the duration of the run (the
        session's normal tracing state and trace ring are untouched) and
        the root span wraps the whole evaluation, so
        :attr:`Profile.coverage` reports how much of the wall time the
        leaf spans account for.
        """
        inst = self.instrumentation
        private = Tracer(ring_size=4)
        previous = inst.swap_tracer(private, tracing=True)
        try:
            with private.span("session.profile", source=text):
                result = self._run_text(text, window, today)
        finally:
            inst.swap_tracer(*previous)
        root = private.recent()[-1]
        return Profile(source=text, root=root, result=result)
