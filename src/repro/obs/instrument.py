"""The instrumentation bundle wired once through every subsystem.

An :class:`Instrumentation` pairs one :class:`~repro.obs.metrics.
MetricsRegistry` with one :class:`~repro.obs.tracer.Tracer` and a
``tracing`` switch.  Subsystems hold the bundle and read
``instrumentation.tracer`` — which is **None while tracing is
disabled** — so the per-span cost of disabled tracing is a single
``if tracer is not None`` branch, with no no-op context manager in the
hot loop.  Metrics instruments stay live either way (counters are cheap
and power ``\\metrics`` / ``cache_stats``).

A process-wide default bundle backs components constructed without an
explicit one; the environment variable ``REPRO_TRACE`` (``1``/``on``)
enables tracing on it at creation, which is how the CI tracing pass runs
the whole test suite traced.
"""

from __future__ import annotations

import os
import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryPipeline
from repro.obs.tracer import Span, Tracer

__all__ = ["Instrumentation", "get_default_instrumentation",
           "set_default_instrumentation"]


class Instrumentation:
    """One metrics registry + one tracer + the tracing on/off switch.

    Since the telemetry pipeline (PR 4), the bundle also carries the
    optional event-pipeline attachment point: :attr:`pipeline` is
    **None until telemetry is enabled**, so event emission sites pay
    the same single-branch cost as disabled tracing
    (``if pipeline is not None: pipeline.emit(...)``).
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 tracing: bool = False,
                 pipeline: TelemetryPipeline | None = None) -> None:
        #: Always-live metrics registry.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else Tracer()
        self._tracing = bool(tracing)
        #: The structured event pipeline, or None while telemetry is
        #: off — hot paths emit behind one ``is not None`` branch.
        self.pipeline = pipeline

    # -- tracing switch -------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """True when spans are being recorded."""
        return self._tracing

    @tracing.setter
    def tracing(self, value: bool) -> None:
        """Flip the tracing switch."""
        self._tracing = bool(value)

    def enable_tracing(self) -> None:
        """Start recording spans."""
        self._tracing = True

    def disable_tracing(self) -> None:
        """Stop recording spans (hot paths fall back to the bare branch)."""
        self._tracing = False

    @property
    def tracer(self) -> Tracer | None:
        """The tracer while tracing is enabled, else **None**.

        Hot paths bind this once per operation and guard every span with
        ``if tracer is not None`` — the whole disabled-mode overhead.
        """
        return self._tracer if self._tracing else None

    @property
    def raw_tracer(self) -> Tracer:
        """The underlying tracer regardless of the switch (ring access)."""
        return self._tracer

    # -- telemetry ------------------------------------------------------------

    def attach_telemetry(self, pipeline: TelemetryPipeline | None = None
                         ) -> TelemetryPipeline:
        """Enable event emission; returns the (possibly new) pipeline."""
        if pipeline is None:
            pipeline = self.pipeline if self.pipeline is not None \
                else TelemetryPipeline()
        self.pipeline = pipeline
        return pipeline

    def detach_telemetry(self) -> TelemetryPipeline | None:
        """Disable event emission; returns the detached pipeline."""
        pipeline, self.pipeline = self.pipeline, None
        return pipeline

    # -- swapping -------------------------------------------------------------

    def swap_tracer(self, tracer: Tracer, tracing: bool = True
                    ) -> tuple[Tracer, bool]:
        """Install ``tracer`` (and a switch state); returns the previous pair.

        Used by :meth:`repro.session.Session.profile` to capture one
        evaluation into a private trace tree and restore the previous
        state afterwards.
        """
        previous = (self._tracer, self._tracing)
        self._tracer = tracer
        self._tracing = tracing
        return previous

    def recent_traces(self) -> "list[Span]":
        """Finished root spans in the ring buffer, oldest first."""
        return self._tracer.recent()

    def __repr__(self) -> str:
        state = "on" if self._tracing else "off"
        return f"Instrumentation(tracing={state})"


# -- process-wide default ------------------------------------------------------

_default: Instrumentation | None = None
_default_lock = threading.Lock()


def _env_tracing() -> bool:
    return os.environ.get("REPRO_TRACE", "0").lower() in ("1", "on",
                                                          "true", "yes")


def get_default_instrumentation() -> Instrumentation:
    """The process-wide bundle (created on first use; see module docs)."""
    global _default
    with _default_lock:
        if _default is None:
            _default = Instrumentation(tracing=_env_tracing())
        return _default


def set_default_instrumentation(instrumentation: Instrumentation
                                ) -> Instrumentation | None:
    """Swap the process-wide bundle; returns the previous one."""
    global _default
    with _default_lock:
        previous = _default
        _default = instrumentation
        return previous
