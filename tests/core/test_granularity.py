"""Unit tests for the granularity lattice."""

import pytest

from repro.core import Granularity, GranularityError
from repro.core.granularity import coarsest, exact_ratio, finest, seconds_per


class TestOrdering:
    def test_total_order(self):
        names = ["SECONDS", "MINUTES", "HOURS", "DAYS", "WEEKS",
                 "MONTHS", "YEARS", "DECADES", "CENTURY"]
        grans = [Granularity.parse(n) for n in names]
        assert grans == sorted(grans)

    def test_finer_coarser(self):
        assert Granularity.DAYS.finer_than(Granularity.WEEKS)
        assert Granularity.YEARS.coarser_than(Granularity.MONTHS)
        assert not Granularity.DAYS.finer_than(Granularity.DAYS)

    def test_finest_coarsest(self):
        assert finest(Granularity.DAYS, Granularity.YEARS) == \
            Granularity.DAYS
        assert coarsest(Granularity.DAYS, Granularity.YEARS) == \
            Granularity.YEARS

    def test_finest_requires_args(self):
        with pytest.raises(GranularityError):
            finest()
        with pytest.raises(GranularityError):
            coarsest()


class TestParse:
    def test_case_insensitive(self):
        assert Granularity.parse("days") == Granularity.DAYS
        assert Granularity.parse("Days") == Granularity.DAYS

    def test_identity(self):
        assert Granularity.parse(Granularity.WEEKS) == Granularity.WEEKS

    def test_unknown(self):
        with pytest.raises(GranularityError):
            Granularity.parse("fortnights")

    def test_str(self):
        assert str(Granularity.DAYS) == "DAYS"


class TestRatios:
    def test_exact_chains(self):
        assert exact_ratio(Granularity.SECONDS, Granularity.MINUTES) == 60
        assert exact_ratio(Granularity.HOURS, Granularity.DAYS) == 24
        assert exact_ratio(Granularity.DAYS, Granularity.WEEKS) == 7
        assert exact_ratio(Granularity.MONTHS, Granularity.YEARS) == 12
        assert exact_ratio(Granularity.YEARS, Granularity.CENTURY) == 100

    def test_equal_is_one(self):
        assert exact_ratio(Granularity.DAYS, Granularity.DAYS) == 1

    def test_irregular_is_none(self):
        assert exact_ratio(Granularity.DAYS, Granularity.MONTHS) is None
        assert exact_ratio(Granularity.WEEKS, Granularity.MONTHS) is None

    def test_inverted_rejected(self):
        with pytest.raises(GranularityError):
            exact_ratio(Granularity.YEARS, Granularity.DAYS)

    def test_seconds_per_monotone(self):
        values = [seconds_per(g) for g in Granularity]
        assert values == sorted(values)
