"""Span-based execution tracing with nested spans and a trace ring.

A :class:`Span` measures one unit of work with
:func:`time.perf_counter`; spans nest (per thread) to form a tree, and
every finished *root* span is appended to a bounded ring buffer of
recent traces (:meth:`Tracer.recent`).

The tracer is designed so that **hot paths pay a single branch when
tracing is off**: instrumented code holds a ``tracer`` reference that is
``None`` when disabled (see :class:`repro.obs.instrument.
Instrumentation`) and wraps work in ``with tracer.span(...)`` only
behind an ``if tracer is not None`` check.  There is deliberately no
always-on no-op context manager in the hot loops.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

__all__ = ["Span", "Tracer"]


class Span:
    """One timed unit of work; a node in a trace tree.

    Spans are context managers: entering starts the clock and pushes the
    span on the tracer's per-thread stack, exiting stops the clock, pops
    the stack and — for root spans — publishes the finished trace to the
    tracer's ring buffer.
    """

    __slots__ = ("name", "meta", "start", "end", "children", "trace_id",
                 "_tracer", "_parent", "_adopt", "_spans", "_dropped",
                 "_epoch")

    def __init__(self, tracer: "Tracer", name: str, meta: dict) -> None:
        self.name = name
        self.meta = meta
        self.start: float | None = None
        self.end: float | None = None
        #: 32-hex trace id; assigned on enter (new for roots, inherited
        #: from the parent otherwise) so histogram exemplars can link
        #: observations back to the trace they occurred in.
        self.trace_id: str | None = None
        self.children: list[Span] = []
        self._tracer = tracer
        self._parent: Span | None = None
        self._adopt: Span | None = None   # cross-thread parent (child_span)
        self._spans = 0      # descendants created (maintained on roots)
        self._dropped = 0    # descendants dropped past the budget
        #: Ring epoch at creation; a clear() between this span's start
        #: and its publish invalidates it (see Tracer.clear).
        self._epoch = tracer._epoch

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        """Start timing and become the current span of this thread.

        A span created with :meth:`Tracer.child_span` and entered on a
        thread with an empty stack attaches to its designated
        cross-thread parent instead of becoming a root — this is how
        per-worker trace fragments roll up into the dispatching thread's
        trace tree.
        """
        stack = self._tracer._stack()
        if stack:
            self._parent = stack[-1]
            self._parent.children.append(self)
        elif self._adopt is not None:
            self._parent = self._adopt
            # list.append is atomic under the GIL, so concurrent workers
            # attaching to one parent do not need a lock.
            self._parent.children.append(self)
        if self._parent is not None:
            self.trace_id = self._parent.trace_id
        else:
            self.trace_id = self._tracer._new_trace_id()
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Stop timing; publish to the ring when this was a root span.

        Exceptions propagate (never swallowed) and are noted in ``meta``;
        underscore-prefixed exception classes are treated as control-flow
        signals (the interpreter's return signal) and not recorded.
        """
        self.end = time.perf_counter()
        if exc_type is not None and not exc_type.__name__.startswith("_"):
            self.meta["error"] = f"{exc_type.__name__}: {exc}"
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if self._parent is None:
            if self._dropped:
                self.meta["dropped_spans"] = self._dropped
            self._tracer._publish(self)
        # Drop the upward/tracer references so finished trees are plain
        # parent->children DAGs: no cycles, collectible by refcounting.
        self._parent = None
        self._adopt = None
        self._tracer = None
        return False

    # -- measurements --------------------------------------------------------

    @property
    def duration(self) -> float:
        """Wall time in seconds (0.0 while still running)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Wall time minus the time spent in child spans."""
        return max(0.0, self.duration -
                   sum(child.duration for child in self.children))

    def walk(self):
        """Yield this span then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> "list[Span]":
        """Every descendant span (or self) without children."""
        return [span for span in self.walk() if not span.children]

    def find(self, name: str) -> "list[Span]":
        """Every span in the tree whose name equals ``name``."""
        return [span for span in self.walk() if span.name == name]

    # -- rendering ------------------------------------------------------------

    def tree(self, _indent: int = 0, _total: float | None = None) -> str:
        """Indented multi-line rendering of the span tree with timings."""
        total = _total if _total is not None else (self.duration or 1e-12)
        share = self.duration / total if total else 0.0
        meta = ""
        if self.meta:
            pairs = ", ".join(f"{k}={v}" for k, v in self.meta.items())
            meta = f"  [{pairs}]"
        line = (f"{'  ' * _indent}{self.name:<32} "
                f"{self.duration * 1e3:9.3f} ms  {share:6.1%}{meta}")
        lines = [line]
        for child in self.children:
            lines.append(child.tree(_indent + 1, total))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready nested dict of the span tree."""
        return {
            "name": self.name,
            "duration_s": self.duration,
            "self_s": self.self_time,
            "meta": dict(self.meta),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
                f"{len(self.children)} children)")


class _DroppedSpan:
    """What :meth:`Tracer.span` returns past the per-trace budget.

    A timing-free stand-in so instrumented ``with`` blocks keep working;
    the root span's ``meta["dropped_spans"]`` counts how many of these
    were handed out.
    """

    __slots__ = ()

    def __enter__(self) -> "_DroppedSpan":
        """No-op."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """No-op; exceptions propagate."""
        return False


_DROPPED = _DroppedSpan()


class Tracer:
    """Creates nested spans and keeps a ring buffer of recent traces.

    ``max_spans`` bounds every individual trace: once a root has spawned
    that many descendants (a runaway script loop, say), further spans in
    that trace become no-ops and the root's ``meta["dropped_spans"]``
    records the shortfall — keeping trace memory O(ring_size ×
    max_spans) no matter what the traced program does.
    """

    def __init__(self, ring_size: int = 64, max_spans: int = 5000) -> None:
        if ring_size < 1:
            raise ValueError("the trace ring must hold at least 1 trace")
        if max_spans < 1:
            raise ValueError("the per-trace span budget must be >= 1")
        self.ring_size = ring_size
        self.max_spans = max_spans
        self._ring: deque = deque(maxlen=ring_size)
        self._local = threading.local()
        self._lock = threading.Lock()
        #: Monotone root-trace counter; next() is atomic under the GIL.
        self._trace_ids = itertools.count(1)
        #: Bumped by clear() under the ring lock; spans stamp it at
        #: creation and _publish discards stale-epoch roots, so a trace
        #: started before a clear can never resurface after it.
        self._epoch = 0

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **meta) -> Span:
        """A new span; use as ``with tracer.span("plan.run"):``.

        Returns a no-op stand-in once the current trace has exhausted
        its ``max_spans`` budget.
        """
        stack = self._stack()
        if stack:
            root = stack[0]
            root._spans += 1
            if root._spans >= self.max_spans:
                root._dropped += 1
                return _DROPPED
        return Span(self, name, meta)

    def child_span(self, parent: Span, name: str, **meta) -> Span:
        """A span pre-parented to ``parent`` for use on *another* thread.

        The dispatching thread creates one of these per work item while
        its own span (``parent``) is open; the worker thread enters it,
        and — its stack being empty — the span attaches beneath
        ``parent`` instead of starting a separate root trace.  Further
        spans opened by the worker nest under it through the ordinary
        per-thread stack, so a parallel batch still renders as one tree.
        """
        span = Span(self, name, meta)
        span._adopt = parent
        return span

    def event(self, name: str, **meta) -> Span:
        """Record an instantaneous (zero-duration) point event.

        Attached as a child of the current span when one is open,
        otherwise published to the ring as a degenerate root trace.
        Counts against the same per-trace budget as real spans.
        """
        span = Span(self, name, meta)
        now = time.perf_counter()
        span.start = span.end = now
        stack = self._stack()
        if stack:
            span.trace_id = stack[0].trace_id
            root = stack[0]
            root._spans += 1
            if root._spans >= self.max_spans:
                root._dropped += 1
                return span  # budget spent: timed but not attached
            span._parent = None
            span._tracer = None
            stack[-1].children.append(span)
        else:
            span.trace_id = self._new_trace_id()
            span._tracer = None
            self._publish(span)
        return span

    def _new_trace_id(self) -> str:
        return f"{next(self._trace_ids):032x}"

    def current(self) -> Span | None:
        """The innermost open span of this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_trace_id(self) -> "str | None":
        """The trace id of this thread's open trace, if any.

        Exemplar hook: hot emitters pass this to
        :meth:`~repro.obs.metrics.Histogram.observe` so bucket exemplars
        point back into the trace ring.
        """
        stack = self._stack()
        return stack[0].trace_id if stack else None

    def _publish(self, span: Span) -> None:
        """Append a finished root span unless a clear() superseded it.

        The epoch check happens under the ring lock: without it, a
        worker thread (``eval_many``) finishing a span concurrently
        with :meth:`clear` could re-populate the ring *after* the
        clear returned — the caller would observe supposedly dropped
        traces reappearing.
        """
        with self._lock:
            if span._epoch == self._epoch:
                self._ring.append(span)

    def recent(self) -> "list[Span]":
        """Finished root spans, oldest first (bounded by ``ring_size``)."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        """Drop every recorded trace, including in-flight ones.

        Root spans already *started* but not yet finished belong to the
        old epoch and are discarded when they publish — after clear()
        returns, no span that began before the call can enter the ring
        (the race PR 4 closed; stress-tested in
        ``tests/core/test_tracer_concurrency.py``).
        """
        with self._lock:
            self._ring.clear()
            self._epoch += 1
