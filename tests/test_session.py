"""The :class:`repro.Session` facade: wiring, explain, profile, metrics."""

import json
import warnings

import pytest

from repro import (
    Calendar,
    CalendarRegistry,
    CalendarSystem,
    Database,
    Session,
)
from repro.obs.instrument import Instrumentation


@pytest.fixture()
def session():
    return Session("Jan 1 1987", holiday_years=(1987, 1996),
                   instrumentation=Instrumentation())


class TestWiring:
    def test_components_constructed_together(self, session):
        assert session.db.calendars is session.registry
        assert session.manager.db is session.db
        assert session.cron.manager is session.manager
        assert session.cron.clock is session.clock
        assert session.system is session.registry.system

    def test_instrumentation_shared(self, session):
        assert session.db.instrumentation is session.instrumentation
        assert session.registry.instrumentation is session.instrumentation

    def test_adopts_existing_registry(self):
        registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"))
        s = Session(registry=registry)
        assert s.registry is registry
        assert s.db.calendars is registry

    def test_adopts_existing_database(self):
        db = Database()
        s = Session(database=db)
        assert s.db is db
        assert s.registry is db.calendars

    def test_attach_database_rewires(self, session):
        other = Database()
        session.attach_database(other)
        assert session.db is other
        assert session.manager is other.rule_manager
        assert session.cron.db is other

    def test_old_constructors_still_work(self):
        registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"))
        db = Database(calendars=registry)
        assert db.calendars is registry  # no Session required


class TestEvaluation:
    def test_eval_expression(self, session):
        cal = session.eval("[1]/MONTHS:during:1993/YEARS")
        assert isinstance(cal, Calendar)
        assert len(cal.flatten()) == 1

    def test_eval_defined_name(self, session):
        cal = session.eval("HOLIDAYS", window=("Jan 1 1993", "Dec 31 1993"))
        assert isinstance(cal, Calendar)

    def test_eval_script(self, session):
        result = session.eval("x = (DAYS:during:[1]/MONTHS:during:"
                              "1993/YEARS); return (x)")
        assert isinstance(result, Calendar)

    def test_query(self, session):
        session.query("create table t (x int4)")
        session.query("append t (x = 1)")
        assert len(session.query("retrieve (t.x) from t in t")) == 1

    def test_next_occurrence_accepts_date_string(self, session):
        tick = session.next_occurrence("HOLIDAYS", "Feb 1 1993")
        assert isinstance(tick, int)


class TestExplain:
    def test_explain_expression_has_plan(self, session):
        exp = session.explain("[1]/MONTHS:during:1993/YEARS")
        assert exp.plan is not None
        text = exp.render()
        assert "generate(YEARS" in text
        assert "return" in text

    def test_explain_reports_factorizer_rewrites(self, session):
        exp = session.explain(
            "([1]/MONTHS:during:YEARS):during:1993/YEARS")
        assert exp.rewrites  # the paper's Example 1 factorization

    def test_explain_defined_name(self, session):
        session.registry.define(
            "jan", script="return ([1]/MONTHS:during:YEARS)")
        exp = session.explain("jan")
        assert exp.plan is not None

    def test_explain_explicit_calendar(self, session):
        session.registry.define("fixed", values=[(10, 12)],
                                granularity="days")
        exp = session.explain("fixed")
        assert exp.plan is None
        assert "explicit" in exp.note

    def test_explain_does_not_execute(self, session):
        before = session.registry.cache_stats()["served_intervals"]
        session.explain("DAYS:during:[1]/MONTHS:during:1993/YEARS")
        assert session.registry.cache_stats()["served_intervals"] == before


class TestProfile:
    def test_profile_returns_result_and_tree(self, session):
        profile = session.profile("[22]/DAYS:during:[1]/MONTHS:during:"
                                  "1993/YEARS")
        assert isinstance(profile.result, Calendar)
        assert profile.root.name == "session.profile"
        assert "plan.step." in profile.render()

    def test_profile_step_count_matches_plan(self, session):
        text = "[22]/DAYS:during:[1]/MONTHS:during:1993/YEARS"
        exp = session.explain(text)
        # The VM runs the optimized plan when the optimizer gate is on.
        plan = exp.opt_plan if exp.optimized and exp.opt_plan is not None \
            else exp.plan
        profile = session.profile(text)
        assert len(profile.steps()) == len(plan.steps)

    def test_profile_coverage_at_least_90_percent(self, session):
        profile = session.profile("DAYS:during:[1]/MONTHS:during:"
                                  "1993/YEARS")
        assert profile.coverage >= 0.90

    def test_profile_leaves_tracing_state_untouched(self, session):
        assert session.instrumentation.tracer is None
        session.profile("[1]/MONTHS:during:1993/YEARS")
        assert session.instrumentation.tracer is None
        assert session.recent_traces() == []

    def test_profile_with_tracing_already_on(self, session):
        session.instrumentation.enable_tracing()
        tracer_before = session.instrumentation.raw_tracer
        session.profile("[1]/MONTHS:during:1993/YEARS")
        assert session.instrumentation.tracing is True
        assert session.instrumentation.raw_tracer is tracer_before


class TestObservability:
    def test_metrics_snapshot_after_eval(self, session):
        session.eval("[1]/MONTHS:during:1993/YEARS")
        snap = session.metrics()
        assert "matcache.misses" in snap

    def test_traces_recorded_when_enabled(self, session):
        session.instrumentation.enable_tracing()
        session.eval("[2]/MONTHS:during:1993/YEARS")
        names = [s.name for s in session.recent_traces()]
        assert "registry.eval_expression" in names

    def test_vm_step_metrics_recorded_when_tracing(self, session):
        session.instrumentation.enable_tracing()
        session.eval("[3]/MONTHS:during:1993/YEARS")
        assert session.metrics()["vm.steps"] > 0

    def test_export_json(self, session):
        session.eval("[1]/MONTHS:during:1993/YEARS")
        document = json.loads(session.export_json())
        assert document["kind"] == "observability"
        assert "matcache.misses" in document["metrics"]

    def test_dbcron_fire_metrics(self, session):
        fired = []
        session.manager.define_temporal_rule(
            "weekly", "[1]/DAYS:during:WEEKS",
            callback=lambda db, tick: fired.append(tick))
        session.cron.run_until(session.clock.now + 30)
        assert fired
        snap = session.metrics()
        assert snap["dbcron.fires"] == len(fired)
        assert snap["dbcron.fire_seconds"]["count"] == len(fired)
        assert snap["dbcron.probes"] >= 1


class TestWindowConventions:
    def test_string_window(self, session):
        cal = session.eval("DAYS", window="Jan 1 1993 .. Jan 5 1993")
        assert len(cal.flatten()) == 5

    def test_tuple_of_strings_window(self, session):
        cal = session.eval("DAYS", window=("Jan 1 1993", "Jan 5 1993"))
        assert len(cal.flatten()) == 5

    def test_bad_window_rejected(self, session):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            session.eval("DAYS", window="not a window")

    def test_positional_window_deprecated(self, session):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session.registry.eval_expression(
                "DAYS", ("Jan 1 1993", "Jan 3 1993"))
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_positional_today_deprecated(self, session):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session.registry.evaluate(
                "HOLIDAYS", ("Jan 1 1993", "Dec 31 1993"), 2200)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_positional_eval_script_deprecated(self, session):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session.registry.eval_script(
                "return (DAYS)", ("Jan 1 1993", "Jan 3 1993"))
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_keyword_use_does_not_warn(self, session):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session.registry.eval_expression(
                "DAYS", window=("Jan 1 1993", "Jan 3 1993"))
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
