"""Property-based tests: our chronology vs the datetime oracle."""

import datetime

from hypothesis import given, strategies as st

from repro.core import CivilDate, Epoch, weekday
from repro.core.chrono import (
    civil_from_rata_die,
    days_in_month,
    rata_die,
)

dates = st.dates(min_value=datetime.date(1800, 1, 1),
                 max_value=datetime.date(2200, 12, 31))
serials = st.integers(min_value=-80_000, max_value=80_000)


def to_civil(d: datetime.date) -> CivilDate:
    return CivilDate(d.year, d.month, d.day)


class TestVsDatetimeOracle:
    @given(dates)
    def test_rata_die_matches_toordinal(self, d):
        # datetime ordinal 1 = Jan 1 year 1; our serial 0 = 1970-01-01.
        offset = datetime.date(1970, 1, 1).toordinal()
        assert rata_die(to_civil(d)) == d.toordinal() - offset

    @given(serials)
    def test_civil_from_rata_die_roundtrip(self, serial):
        assert rata_die(civil_from_rata_die(serial)) == serial

    @given(dates)
    def test_weekday_matches_isoweekday(self, d):
        assert weekday(to_civil(d)) == d.isoweekday()

    @given(dates)
    def test_days_in_month_consistent(self, d):
        last = days_in_month(d.year, d.month)
        assert CivilDate(d.year, d.month, last) is not None
        next_month = datetime.date(d.year + (d.month == 12),
                                   d.month % 12 + 1, 1)
        assert (next_month - datetime.date(d.year, d.month, 1)).days == \
            last


class TestEpochProperties:
    @given(dates, dates)
    def test_day_numbers_order_preserving(self, a, b):
        epoch = Epoch.of("Jan 1 1987")
        na, nb = epoch.day_number(to_civil(a)), epoch.day_number(
            to_civil(b))
        assert (a < b) == (na < nb)

    @given(dates)
    def test_day_number_roundtrip(self, d):
        epoch = Epoch.of("Jan 1 1987")
        n = epoch.day_number(to_civil(d))
        assert n != 0
        assert epoch.date_of(n) == to_civil(d)

    @given(dates, st.integers(min_value=-1000, max_value=1000))
    def test_add_days_matches_timedelta(self, d, delta):
        epoch = Epoch.of("Jan 1 1987")
        n = epoch.day_number(to_civil(d))
        moved = epoch.date_of(epoch.add_days(n, delta))
        oracle = d + datetime.timedelta(days=delta)
        assert (moved.year, moved.month, moved.day) == \
            (oracle.year, oracle.month, oracle.day)
