"""Span tracer: nesting, the trace ring, and the disabled no-op path."""

import threading

import pytest

from repro.obs.instrument import (
    Instrumentation,
    get_default_instrumentation,
    set_default_instrumentation,
)
from repro.obs.tracer import Tracer


class TestSpanNesting:
    def test_children_attach_to_open_parent(self):
        t = Tracer()
        with t.span("root"):
            with t.span("child-a"):
                with t.span("grandchild"):
                    pass
            with t.span("child-b"):
                pass
        [root] = t.recent()
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].name == "grandchild"

    def test_durations_nest(self):
        t = Tracer()
        with t.span("root"):
            with t.span("child"):
                pass
        [root] = t.recent()
        child = root.children[0]
        assert root.duration >= child.duration >= 0.0
        assert root.self_time == pytest.approx(
            root.duration - child.duration)

    def test_walk_leaves_find(self):
        t = Tracer()
        with t.span("root"):
            with t.span("a"):
                pass
            with t.span("a"):
                pass
        [root] = t.recent()
        assert [s.name for s in root.walk()] == ["root", "a", "a"]
        assert [s.name for s in root.leaves()] == ["a", "a"]
        assert len(root.find("a")) == 2

    def test_exception_recorded_and_propagated(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("bad")
        [root] = t.recent()
        assert "RuntimeError" in root.meta["error"]

    def test_control_flow_signals_not_recorded(self):
        class _Signal(Exception):
            pass

        t = Tracer()
        with pytest.raises(_Signal):
            with t.span("loop"):
                raise _Signal()
        [root] = t.recent()
        assert "error" not in root.meta

    def test_event_attaches_to_current_span(self):
        t = Tracer()
        with t.span("root"):
            t.event("decision", kind="narrow")
        [root] = t.recent()
        assert root.children[0].name == "decision"
        assert root.children[0].duration == 0.0

    def test_tree_and_to_dict_render(self):
        t = Tracer()
        with t.span("root", label="x"):
            with t.span("child"):
                pass
        [root] = t.recent()
        text = root.tree()
        assert "root" in text and "child" in text and "label=x" in text
        d = root.to_dict()
        assert d["name"] == "root"
        assert d["children"][0]["name"] == "child"


class TestTraceRing:
    def test_ring_evicts_oldest(self):
        t = Tracer(ring_size=3)
        for i in range(5):
            with t.span(f"s{i}"):
                pass
        assert [s.name for s in t.recent()] == ["s2", "s3", "s4"]

    def test_only_roots_published(self):
        t = Tracer()
        with t.span("root"):
            with t.span("child"):
                pass
        assert [s.name for s in t.recent()] == ["root"]

    def test_ring_size_validated(self):
        with pytest.raises(ValueError):
            Tracer(ring_size=0)

    def test_span_budget_bounds_trace_size(self):
        t = Tracer(max_spans=5)
        with t.span("root"):
            for _ in range(20):
                with t.span("child"):
                    pass
        [root] = t.recent()
        assert len(list(root.walk())) <= 5
        assert root.meta["dropped_spans"] == 16  # 20 attempts, 4 kept

    def test_span_budget_counts_events(self):
        t = Tracer(max_spans=3)
        with t.span("root"):
            for _ in range(10):
                t.event("tick")
        [root] = t.recent()
        assert len(root.children) == 2
        assert root.meta["dropped_spans"] == 8

    def test_span_budget_validated(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_finished_trees_have_no_back_references(self):
        t = Tracer()
        with t.span("root"):
            with t.span("child"):
                pass
        [root] = t.recent()
        for span in root.walk():
            assert span._parent is None
            assert span._tracer is None

    def test_clear(self):
        t = Tracer()
        with t.span("s"):
            pass
        t.clear()
        assert t.recent() == []

    def test_per_thread_stacks_are_independent(self):
        t = Tracer()
        seen = []

        def worker():
            with t.span("worker-root"):
                seen.append(t.current().name)

        with t.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert t.current().name == "main-root"
        assert seen == ["worker-root"]
        assert sorted(s.name for s in t.recent()) == \
            ["main-root", "worker-root"]


class TestInstrumentation:
    def test_disabled_tracer_is_none(self):
        inst = Instrumentation()
        assert inst.tracer is None
        assert inst.tracing is False

    def test_enable_disable(self):
        inst = Instrumentation()
        inst.enable_tracing()
        assert inst.tracer is inst.raw_tracer
        inst.disable_tracing()
        assert inst.tracer is None

    def test_disabled_records_nothing(self):
        inst = Instrumentation()
        tracer = inst.tracer
        if tracer is not None:  # the hot-path guard under test
            with tracer.span("never"):
                pass
        assert inst.recent_traces() == []

    def test_swap_tracer_restores(self):
        inst = Instrumentation()
        private = Tracer()
        previous = inst.swap_tracer(private, tracing=True)
        assert inst.tracer is private
        inst.swap_tracer(*previous)
        assert inst.tracer is None
        assert inst.raw_tracer is not private

    def test_env_var_enables_default_instrumentation(self, monkeypatch):
        previous = get_default_instrumentation()
        monkeypatch.setenv("REPRO_TRACE", "1")
        try:
            set_default_instrumentation(None)
            assert get_default_instrumentation().tracing is True
        finally:
            set_default_instrumentation(previous)

    def test_env_var_off_values(self, monkeypatch):
        previous = get_default_instrumentation()
        monkeypatch.setenv("REPRO_TRACE", "0")
        try:
            set_default_instrumentation(None)
            assert get_default_instrumentation().tracing is False
        finally:
            set_default_instrumentation(previous)
