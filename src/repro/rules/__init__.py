"""Time-based rules: event rules, temporal rules, RULE tables, DBCRON."""

from repro.rules.clock import SimulatedClock, WallClock
from repro.rules.dbcron import DBCron, HeapSchedule, default_scheduler
from repro.rules.events import Event
from repro.rules.facade import RulesFacade
from repro.rules.manager import RuleManager
from repro.rules.rule import EventRule
from repro.rules.tables import RULE_INFO, RULE_TIME, RuleTables
from repro.rules.temporal import TemporalRule
from repro.rules.throttle import TenantThrottle, ThrottledError, TokenBucket
from repro.rules.wheel import HierarchicalWheel, WheelSchedule

__all__ = [
    "Event", "EventRule", "TemporalRule", "RuleManager",
    "RuleTables", "RULE_INFO", "RULE_TIME",
    "SimulatedClock", "WallClock", "DBCron",
    "HeapSchedule", "WheelSchedule", "HierarchicalWheel",
    "default_scheduler", "RulesFacade",
    "TenantThrottle", "TokenBucket", "ThrottledError",
]
