"""Tests for rule lifespans, catch-up policies and the wall clock."""

import pytest

from repro.core import AxisError, CalendarSystem
from repro.db import Database, RuleError
from repro.rules import (
    DBCron,
    RuleManager,
    SimulatedClock,
    TemporalRule,
    WallClock,
)


class TestTemporalRuleLifespan:
    def test_rule_only_fires_inside_lifespan(self, ruled_db):
        db, manager, clock, cron = ruled_db
        fired = []
        lo = db.system.day_of("Jan 11 1993")
        hi = db.system.day_of("Jan 31 1993")
        manager.define_temporal_rule(
            "windowed", "[2]/DAYS:during:WEEKS",
            callback=lambda d, t: fired.append(t),
            after=clock.now, valid_between=(lo, hi))
        cron.run_until(db.system.day_of("Mar 15 1993"))
        dates = [str(db.system.date_of(t)) for t in fired]
        assert dates == ["Jan 12 1993", "Jan 19 1993", "Jan 26 1993"]

    def test_rule_defined_before_lifespan_waits(self, ruled_db):
        db, manager, clock, cron = ruled_db
        lo = db.system.day_of("Feb 1 1993")
        hi = db.system.day_of("Feb 28 1993")
        rule = manager.define_temporal_rule(
            "later", "[2]/DAYS:during:WEEKS",
            callback=lambda d, t: None,
            after=clock.now, valid_between=(lo, hi))
        first = manager.tables.next_fire_of("later")
        assert first >= lo

    def test_expired_rule_unscheduled(self, ruled_db):
        db, manager, clock, cron = ruled_db
        lo = db.system.day_of("Jan 4 1993")
        hi = db.system.day_of("Jan 15 1993")
        manager.define_temporal_rule(
            "short", "[2]/DAYS:during:WEEKS",
            callback=lambda d, t: None,
            after=clock.now, valid_between=(lo, hi))
        cron.run_until(db.system.day_of("Feb 15 1993"))
        assert manager.tables.next_fire_of("short") is None

    def test_inverted_lifespan_rejected(self, db):
        with pytest.raises(RuleError):
            TemporalRule.define("bad", "DAYS", db.calendars,
                                callback=lambda d, t: None,
                                valid_between=(100, 10))

    def test_bad_catchup_policy_rejected(self, db):
        with pytest.raises(RuleError):
            TemporalRule.define("bad", "DAYS", db.calendars,
                                callback=lambda d, t: None,
                                catchup="sometimes")


class TestCatchupPolicies:
    def _run(self, db, policy):
        manager = RuleManager(db)
        clock = SimulatedClock(now=db.system.day_of("Jan 1 1993"))
        cron = DBCron(manager, clock, period=7)
        fired = []
        manager.define_temporal_rule(
            "daily", "DAYS", callback=lambda d, t: fired.append(t),
            after=clock.now, catchup=policy)
        cron.probe()
        # Jump the clock a month in one step: many missed daily points.
        # A daemon waking late re-probes, then drains the schedule.
        clock.advance(30)
        cron.probe()
        cron.fire_due()
        return fired, clock

    def test_all_fires_every_missed_point(self, registry):
        db = Database(calendars=registry)
        fired, clock = self._run(db, "all")
        assert len(fired) == 30

    def test_latest_fires_only_most_recent(self, registry):
        db = Database(calendars=registry)
        fired, clock = self._run(db, "latest")
        assert len(fired) == 1
        assert fired[0] == clock.now

    def test_latest_still_fires_on_time_normally(self, registry):
        db = Database(calendars=registry)
        manager = RuleManager(db)
        clock = SimulatedClock(now=db.system.day_of("Jan 1 1993"))
        cron = DBCron(manager, clock, period=1)
        fired = []
        manager.define_temporal_rule(
            "weekly", "[2]/DAYS:during:WEEKS",
            callback=lambda d, t: fired.append(t),
            after=clock.now, catchup="latest")
        cron.run_until(db.system.day_of("Feb 1 1993"))
        assert len(fired) == 4  # every Tuesday, none skipped


class TestEventRuleLifespan:
    def test_event_rule_respects_lifespan(self, ruled_db):
        db, manager, clock, cron = ruled_db
        db.create_table("src3", [("x", "int4")])
        fired = []
        lo = clock.now + 10
        hi = clock.now + 20
        manager.define_event_rule(
            "gated", "append", "src3",
            callback=lambda d, e: fired.append(clock.now),
            valid_between=(lo, hi))
        db.insert("src3", x=1)           # before activation
        clock.advance(15)
        db.insert("src3", x=2)           # inside
        clock.advance(15)
        db.insert("src3", x=3)           # after expiry
        assert len(fired) == 1

    def test_no_clock_means_always_active(self, db):
        manager = RuleManager(db)
        db.create_table("src4", [("x", "int4")])
        fired = []
        manager.define_event_rule(
            "ungated", "append", "src4",
            callback=lambda d, e: fired.append(1),
            valid_between=(100, 200))
        db.insert("src4", x=1)
        assert fired == [1]  # no clock attached -> lifespan not enforced


class TestWallClock:
    def make(self, start_seconds=760_000_000.0):
        state = {"t": start_seconds}
        system = CalendarSystem.starting("Jan 1 1987")
        clock = WallClock(system, time_source=lambda: state["t"])
        return clock, state, system

    def test_now_matches_chronology(self):
        clock, state, system = self.make()
        # 760000000 s / 86400 = day 8796 since 1970-01-01 = Jan 31 1994.
        assert str(system.date_of(clock.now)) == "Jan 31 1994"

    def test_poll_advances_on_day_boundary(self):
        clock, state, system = self.make()
        before = clock.now
        state["t"] += 3600            # one hour: same day
        assert clock.poll() is False
        state["t"] += 86_400          # next day
        assert clock.poll() is True
        assert clock.now == before + 1

    def test_listeners_notified(self):
        clock, state, _ = self.make()
        seen = []
        clock.subscribe(seen.append)
        state["t"] += 2 * 86_400
        clock.poll()
        assert seen == [clock.now]

    def test_backwards_time_rejected(self):
        clock, state, _ = self.make()
        state["t"] -= 10 * 86_400
        with pytest.raises(AxisError):
            clock.poll()

    def test_manual_advance_rejected(self):
        clock, _, _ = self.make()
        with pytest.raises(AxisError):
            clock.advance(1)

    def test_drives_dbcron(self, registry):
        db = Database(calendars=registry)
        manager = RuleManager(db)
        state = {"t": 760_000_000.0}
        clock = WallClock(db.system, time_source=lambda: state["t"])
        cron = DBCron(manager, clock, period=1)
        fired = []
        manager.define_temporal_rule(
            "daily", "DAYS", callback=lambda d, t: fired.append(t),
            after=clock.now)
        cron.probe()
        for _ in range(5):
            state["t"] += 86_400
            clock.poll()
            cron.probe()
        assert len(fired) == 5
