#!/usr/bin/env python
"""CI smoke: boot a telemetered session, scrape it, validate the scrape.

Exercises the PR-4 acceptance path end to end, over a real socket:

1. boot a :class:`repro.Session` with ``REPRO_TELEMETRY_PORT`` (or
   ``--port``) and a forced-low slow-query threshold;
2. run a 32-script ``eval_many`` batch;
3. scrape ``/metrics`` and **fail on malformed exposition** — every
   sample line must parse, every series needs ``# HELP``/``# TYPE``,
   histogram buckets must be cumulative and end in ``le="+Inf"`` equal
   to ``_count``;
4. assert ``/healthz`` is 200/ok, ``/slowlog`` holds at least one
   record, and ``/events`` saw the batch.

Exit code 0 on success, 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import json
import os
import re
import sys
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.session import Session  # noqa: E402 (path bootstrap first)

_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})? '
    r'(?:[+-]?(?:\d+\.?\d*(?:e[+-]?\d+)?|Inf)|NaN)$')


def _fail(message: str) -> "NoReturn":  # noqa: F821 (3.11+: typing only)
    print(f"telemetry smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as response:
        if response.status != 200:
            _fail(f"GET {url} -> {response.status}")
        return response.read()


def check_exposition(text: str) -> int:
    """Validate the whole scrape; the number of series seen."""
    if not text.endswith("\n"):
        _fail("exposition must end with a newline")
    typed: dict[str, str] = {}
    helped: set[str] = set()
    buckets: dict[str, list[tuple[str, int]]] = {}
    counts: dict[str, int] = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split(" ", 3)[2])
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            if kind not in ("counter", "gauge", "histogram"):
                _fail(f"unknown TYPE {kind!r}: {line!r}")
            typed[name] = kind
        elif line.startswith("#"):
            _fail(f"unexpected comment line: {line!r}")
        else:
            if not _SAMPLE_RE.match(line):
                _fail(f"malformed sample line: {line!r}")
            name = re.split(r"[{ ]", line, 1)[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    base = name[: -len(suffix)]
            if base not in typed and name not in typed:
                _fail(f"sample without TYPE: {line!r}")
            if name.endswith("_bucket"):
                le = re.search(r'le="([^"]+)"', line)
                if le is None:
                    _fail(f"bucket without le label: {line!r}")
                buckets.setdefault(base, []).append(
                    (le.group(1), int(line.rsplit(" ", 1)[1])))
            elif name.endswith("_count") and base in typed \
                    and typed[base] == "histogram":
                counts[base] = int(line.rsplit(" ", 1)[1])
    for name, kind in typed.items():
        if name not in helped:
            _fail(f"series {name} has TYPE but no HELP")
        if kind != "histogram":
            continue
        series = buckets.get(name)
        if not series:
            _fail(f"histogram {name} has no buckets")
        values = [count for _, count in series]
        if values != sorted(values):
            _fail(f"histogram {name} buckets not cumulative: {values}")
        if series[-1][0] != "+Inf":
            _fail(f"histogram {name} does not end in +Inf")
        if series[-1][1] != counts.get(name):
            _fail(f"histogram {name}: +Inf bucket {series[-1][1]} != "
                  f"_count {counts.get(name)}")
    if not typed:
        _fail("empty exposition")
    return len(typed)


def main() -> int:
    port = int(sys.argv[sys.argv.index("--port") + 1]) \
        if "--port" in sys.argv \
        else int(os.environ.get("REPRO_TELEMETRY_PORT", "0"))
    session = Session(telemetry_port=port, slow_query_threshold=0.0,
                      workers=4)
    try:
        server = session.server or session.start_telemetry_server(port)
        scripts = [f"[{i}]/DAYS:during:[1]/MONTHS:during:1993/YEARS"
                   for i in range(1, 17)]
        scripts += [f"[{i}]/WEEKS:during:1993/YEARS" for i in range(1, 17)]
        assert len(scripts) == 32
        results = session.eval_many(scripts)
        if len(results) != 32:
            _fail(f"eval_many returned {len(results)} results")

        series = check_exposition(_get(server.url + "/metrics").decode())
        health = json.loads(_get(server.url + "/healthz"))
        if health["status"] != "ok":
            _fail(f"unhealthy: {health}")
        slowlog = json.loads(_get(server.url + "/slowlog"))
        if len(slowlog) < 1:
            _fail("no slow-query records despite forced-low threshold")
        events = json.loads(_get(server.url + "/events"))
        kinds = {event["kind"] for event in events}
        if "batch.finish" not in kinds:
            _fail(f"batch events missing from /events: {sorted(kinds)}")

        print(f"telemetry smoke OK: {series} series, "
              f"{len(slowlog)} slow-query record(s), "
              f"{len(events)} event(s), "
              f"{session.telemetry.dropped} dropped")
        return 0
    finally:
        session.close()


if __name__ == "__main__":
    raise SystemExit(main())
