"""AST for the Postquel-like query language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "QlExpr", "Const", "ColumnRef", "VarRef", "BinOp", "UnOp", "FuncCall",
    "Target", "RangeVar", "Retrieve", "Append", "Replace", "Delete",
    "CreateTable", "CreateIndex", "DropTable", "DefineCalendar",
    "DefineRule", "DropRule", "Statement",
]


class QlExpr:
    """Base class of query-language expressions."""


@dataclass(frozen=True)
class Const(QlExpr):
    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(QlExpr):
    """``var.column``; var may be NEW or CURRENT inside rule bodies."""

    var: str
    column: str

    def __str__(self) -> str:
        if not self.column:
            return self.var
        return f"{self.var}.{self.column}"


@dataclass(frozen=True)
class VarRef(QlExpr):
    """A bare parameter reference (bound via query parameters)."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class BinOp(QlExpr):
    op: str
    left: QlExpr
    right: QlExpr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(QlExpr):
    op: str
    operand: QlExpr

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class FuncCall(QlExpr):
    name: str
    args: tuple

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Target:
    """One element of a retrieve target list, optionally aliased."""

    expr: QlExpr
    alias: str | None = None

    @property
    def name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.column
        return str(self.expr)


@dataclass(frozen=True)
class RangeVar:
    """``var in relation [as of <expr>]`` of a from-clause.

    ``as_of`` selects the historical (transaction-time) state of the
    relation as seen by transaction id ``as_of``.
    """

    var: str
    relation: str
    as_of: QlExpr | None = None


class Statement:
    """Base class of query-language statements."""


@dataclass(frozen=True)
class Retrieve(Statement):
    targets: tuple
    range_vars: tuple = ()
    where: QlExpr | None = None
    #: The ``on <calendar>`` clause: restricts the first range variable's
    #: valid-time column to the named calendar/expression (section 1's
    #: ``Retrieve (stock.price) on expiration-date``).
    on_calendar: str | None = None
    #: Drop duplicate result rows (``retrieve unique``).
    unique: bool = False
    #: ``order by`` keys: (expr, ascending) pairs.
    order_by: tuple = ()
    #: ``retrieve into <relation>``: materialise the result.
    into: str | None = None


@dataclass(frozen=True)
class Append(Statement):
    relation: str
    assignments: tuple  # of (column, QlExpr)


@dataclass(frozen=True)
class Replace(Statement):
    var: str
    assignments: tuple
    range_vars: tuple = ()
    where: QlExpr | None = None


@dataclass(frozen=True)
class Delete(Statement):
    var: str
    range_vars: tuple = ()
    where: QlExpr | None = None


@dataclass(frozen=True)
class CreateTable(Statement):
    """``create table name (col type, ...) [key (cols)] [valid time col]``."""

    name: str
    columns: tuple          # of (name, type_name)
    key: tuple = ()
    valid_time_column: str | None = None


@dataclass(frozen=True)
class CreateIndex(Statement):
    """``create index on relation (column)``."""

    relation: str
    column: str


@dataclass(frozen=True)
class DropTable(Statement):
    name: str


@dataclass(frozen=True)
class DefineCalendar(Statement):
    """``define calendar NAME as "<script>" [granularity g]`` or
    ``define calendar NAME values ((lo,hi), ...) [granularity g]``."""

    name: str
    script: str | None
    granularity: str | None = None
    values: tuple | None = None


@dataclass(frozen=True)
class DefineRule(Statement):
    """The paper's two rule forms, as statements.

    Event rule:    ``define rule r on append to students
                     [where <cond>] do ( stmt [; stmt]* )``
    Temporal rule: ``define rule r on calendar "<expr>"
                     do ( stmt [; stmt]* )``
    """

    name: str
    event: str | None            # append/delete/replace/retrieve, or None
    relation: str | None
    calendar_expression: str | None
    condition: QlExpr | None
    actions: tuple               # of Statement


@dataclass(frozen=True)
class DropRule(Statement):
    name: str
