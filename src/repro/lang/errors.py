"""Errors raised by the calendar expression language pipeline."""

from __future__ import annotations

from repro.core.errors import CalendarError

__all__ = [
    "LanguageError",
    "LexError",
    "ParseError",
    "NameResolutionError",
    "EvaluationError",
    "PlanError",
    "LoopLimitError",
    "CircularDefinitionError",
]


class LanguageError(CalendarError):
    """Base class for calendar-expression-language errors.

    A known source location is rendered into the message and recorded in
    the :class:`~repro.errors.ReproError` ``context`` payload (keys
    ``line``/``column``) for programmatic consumers.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        if line is not None:
            self.add_context(line=line, column=column)


class LexError(LanguageError):
    """The script contains a character sequence that is not a token."""


class ParseError(LanguageError):
    """The token stream does not form a valid script."""


class NameResolutionError(LanguageError):
    """A calendar name is not defined in the environment or catalog."""


class EvaluationError(LanguageError):
    """A well-formed expression failed during evaluation."""


class PlanError(LanguageError):
    """The planner could not produce an evaluation plan."""


class LoopLimitError(EvaluationError):
    """A ``while`` loop exceeded the interpreter's iteration budget."""


class CircularDefinitionError(LanguageError, RecursionError):
    """Derivation-script expansion recursed too deep (circular derivation).

    Also a :class:`RecursionError` for backwards compatibility with
    callers that caught the builtin.
    """
