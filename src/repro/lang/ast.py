"""AST node types for the calendar expression language.

Expression nodes mirror the algebra of section 3.1 (``foreach``,
selection, label selection, set operators, function calls); statement
nodes cover the script constructs of section 3.3 (assignment, ``if``,
``while``, ``return``).

:func:`render_tree` pretty-prints an expression as an ASCII parse tree in
the style of the paper's Figures 2 and 3, and :func:`count_nodes` /
:func:`expression_text` support the factorization experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.algebra import SelectionPredicate

__all__ = [
    "Node", "Expr", "Stmt",
    "Name", "Today", "IntervalLit", "StringLit", "NumberLit",
    "ForEach", "Select", "LabelSelect", "SetOp", "FunCall",
    "Assign", "If", "While", "Return", "ExprStmt", "Script",
    "render_tree", "count_nodes", "expression_text", "walk",
]


class Node:
    """Common base for AST nodes."""

    def children(self) -> Sequence["Node"]:
        """Direct child nodes, in source order."""
        return ()


class Expr(Node):
    """Base class of expression nodes."""


class Stmt(Node):
    """Base class of statement nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Name(Expr):
    """A calendar name (basic, derived, or a script temporary)."""

    ident: str

    def __str__(self) -> str:
        return self.ident


@dataclass(frozen=True)
class Today(Expr):
    """The distinguished ``today`` instant supplied by the environment."""

    def __str__(self) -> str:
        return "today"


@dataclass(frozen=True)
class IntervalLit(Expr):
    """A literal interval, written ``interval(lo, hi)`` in scripts."""

    lo: int
    hi: int

    def __str__(self) -> str:
        return f"interval({self.lo},{self.hi})"


@dataclass(frozen=True)
class StringLit(Expr):
    """A string literal (used by ``return`` alerts and function args)."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class NumberLit(Expr):
    """An integer literal inside a function argument list."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ForEach(Expr):
    """``left :op: right`` (strict) or ``left .op. right`` (relaxed)."""

    left: Expr
    op: str
    right: Expr
    strict: bool = True

    def children(self) -> Sequence[Node]:
        return (self.left, self.right)

    def __str__(self) -> str:
        sep = ":" if self.strict else "."
        return f"{self.left}{sep}{self.op}{sep}{self.right}"


@dataclass(frozen=True)
class Select(Expr):
    """Positional selection ``[pred]/child``."""

    predicate: SelectionPredicate
    child: Expr

    def children(self) -> Sequence[Node]:
        return (self.child,)

    def __str__(self) -> str:
        return f"{self.predicate}/{self.child}"


@dataclass(frozen=True)
class LabelSelect(Expr):
    """Bare label selection ``label/child`` (e.g. ``1993/YEARS``)."""

    label: int | str
    child: Expr

    def children(self) -> Sequence[Node]:
        return (self.child,)

    def __str__(self) -> str:
        return f"{self.label}/{self.child}"


@dataclass(frozen=True)
class SetOp(Expr):
    """Calendar union ``+``, difference ``-`` or intersection ``&``."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> Sequence[Node]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class FunCall(Expr):
    """A call to a registered function (``generate``, ``caloperate`` …).

    ``Star`` arguments (the paper's ``*`` end marker) appear as the string
    ``"*"`` in ``args``.
    """

    name: str
    args: tuple = ()

    def children(self) -> Sequence[Node]:
        return tuple(a for a in self.args if isinstance(a, Node))

    def __str__(self) -> str:
        rendered = ", ".join(
            str(a) if not isinstance(a, str) or a == "*" else a
            for a in self.args)
        return f"{self.name}({rendered})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Assign(Stmt):
    """``name = expr;`` — script temporaries need no declaration."""

    name: str
    expr: Expr

    def children(self) -> Sequence[Node]:
        return (self.expr,)

    def __str__(self) -> str:
        return f"{self.name} = {self.expr};"


@dataclass(frozen=True)
class If(Stmt):
    condition: Expr
    then_body: tuple
    else_body: tuple = ()

    def children(self) -> Sequence[Node]:
        return (self.condition, *self.then_body, *self.else_body)

    def __str__(self) -> str:
        text = f"if ({self.condition}) {{ … }}"
        if self.else_body:
            text += " else { … }"
        return text


@dataclass(frozen=True)
class While(Stmt):
    condition: Expr
    body: tuple = ()

    def children(self) -> Sequence[Node]:
        return (self.condition, *self.body)

    def __str__(self) -> str:
        return f"while ({self.condition}) {{ … }}"


@dataclass(frozen=True)
class Return(Stmt):
    expr: Expr

    def children(self) -> Sequence[Node]:
        return (self.expr,)

    def __str__(self) -> str:
        return f"return ({self.expr});"


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """A bare expression statement (evaluated for effect/empty check)."""

    expr: Expr

    def children(self) -> Sequence[Node]:
        return (self.expr,)

    def __str__(self) -> str:
        return f"{self.expr};"


@dataclass(frozen=True)
class Script(Node):
    """A full calendar script: the unit of parsing and storage."""

    body: tuple = field(default=())

    def children(self) -> Sequence[Node]:
        return self.body

    def is_single_expression(self) -> bool:
        """True when the script is one expression/return (expandable inline)."""
        return (len(self.body) == 1
                and isinstance(self.body[0], (Return, ExprStmt)))

    def single_expression(self) -> Expr:
        """The sole expression of a single-expression script."""
        stmt = self.body[0]
        assert isinstance(stmt, (Return, ExprStmt))
        return stmt.expr

    def __str__(self) -> str:
        return "{" + " ".join(str(s) for s in self.body) + "}"


# ---------------------------------------------------------------------------
# Tree utilities
# ---------------------------------------------------------------------------

def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of the AST rooted at ``node``."""
    yield node
    for child in node.children():
        yield from walk(child)


def count_nodes(node: Node) -> int:
    """Number of AST nodes (used to compare initial vs factorized trees)."""
    return sum(1 for _ in walk(node))


def expression_text(node: Node) -> str:
    """Round-trippable textual rendering of an expression."""
    return str(node)


def _node_label(node: Node) -> str:
    if isinstance(node, ForEach):
        return f"foreach {node.op}" + ("" if node.strict else " (relaxed)")
    if isinstance(node, Select):
        return f"select {node.predicate}"
    if isinstance(node, LabelSelect):
        return f"select-label {node.label}"
    if isinstance(node, SetOp):
        return f"setop {node.op}"
    if isinstance(node, FunCall):
        return f"call {node.name}"
    if isinstance(node, (Name, Today, IntervalLit, NumberLit, StringLit)):
        return str(node)
    return type(node).__name__


def render_tree(node: Node, indent: str = "") -> str:
    """Render an expression as an ASCII parse tree (paper Figures 2 and 3)."""
    lines: list[str] = []

    def visit(current: Node, prefix: str, tail: bool, root: bool) -> None:
        if root:
            lines.append(_node_label(current))
            child_prefix = ""
        else:
            connector = "`-- " if tail else "|-- "
            lines.append(prefix + connector + _node_label(current))
            child_prefix = prefix + ("    " if tail else "|   ")
        kids = list(current.children())
        for i, kid in enumerate(kids):
            visit(kid, child_prefix, i == len(kids) - 1, False)

    visit(node, indent, True, True)
    return "\n".join(lines)
