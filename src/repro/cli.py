r"""An interactive shell for calendars, queries and rules.

Run with ``python -m repro``.  Three kinds of input:

* **Postquel statements** (``retrieve …``, ``append …``, ``create table``,
  ``define rule`` …) execute against the session database;
* **calendar expressions** (anything else without a leading backslash,
  e.g. ``[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS``) evaluate over
  the session window and print civil dates;
* **backslash commands** control the session::

      \help                     this text
      \calendars                list the CALENDARS catalog
      \show NAME                Figure-1 style catalog record
      \define NAME { script }   define a calendar
      \window START .. END      set the evaluation window
      \cache [clear]            materialisation-cache stats (or clear it);
                                includes lock-contention and columnar
                                materialisation-counter lines
      \workers [N]              show or set the worker-pool size used by
                                eval_many and parallel DBCRON firing
                                (initial size: the REPRO_WORKERS env var)
      \clock                    show the simulated clock
      \advance N                advance the clock N days (DBCRON fires)
      \rules [stats|drop NAME]  list rules; "stats" reports the daemon,
                                scheduler shards and per-tenant throttle
                                counters; "drop NAME" removes a rule
      \tables                   list relations
      \explain [-noopt] EXPR | retrieve ...  evaluation plan of an
                                expression (with the optimizer's
                                rewrites, plan diff and backend —
                                periodic vs materialising chain;
                                -noopt shows the unoptimized strategy
                                only), or a query's execution strategy
                                (scan/filter placement plus the
                                vectorized engine's per-conjunct
                                strategy: hash/merge join, endpoint
                                sweep, batched calendar sweep — or why
                                the query falls back to row-at-a-time,
                                e.g. an "as of" historical scan)
      \profile EXPR             run with tracing; per-step timing tree
      \prof [on|off|status|top [N]|clear]  continuous sampling profiler:
                                start/stop the background sampler, show
                                its status, the N hottest leaf frames
                                (default 10), or drop accumulated stacks
      \metrics [reset]          metrics snapshot (counters, latency
                                histograms with p50/p95/p99; labelled
                                series render as name{label="value"})
      \slowlog [clear]          captured slow-query records (set the
                                REPRO_SLOWLOG_SECONDS env var or
                                Session(slow_query_threshold=) to enable)
      \trace on|off             toggle span tracing for the session
      \save FILE / \load FILE   persist / restore the session database
      \quit                     leave

The session database starts with the standard calendars, US holidays, a
rule manager and a DBCRON daemon on a simulated clock.
"""

from __future__ import annotations

import sys

from repro.core import Calendar
from repro.core import columnar
from repro.core.errors import CalendarError
from repro.db import DatabaseError
from repro.db.executor import Result
from repro.session import Session as CoreSession

__all__ = ["Session", "main"]

_QL_KEYWORDS = ("retrieve", "append", "replace", "delete", "create",
                "drop", "define rule", "define calendar")


class Session(CoreSession):
    """One interactive session: the core facade plus line dispatch."""

    def __init__(self, epoch: str = "Jan 1 1987",
                 holiday_years: tuple[int, int] = (1987, 2016)) -> None:
        super().__init__(epoch, holiday_years=holiday_years)
        self.window: tuple | None = None

    # -- dispatch -----------------------------------------------------------

    def run_line(self, line: str) -> str:
        """Execute one input line; returns the printable response."""
        text = line.strip()
        if not text:
            return ""
        try:
            if text.startswith("\\"):
                return self._command(text[1:])
            lowered = text.lower()
            if any(lowered.startswith(k) for k in _QL_KEYWORDS):
                return self._render(self.db.execute(text))
            # Through the session facade so telemetry events and the
            # slow-query log see interactive evaluations too.
            value = self.eval(text, window=self.window)
            return self._render(value)
        except (CalendarError, DatabaseError) as exc:
            return f"error: {exc}"

    # -- rendering ------------------------------------------------------------

    def _render(self, value) -> str:
        if isinstance(value, Result):
            return value.to_table()
        if isinstance(value, Calendar):
            return self._render_calendar(value)
        return str(value)

    def _render_calendar(self, cal: Calendar) -> str:
        if cal.order != 1:
            lines = [f"order-{cal.order} calendar, "
                     f"{len(cal)} groups:"]
            for sub in cal.elements:
                lines.append("  " + self._one_line(sub.flatten()))
            return "\n".join(lines)
        return self._one_line(cal)

    def _one_line(self, cal: Calendar) -> str:
        parts = []
        for iv in cal.elements[:10]:
            if iv.is_instant():
                parts.append(str(self.system.date_of(iv.lo)))
            else:
                parts.append(f"{self.system.date_of(iv.lo)} .. "
                             f"{self.system.date_of(iv.hi)}")
        suffix = f"  (+{len(cal) - 10} more)" if len(cal) > 10 else ""
        return "; ".join(parts) + suffix if parts else "(empty)"

    def _rules_command(self, argument: str) -> str:
        """``\\rules [stats | drop NAME]`` on the ``Session.rules`` facade."""
        if argument:
            sub, _, rest = argument.partition(" ")
            sub = sub.lower()
            if sub == "stats":
                stats = self.rules.stats()
                daemon = stats["daemon"]
                schedule = stats["schedule"]
                lines = [
                    f"{stats['event_rules']} event rule(s), "
                    f"{stats['temporal_rules']} temporal rule(s); "
                    f"clock at tick {stats['clock']}",
                    f"  daemon: {daemon['scheduler']} scheduler, "
                    f"period {daemon['period']}, "
                    f"{daemon['probes']} probes, {daemon['fires']} fires, "
                    f"{daemon['reschedules']} reschedules, "
                    f"{daemon['sheds']} sheds",
                    f"  schedule: {schedule['scheduled']} armed across "
                    f"{schedule['shards']} shard(s)",
                ]
                if schedule.get("shard_sizes"):
                    lines.append("    shard sizes: " + ", ".join(
                        map(str, schedule["shard_sizes"])))
                if schedule.get("overflow"):
                    lines.append(
                        f"    overflow: {schedule['overflow']} entries, "
                        f"{schedule.get('cascades', 0)} cascades")
                for tenant, counters in stats.get("throttle", {}).items():
                    lines.append(
                        f"  tenant {tenant}: {counters['fired']} fired, "
                        f"{counters['shed']} shed, "
                        f"{counters['registered']} registered, "
                        f"{counters['denied']} denied")
                return "\n".join(lines)
            if sub == "drop":
                name = rest.strip()
                if not name:
                    return "usage: \\rules drop NAME"
                self.rules.drop(name)
                return f"dropped rule {name}"
            return "usage: \\rules [stats | drop NAME]"
        manager = self.manager
        lines = [f"event    {name}: on {rule.event} to "
                 f"{rule.relation}"
                 for name, rule in manager.event_rules.items()]
        lines += [f"temporal {name}: {rule.expression_text}"
                  for name, rule in manager.temporal_rules.items()]
        return "\n".join(lines) if lines else "(no rules)"

    # -- commands --------------------------------------------------------------

    def _command(self, text: str) -> str:
        parts = text.split(None, 1)
        command = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        if command in ("help", "h", "?"):
            return __doc__
        if command in ("quit", "q", "exit"):
            raise EOFError
        if command == "calendars":
            return "\n".join(self.registry.names())
        if command == "show":
            return self.registry.render(argument)
        if command == "define":
            name, _, script = argument.partition(" ")
            if not script.strip():
                return "usage: \\define NAME { script }"
            self.registry.define(name, script=script.strip(),
                                 replace=True)
            return f"defined calendar {name}"
        if command == "window":
            start, _, end = argument.partition("..")
            if not end:
                return "usage: \\window Jan 1 1993 .. Dec 31 1993"
            self.window = (start.strip(), end.strip())
            return f"window set to {self.window[0]} .. {self.window[1]}"
        if command == "cache":
            if argument.lower() == "clear":
                self.registry.matcache.clear()
                self.registry.matcache.reset_stats()
                return "materialisation cache cleared"
            if argument:
                return "usage: \\cache [clear]"
            stats = self.registry.cache_stats()
            lines = [
                f"materialisation cache: {stats['entries']} entries, "
                f"{stats['memo_entries']} memo entries",
                f"  hits {stats['hits']}  misses {stats['misses']}  "
                f"extensions {stats['extensions']}  "
                f"evictions {stats['evictions']}  "
                f"hit ratio {stats['hit_ratio']:.1%}",
                f"  intervals served {stats['served_intervals']}  "
                f"generated {stats['generated_intervals']}",
                f"  memo hits {stats['memo_hits']}  "
                f"memo misses {stats['memo_misses']}",
            ]
            for kind in ("hit", "miss", "extension"):
                summary = stats.get(f"{kind}_seconds")
                if summary and summary["count"]:
                    lines.append(
                        f"  {kind} latency: p50 "
                        f"{summary['p50'] * 1e6:.0f}us  p99 "
                        f"{summary['p99'] * 1e6:.0f}us  over "
                        f"{summary['count']} sample(s)")
            waits = stats.get("lock_wait_seconds")
            if waits and waits["count"]:
                lines.append(
                    f"  contention: {stats['lock_contention']} contended "
                    f"acquisition(s)  lock wait p50 "
                    f"{waits['p50'] * 1e6:.0f}us  p99 "
                    f"{waits['p99'] * 1e6:.0f}us  "
                    f"single-flight waits {stats['single_flight_waits']}")
            else:
                lines.append(
                    f"  contention: none observed  single-flight waits "
                    f"{stats['single_flight_waits']}")
            lines.append(
                f"  columnar materialisations "
                f"{columnar.MATERIALISATIONS.value}")
            return "\n".join(lines)
        if command == "workers":
            if not argument:
                return f"worker pool size: {self.pool.size}"
            try:
                workers = int(argument)
            except ValueError:
                return "usage: \\workers N"
            if workers < 1:
                return "usage: \\workers N  (N >= 1)"
            self.pool.resize(workers)
            return f"worker pool resized to {workers}"
        if command == "clock":
            return (f"clock at {self.system.date_of(self.clock.now)} "
                    f"(tick {self.clock.now})")
        if command == "advance":
            try:
                days = int(argument)
            except ValueError:
                return "usage: \\advance N"
            before = self.cron.stats.fires
            self.cron.run_until(self.clock.now + days)
            fired = self.cron.stats.fires - before
            return (f"clock at {self.system.date_of(self.clock.now)}; "
                    f"{fired} temporal rule firing(s)")
        if command == "rules":
            return self._rules_command(argument)
        if command == "tables":
            return "\n".join(self.db.relation_names())
        if command == "explain":
            if not argument:
                return ("usage: \\explain [-noopt] EXPR | "
                        "\\explain retrieve ...")
            optimized = None
            if argument.startswith("-noopt"):
                optimized = False
                argument = argument[len("-noopt"):].strip()
                if not argument:
                    return ("usage: \\explain [-noopt] EXPR | "
                            "\\explain retrieve ...")
            if any(argument.lower().startswith(k) for k in _QL_KEYWORDS):
                return self.db.explain(argument)
            return self.explain(argument, window=self.window,
                                optimized=optimized).render()
        if command == "profile":
            if not argument:
                return "usage: \\profile EXPR"
            return self.profile(argument, window=self.window).render()
        if command == "prof":
            return self._prof_command(argument)
        if command == "metrics":
            if argument.lower() == "reset":
                self.instrumentation.metrics.reset()
                return "metrics reset"
            if argument:
                return "usage: \\metrics [reset]"
            return self._render_metrics()
        if command == "slowlog":
            if argument.lower() == "clear":
                self.slowlog.clear()
                return "slow-query log cleared"
            if argument:
                return "usage: \\slowlog [clear]"
            if not self.slowlog.enabled:
                return ("slow-query log disabled (set "
                        "REPRO_SLOWLOG_SECONDS or "
                        "Session(slow_query_threshold=...))")
            records = self.slow_queries()
            if not records:
                return (f"no queries over "
                        f"{self.slowlog.threshold_s * 1e3:.1f}ms yet")
            lines = [f"{len(records)} slow quer"
                     f"{'y' if len(records) == 1 else 'ies'} "
                     f"(threshold {self.slowlog.threshold_s * 1e3:.1f}ms):"]
            for record in records:
                source = record.source if len(record.source) <= 48 \
                    else record.source[:45] + "..."
                line = (f"  {record.duration_s * 1e3:9.3f}ms  "
                        f"[{record.via}] {source}")
                if record.error:
                    line += f"  ({record.error})"
                lines.append(line)
            return "\n".join(lines)
        if command == "trace":
            flag = argument.lower()
            if flag not in ("on", "off"):
                return "usage: \\trace on|off"
            self.instrumentation.tracing = flag == "on"
            return f"tracing {flag}"
        if command == "save":
            from repro.db.persist import save_database
            report = save_database(self.db, argument)
            return (f"saved {report.relations} relations, "
                    f"{report.calendars} calendars, "
                    f"{report.event_rules + report.temporal_rules} rules")
        if command == "load":
            from repro.db.persist import load_database
            self.attach_database(load_database(argument))
            return f"loaded {argument}"
        return f"unknown command \\{command} (try \\help)"

    def _prof_command(self, argument: str) -> str:
        """``\\prof [on|off|status|top [N]|clear]``."""
        sub, _, rest = argument.lower().partition(" ")
        profiler = self.profiler
        if sub in ("", "status"):
            stats = profiler.stats()
            state = "running" if stats["running"] else "stopped"
            return (f"profiler {state} at {stats['hertz']:g} Hz: "
                    f"{stats['samples']} sample(s), "
                    f"{stats['stacks']} distinct stack(s), "
                    f"{stats['overflowed']} overflowed, "
                    f"{stats['errors']} error(s)")
        if sub == "on":
            if profiler.running:
                return "profiler already running"
            profiler.start()
            return f"profiler started at {profiler.hertz:g} Hz"
        if sub == "off":
            if not profiler.running:
                return "profiler not running"
            profiler.stop()
            return (f"profiler stopped; {profiler.stats()['samples']} "
                    "sample(s) retained (\\prof top to inspect)")
        if sub == "top":
            try:
                n = int(rest) if rest.strip() else 10
            except ValueError:
                return "usage: \\prof top [N]"
            rows = profiler.top(n)
            if not rows:
                return "(no samples yet — \\prof on to start sampling)"
            width = max(len(frame) for frame, _ in rows)
            return "\n".join(f"{frame:<{width}}  {count}"
                             for frame, count in rows)
        if sub == "clear":
            profiler.clear()
            return "profiler samples cleared"
        return "usage: \\prof [on|off|status|top [N]|clear]"

    def _render_metrics(self) -> str:
        """Formatted snapshot of every registered metric.

        Histogram lines show interpolated p50/p95/p99 (see
        :meth:`repro.obs.metrics.Histogram.percentile`) rather than the
        conservative bucket-upper-bound quantiles of the snapshot.
        """
        snapshot = self.metrics()
        if not snapshot:
            return "(no metrics recorded)"
        registry = self.instrumentation.metrics
        lines = []
        for name in sorted(snapshot):
            value = snapshot[name]
            if isinstance(value, dict):
                if not value["count"]:
                    lines.append(f"{name:<32} count 0")
                    continue
                histogram = self._snapshot_histogram(registry, name)
                if histogram is None:
                    lines.append(
                        f"{name:<32} count {value['count']:<8} "
                        f"sum {value['sum'] * 1e3:.3f}ms")
                    continue
                p50, p95, p99 = (histogram.percentile(q)
                                 for q in (0.5, 0.95, 0.99))
                lines.append(
                    f"{name:<32} count {value['count']:<8} "
                    f"p50 {p50 * 1e3:.3f}ms  "
                    f"p95 {p95 * 1e3:.3f}ms  "
                    f"p99 {p99 * 1e3:.3f}ms  "
                    f"sum {value['sum'] * 1e3:.3f}ms")
            else:
                lines.append(f"{name:<32} {value}")
        return "\n".join(lines)

    @staticmethod
    def _snapshot_histogram(registry, name: str):
        """Resolve a snapshot key back to its Histogram instrument.

        Labelled series render under flat ``name{label="value"}`` keys
        that are not registry entries; the child instruments carry the
        same flat key as their name, so look them up via the family.
        """
        instrument = registry.get(name)
        if instrument is not None:
            return instrument
        family = registry.get(name.partition("{")[0])
        if family is None or not hasattr(family, "series"):
            return None
        for child in family.series().values():
            if child.name == name:
                return child
        return None


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    epoch = "Jan 1 1987"
    commands: list[str] = []
    while argv:
        arg = argv.pop(0)
        if arg in ("-e", "--epoch") and argv:
            epoch = argv.pop(0)
        elif arg in ("-c", "--command") and argv:
            commands.append(argv.pop(0))
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            print(f"unknown argument {arg!r}", file=sys.stderr)
            return 2
    session = Session(epoch=epoch)
    if commands:
        for command in commands:
            output = session.run_line(command)
            if output:
                print(output)
        return 0
    print(f"repro calendar shell — epoch {epoch}; \\help for help")
    while True:
        try:
            line = input("cal> ")
        except EOFError:
            print()
            return 0
        try:
            output = session.run_line(line)
        except EOFError:
            return 0
        if output:
            print(output)


if __name__ == "__main__":
    raise SystemExit(main())
