"""Round-trip tests for JSON persistence."""

import math

import pytest

from repro.db import Database, DatabaseError
from repro.db.persist import (
    dump_database,
    load_database,
    restore_database,
    save_database,
)
from repro.db.ql.parser import parse_statement
from repro.db.ql.printer import render_statement
from repro.rules import RuleManager


class TestStatementPrinter:
    @pytest.mark.parametrize("text", [
        "retrieve (s.name, s.hours * 2 as d) from s in students "
        "where s.hours > 20",
        "retrieve unique (s.name) from s in students order by name desc",
        'retrieve into sink (s.name) from s in students on "Mondays"',
        'append audit (msg = new.name || "!")',
        "replace s (hours = s.hours + 1) from s in students "
        "where s.name = \"al\"",
        "delete s from s in students where s.hours < 1",
    ])
    def test_roundtrip(self, text):
        stmt = parse_statement(text)
        assert parse_statement(render_statement(stmt)) == stmt


@pytest.fixture()
def populated(db):
    manager = RuleManager(db)
    db.create_table("students", [("name", "text"), ("hours", "int4"),
                                 ("week", "abstime")],
                    key=("name",), valid_time_column="week")
    db.create_index("students", "hours")
    db.create_table("audit", [("msg", "text")])
    base = db.system.day_of("Feb 1 1993")
    for i, name in enumerate(["ana", "bo", "cara"]):
        db.insert("students", name=name, hours=10 * (i + 1),
                  week=base + 7 * i)
    manager.define_event_rule(
        "watch", "append", "students",
        condition="new.hours > 20",
        actions=['append audit (msg = new.name)'])
    manager.define_temporal_rule(
        "tuesdays", "[2]/DAYS:during:WEEKS",
        actions=['append audit (msg = "tick")'],
        after=base)
    db.calendars.define("SEMESTER", values=[(base, base + 100)],
                        granularity="DAYS", lifespan=(1993.0, 1993.0))
    return db


class TestRoundTrip:
    def test_relations_survive(self, populated, tmp_path):
        path = tmp_path / "db.json"
        save_database(populated, str(path))
        loaded = load_database(str(path))
        rows = loaded.execute(
            "retrieve (s.name, s.hours) from s in students order by name")
        assert [(r["name"], r["hours"]) for r in rows.rows] == [
            ("ana", 10), ("bo", 20), ("cara", 30)]

    def test_schema_details_survive(self, populated, tmp_path):
        path = tmp_path / "db.json"
        save_database(populated, str(path))
        loaded = load_database(str(path))
        schema = loaded.relation("students").schema
        assert schema.key == ("name",)
        assert schema.valid_time_column == "week"
        assert "hours" in loaded.relation("students").indexes

    def test_calendars_survive(self, populated, tmp_path):
        path = tmp_path / "db.json"
        save_database(populated, str(path))
        loaded = load_database(str(path))
        assert "SEMESTER" in loaded.calendars
        assert "Tuesdays" in loaded.calendars
        record = loaded.calendars.record("SEMESTER")
        assert record.lifespan == (1993.0, 1993.0)
        original = populated.calendars.evaluate(
            "Tuesdays", window=("Jan 1 1993", "Mar 1 1993"))
        again = loaded.calendars.evaluate(
            "Tuesdays", window=("Jan 1 1993", "Mar 1 1993"))
        assert original.to_pairs() == again.to_pairs()

    def test_event_rule_fires_after_reload(self, populated, tmp_path):
        path = tmp_path / "db.json"
        save_database(populated, str(path))
        loaded = load_database(str(path))
        loaded.execute('append students (name = "dee", hours = 99, '
                       'week = 3000)')
        audit = loaded.execute("retrieve (a.msg) from a in audit")
        assert audit.column("msg") == ["dee"]

    def test_temporal_rule_schedule_survives(self, populated, tmp_path):
        manager = populated.rule_manager
        expected = manager.tables.next_fire_of("tuesdays")
        path = tmp_path / "db.json"
        save_database(populated, str(path))
        loaded = load_database(str(path))
        assert loaded.rule_manager.tables.next_fire_of("tuesdays") == \
            expected

    def test_callback_rules_reported_skipped(self, populated, tmp_path):
        populated.rule_manager.define_event_rule(
            "pyrule", "delete", "students",
            callback=lambda d, e: None)
        report = save_database(populated, str(tmp_path / "db.json"))
        assert "pyrule" in report.skipped_rules
        assert report.event_rules == 1
        assert report.temporal_rules == 1

    def test_special_cell_values(self, db, tmp_path):
        from repro.core import Calendar, CivilDate
        db.create_table("mixed", [("d", "date"), ("c", "calendar"),
                                  ("f", "float8")])
        db.insert("mixed", d=CivilDate(1993, 11, 19),
                  c=Calendar.from_intervals([(1, 5), (9, 9)]),
                  f=math.inf)
        path = tmp_path / "db.json"
        save_database(db, str(path))
        loaded = load_database(str(path))
        row = next(loaded.relation("mixed").scan())
        assert row["d"] == CivilDate(1993, 11, 19)
        assert row["c"].to_pairs() == ((1, 5), (9, 9))
        assert row["f"] == math.inf

    def test_order2_calendar_cell_rejected(self, db, tmp_path):
        from repro.core import Calendar
        nested = Calendar.from_calendars(
            [Calendar.from_intervals([(1, 2)])])
        db.create_table("bad", [("c", "calendar")])
        db.insert("bad", c=nested)
        with pytest.raises(DatabaseError):
            dump_database(db)

    def test_bad_format_rejected(self):
        with pytest.raises(DatabaseError):
            restore_database({"format": 999})


class TestAsOfRendering:
    def test_as_of_roundtrips_through_printer(self):
        stmt = parse_statement(
            "retrieve (p.x) from p in prices as of 7 where p.x > 0")
        assert "as of 7" in render_statement(stmt)
        assert parse_statement(render_statement(stmt)) == stmt
