"""Array-backed interval storage and cache-efficient sweep kernels.

This module inverts the relationship between ``Interval`` objects and the
columnar ``lo``/``hi`` side-car arrays that :mod:`repro.core.matcache` and
:mod:`repro.core.stream` grew around the object model: an order-1
:class:`~repro.core.calendar.Calendar` now *stores* its endpoints as a
pair of ``array('q')`` buffers (:class:`IntervalColumns`) and materialises
Python ``Interval`` objects only when a caller crosses the public API
boundary (``Calendar.elements``, iteration, indexing).

On top of that representation the hot kernels become single-pass,
cache-efficient sweeps over the arrays, following the gapless lane-sweep
scheme of Piatov et al. ("Cache-Efficient Sweeping-Based Interval Joins
for Extended Allen Relation Predicates", see PAPERS.md):

* :func:`union_sweep` / :func:`intersection_sweep` /
  :func:`difference_sweep` — merge-join set kernels over two endpoint
  column pairs, replacing per-interval ``Interval`` method calls with
  integer comparisons and replacing the final sort-and-merge with a
  linear pass whenever the join output comes out lo-sorted.
* :func:`group_range` — the extended-Allen lane table: for every builtin
  listop (``during``/``overlaps``/``meets``/``<``/``<=``/``contains``/
  ``starts``/``finishes``/``equals``/``intersects``) the members relating
  to a reference interval form a **contiguous index range** found by
  binary search when the lo (and usually hi) lanes are sorted — with both
  lanes sorted the range is *exact* (no per-member predicate calls at
  all) and a grouped foreach degenerates to two bisects plus a zero-copy
  slice per reference.
* :func:`iter_groups` — the grouped-foreach driver; for ``during`` and
  ``overlaps`` against a sorted reference tiling it advances gapless
  start/end lane pointers monotonically (O(members + refs) total instead
  of per-reference bisects).

Zero-copy slice invariants (see docs/IMPLEMENTATION_NOTES.md §12):
column buffers are immutable once a view has been taken; a slice is a
``memoryview`` into its parent's buffer and keeps that buffer alive, so
a one-element group of a 100k-member calendar pins 16 bytes per parent
member — the trade accepted for copy-free grouping.

The module is deliberately dependency-light (only ``repro.core.errors``)
so :mod:`repro.core.calendar` can build on it without import cycles; the
zero-skipping axis increments are inlined here (as they already are in
``matcache``) for the same reason.

``REPRO_COLUMNAR=0`` restores the object-tuple representation (every
kernel then takes its legacy path); :func:`set_enabled` is the in-process
toggle the parity suites and benchmarks use.
"""

from __future__ import annotations

import os

from array import array
from bisect import bisect_left, bisect_right
from typing import Iterator, Sequence

__all__ = [
    "IntervalColumns",
    "enabled",
    "set_enabled",
    "MATERIALISATIONS",
    "union_sweep",
    "intersection_sweep",
    "difference_sweep",
    "group_range",
    "iter_groups",
    "clip_to_span",
    "shift_columns",
    "concat_columns",
    "batch_membership",
    "interval_join_pairs",
]

#: int64 bounds of the ``'q'`` typecode; endpoints outside fall back to
#: the object representation (the overflow audit of ISSUE 8).
Q_MIN = -(2 ** 63)
Q_MAX = 2 ** 63 - 1


def _env_enabled() -> bool:
    return os.environ.get("REPRO_COLUMNAR", "1").lower() not in (
        "0", "off", "false", "no")


_ENABLED = _env_enabled()


def enabled() -> bool:
    """True when new order-1 calendars should be array-backed."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Toggle the columnar representation; returns the previous setting.

    Existing calendars keep whatever representation they were built
    with — kernels dispatch per operand — so object-backed and
    array-backed calendars coexist (this is what lets the parity suites
    and benchmarks compare both paths in one process).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


class _Counter:
    """A monotonically increasing observability counter.

    ``value`` may undercount slightly under free-threaded races; the
    counter is observability-only, never control flow.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self) -> None:
        self.value += 1

    def reset(self) -> None:
        self.value = 0


#: Number of times a columns-backed calendar materialised its full
#: ``Interval`` tuple (a boundary-crossing copy).  Surfaced by
#: ``Session.metrics`` / ``\cache`` as ``columnar.materialisations``;
#: fused pipelines are expected to keep it at 0.
MATERIALISATIONS = _Counter()


def _is_nondecreasing(values) -> bool:
    previous = None
    for v in values:
        if previous is not None and v < previous:
            return False
        previous = v
    return True


class IntervalColumns:
    """Paired lo/hi endpoint buffers with lazily computed lane flags.

    ``los``/``his`` are ``array('q')`` buffers or ``memoryview`` slices
    of a parent's buffers (``parent`` keeps the owning buffer alive).
    ``labels`` optionally carries the aligned label tuple so cache
    slicing can move labels with the endpoints.

    Flags — ``lo_sorted`` (lo lane nondecreasing), ``hi_sorted``
    (*both* lanes nondecreasing, mirroring ``_SortedView``) and
    ``disjoint`` (lo-sorted with strictly separated intervals) — are
    computed once on first use and inherited by slices when the parent
    already knows them to be True.
    """

    __slots__ = ("los", "his", "labels", "parent",
                 "_lo_sorted", "_hi_sorted", "_disjoint")

    def __init__(self, los, his, labels=None, parent=None,
                 lo_sorted=None, hi_sorted=None, disjoint=None) -> None:
        self.los = los
        self.his = his
        self.labels = labels
        self.parent = parent
        self._lo_sorted = lo_sorted
        self._hi_sorted = hi_sorted
        self._disjoint = disjoint

    # -- construction -----------------------------------------------------

    @classmethod
    def from_lists(cls, los: Sequence[int], his: Sequence[int],
                   labels=None, *, lo_sorted=None, hi_sorted=None,
                   disjoint=None) -> "IntervalColumns | None":
        """Pack endpoint lists; ``None`` when any endpoint exceeds int64."""
        try:
            return cls(array("q", los), array("q", his), labels,
                       lo_sorted=lo_sorted, hi_sorted=hi_sorted,
                       disjoint=disjoint)
        except OverflowError:
            return None

    @classmethod
    def empty(cls) -> "IntervalColumns":
        return cls(array("q"), array("q"), None,
                   lo_sorted=True, hi_sorted=True, disjoint=True)

    # -- lane flags -------------------------------------------------------

    @property
    def lo_sorted(self) -> bool:
        flag = self._lo_sorted
        if flag is None:
            flag = self._lo_sorted = _is_nondecreasing(self.los)
        return flag

    @property
    def hi_sorted(self) -> bool:
        flag = self._hi_sorted
        if flag is None:
            flag = self._hi_sorted = (self.lo_sorted
                                      and _is_nondecreasing(self.his))
        return flag

    @property
    def disjoint(self) -> bool:
        """Lo-sorted with every interval strictly before the next one."""
        flag = self._disjoint
        if flag is None:
            if not self.lo_sorted:
                flag = False
            else:
                flag = True
                his, los = self.his, self.los
                for i in range(len(los) - 1):
                    if his[i] >= los[i + 1]:
                        flag = False
                        break
            self._disjoint = flag
            if flag:
                self._hi_sorted = True
        return flag

    # -- views ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.los)

    def slice(self, start: int, end: int) -> "IntervalColumns":
        """Zero-copy ``[start:end)`` view (labels slice alongside)."""
        n = len(self.los)
        if start <= 0 and end >= n:
            return self
        los = memoryview(self.los)[start:end]
        his = memoryview(self.his)[start:end]
        labels = self.labels[start:end] if self.labels is not None else None
        return IntervalColumns(
            los, his, labels, parent=self,
            lo_sorted=True if self._lo_sorted else None,
            hi_sorted=True if self._hi_sorted else None,
            disjoint=True if self._disjoint else None)

    def copy_slice(self, start: int, end: int) -> "IntervalColumns":
        """A *writable* copy of ``[start:end)`` (for boundary patching)."""
        los = array("q")
        his = array("q")
        los.frombytes(memoryview(self.los)[start:end].tobytes())
        his.frombytes(memoryview(self.his)[start:end].tobytes())
        labels = self.labels[start:end] if self.labels is not None else None
        return IntervalColumns(
            los, his, labels,
            lo_sorted=True if self._lo_sorted else None,
            hi_sorted=True if self._hi_sorted else None,
            disjoint=True if self._disjoint else None)

    def take(self, positions: Sequence[int],
             labels=None) -> "IntervalColumns":
        """New columns holding the intervals at ``positions`` (in order)."""
        los, his = self.los, self.his
        return IntervalColumns(
            array("q", [los[p] for p in positions]),
            array("q", [his[p] for p in positions]),
            labels)

    def pairs(self) -> tuple:
        """The ``((lo, hi), …)`` tuple — no ``Interval`` objects."""
        return tuple(zip(self.los, self.his))

    def tobytes(self) -> bytes:
        """Both lanes as raw little-endian int64 bytes (lo lane first)."""
        return memoryview(self.los).tobytes() + \
            memoryview(self.his).tobytes()

    def equal(self, other: "IntervalColumns") -> bool:
        """Endpoint-wise equality via a raw buffer compare."""
        if len(self) != len(other):
            return False
        return self.tobytes() == other.tobytes()


def concat_columns(parts: "Sequence[IntervalColumns]") -> IntervalColumns:
    """Concatenate column sets into one owning buffer pair."""
    los = array("q")
    his = array("q")
    any_labels = any(p.labels is not None for p in parts)
    labels: "list | None" = [] if any_labels else None
    for part in parts:
        los.frombytes(memoryview(part.los).tobytes())
        his.frombytes(memoryview(part.his).tobytes())
        if labels is not None:
            if part.labels is not None:
                labels.extend(part.labels)
            else:
                labels.extend([None] * len(part))
    return IntervalColumns(los, his,
                           tuple(labels) if labels is not None else None)


# ---------------------------------------------------------------------------
# Zero-skipping axis helpers (inlined; see repro.core.interval for the
# canonical definitions)
# ---------------------------------------------------------------------------

def _axis_dec(t: int) -> int:
    return t - 1 if t != 1 else -1


def _axis_inc(t: int) -> int:
    return t + 1 if t != -1 else 1


# ---------------------------------------------------------------------------
# Set-operation sweeps
# ---------------------------------------------------------------------------

def _sorted_lanes(cols: IntervalColumns):
    """``(los, his)`` in ``(lo, hi)`` lexicographic order.

    Zero-copy when the columns are hi-sorted (lo and hi lanes sorted
    together imply lexicographic order); otherwise a full sort — the
    same cost the object kernels pay in ``_merge_overlapping``.
    """
    if cols.hi_sorted:
        return cols.los, cols.his
    if cols.lo_sorted and _ties_ordered(cols):
        return cols.los, cols.his
    pairs = sorted(zip(cols.los, cols.his))
    return [p[0] for p in pairs], [p[1] for p in pairs]


def _ties_ordered(cols: IntervalColumns) -> bool:
    """True when equal-lo runs are hi-ordered (lexicographic overall)."""
    los, his = cols.los, cols.his
    for i in range(len(los) - 1):
        if los[i] == los[i + 1] and his[i] > his[i + 1]:
            return False
    return True


def _merged_result(out_los: list, out_his: list,
                   sorted_out: bool) -> IntervalColumns:
    """Sort-if-needed then linearly merge genuinely overlapping pieces.

    Exactly ``Calendar._merge_overlapping``: pieces sorted by
    ``(lo, hi)``; a piece merges into its predecessor when it overlaps
    (``lo <= previous hi``); adjacency is preserved.
    """
    if not sorted_out:
        pairs = sorted(zip(out_los, out_his))
        out_los = [p[0] for p in pairs]
        out_his = [p[1] for p in pairs]
    merged_lo: list[int] = []
    merged_hi: list[int] = []
    append_lo = merged_lo.append
    append_hi = merged_hi.append
    last_hi = None
    for k in range(len(out_los)):
        lo = out_los[k]
        hi = out_his[k]
        if last_hi is not None and lo <= last_hi:
            if hi > last_hi:
                merged_hi[-1] = last_hi = hi
        else:
            append_lo(lo)
            append_hi(hi)
            last_hi = hi
    return IntervalColumns(array("q", merged_lo), array("q", merged_hi),
                           None, lo_sorted=True, hi_sorted=True,
                           disjoint=True)


def union_sweep(a: IntervalColumns, b: IntervalColumns) -> IntervalColumns:
    """Pointwise union: merge both operands, then the linear
    overlap-merge (adjacent intervals stay separate).

    The merge itself is delegated to :func:`sorted` over the
    concatenated ``(lo, hi)`` pairs: Timsort detects the two sorted
    runs and gallops through them with C-level tuple comparisons,
    which handily beats an interpreted two-pointer loop.
    """
    alos, ahis = _sorted_lanes(a)
    blos, bhis = _sorted_lanes(b)
    pairs = list(zip(alos, ahis))
    pairs += zip(blos, bhis)
    pairs.sort()
    return _merged_result([p[0] for p in pairs], [p[1] for p in pairs],
                          True)


def intersection_sweep(a: IntervalColumns,
                       b: IntervalColumns) -> IntervalColumns:
    """Pointwise intersection: gapless merge-join over sorted lanes.

    Probes ``a`` in lo order while a start pointer skips ``b`` entries
    that ended before the probe begins; every scanned pair overlaps, so
    the inner loop's work equals the output size.  The piece multiset is
    order-independent, which is what makes probing in sorted order (and
    sorting unsorted operands first) exactly equivalent to the object
    kernel's probe-in-calendar-order followed by sort-and-merge.
    """
    alos, ahis = _sorted_lanes(a)
    blos, bhis = _sorted_lanes(b)
    na, nb = len(alos), len(blos)
    out_los: list[int] = []
    out_his: list[int] = []
    append_lo = out_los.append
    append_hi = out_his.append
    s = 0
    sorted_out = True
    last_lo = None
    for k in range(na):
        lo = alos[k]
        hi = ahis[k]
        while s < nb and bhis[s] < lo:
            s += 1
        j = s
        while j < nb and blos[j] <= hi:
            blo = blos[j]
            bhi = bhis[j]
            j += 1
            if bhi < lo:
                # The s-pointer only skips the permanently-dead prefix;
                # when b's hi lane is unsorted, later entries may still
                # end before this probe starts.
                continue
            plo = lo if lo > blo else blo
            phi = hi if hi < bhi else bhi
            append_lo(plo)
            append_hi(phi)
            if last_lo is not None and plo < last_lo:
                sorted_out = False
            last_lo = plo
    return _merged_result(out_los, out_his,
                          sorted_out and _run_ties_ordered(out_los, out_his))


def _run_ties_ordered(los: list, his: list) -> bool:
    for i in range(len(los) - 1):
        if los[i] == los[i + 1] and his[i] > his[i + 1]:
            return False
    return True


def difference_sweep(a: IntervalColumns,
                     b: IntervalColumns) -> IntervalColumns:
    """Pointwise difference: subtract the overlapping ``b`` cuts from each
    ``a`` interval in one forward pass per probe."""
    alos, ahis = _sorted_lanes(a)
    blos, bhis = _sorted_lanes(b)
    na, nb = len(alos), len(blos)
    out_los: list[int] = []
    out_his: list[int] = []
    append_lo = out_los.append
    append_hi = out_his.append
    s = 0
    sorted_out = True
    last_lo = None
    for k in range(na):
        lo = alos[k]
        hi = ahis[k]
        while s < nb and bhis[s] < lo:
            s += 1
        cur = lo
        j = s
        alive = True
        while j < nb and blos[j] <= hi:
            clo = blos[j]
            chi = bhis[j]
            if clo > cur:
                piece_hi = _axis_dec(clo)
                if piece_hi >= cur:
                    append_lo(cur)
                    append_hi(piece_hi)
                    if last_lo is not None and cur < last_lo:
                        sorted_out = False
                    last_lo = cur
            nxt = _axis_inc(chi)
            if nxt > cur:
                cur = nxt
            if cur > hi:
                alive = False
                break
            j += 1
        if alive and cur <= hi:
            append_lo(cur)
            append_hi(hi)
            if last_lo is not None and cur < last_lo:
                sorted_out = False
            last_lo = cur
    return _merged_result(out_los, out_his,
                          sorted_out and _run_ties_ordered(out_los, out_his))


# ---------------------------------------------------------------------------
# Extended-Allen lane table (grouped foreach)
# ---------------------------------------------------------------------------

#: Per-listop integer predicates — (mlo, mhi, rlo, rhi) -> bool — for
#: candidate ranges that still need per-member verification.
INT_PREDICATES = {
    "during": lambda mlo, mhi, rlo, rhi: mlo >= rlo and rhi >= mhi,
    "overlaps": lambda mlo, mhi, rlo, rhi: mlo <= rhi and rlo <= mhi,
    "intersects": lambda mlo, mhi, rlo, rhi: mlo <= rhi and rlo <= mhi,
    "contains": lambda mlo, mhi, rlo, rhi: rlo >= mlo and mhi >= rhi,
    "meets": lambda mlo, mhi, rlo, rhi: mhi == rlo,
    "<": lambda mlo, mhi, rlo, rhi: mhi <= rlo,
    "<=": lambda mlo, mhi, rlo, rhi: mlo <= rlo and rhi >= mhi,
    "starts": lambda mlo, mhi, rlo, rhi: mlo == rlo and mhi <= rhi,
    "finishes": lambda mlo, mhi, rlo, rhi: mhi == rhi and mlo >= rlo,
    "equals": lambda mlo, mhi, rlo, rhi: mlo == rlo and mhi == rhi,
}

#: Listops whose strict clip leaves a matching member unchanged (the
#: member is already contained in the reference).
CLIP_IDENTITY = frozenset({"during", "starts", "finishes", "equals"})


def group_range(cols: IntervalColumns, op_name: str, rlo: int, rhi: int
                ) -> tuple[int, int, bool]:
    """Candidate index range for ``op_name`` against ``(rlo, rhi)``.

    Returns ``(start, end, exact)``; with ``exact`` True every index in
    ``[start, end)`` satisfies the predicate (the pure-bisect lane case,
    available whenever both lanes are sorted), otherwise the range must
    be filtered with :data:`INT_PREDICATES`.  Mirrors (and tightens)
    ``_SortedView.candidate_range``.
    """
    los, his = cols.los, cols.his
    n = len(los)
    if not cols.lo_sorted:
        return 0, n, False
    hi_sorted = cols.hi_sorted
    if op_name == "during":
        start = bisect_left(los, rlo)
        if hi_sorted:
            end = bisect_right(his, rhi)
            return start, (end if end > start else start), True
        return start, bisect_right(los, rhi), False
    if op_name in ("overlaps", "intersects"):
        if hi_sorted:
            start = bisect_left(his, rlo)
            end = bisect_right(los, rhi)
            return start, (end if end > start else start), True
        return 0, bisect_right(los, rhi), False
    if op_name == "meets":
        if hi_sorted:
            return bisect_left(his, rlo), bisect_right(his, rlo), True
        return 0, n, False
    if op_name == "<":
        if hi_sorted:
            return 0, bisect_right(his, rlo), True
        return 0, n, False
    if op_name == "<=":
        end = bisect_right(los, rlo)
        if hi_sorted:
            end2 = bisect_right(his, rhi)
            return 0, (end if end < end2 else end2), True
        return 0, end, False
    if op_name == "contains":
        end = bisect_right(los, rlo)
        if hi_sorted:
            start = bisect_left(his, rhi)
            return start, (end if end > start else start), True
        return 0, end, False
    if op_name == "starts":
        start = bisect_left(los, rlo)
        end = bisect_right(los, rlo)
        if hi_sorted:
            end2 = bisect_right(his, rhi)
            if end2 < end:
                end = end2
            return start, (end if end > start else start), True
        return start, end, False
    if op_name in ("finishes", "equals"):
        if hi_sorted:
            start = bisect_left(his, rhi)
            end = bisect_right(his, rhi)
            start2 = bisect_left(los, rlo) if op_name == "finishes" else \
                bisect_left(los, rlo)
            if op_name == "equals":
                end2 = bisect_right(los, rlo)
                if end2 < end:
                    end = end2
            if start2 > start:
                start = start2
            return start, (end if end > start else start), True
        return 0, n, False
    return 0, n, False


def sweep_one(cols: IntervalColumns, op_name: str, rlo: int, rhi: int,
              clip: bool) -> IntervalColumns:
    """One foreach group: members of ``cols`` relating to ``(rlo, rhi)``.

    Zero-copy slice whenever the lane range is exact and clipping is the
    identity (or disabled); boundary-patched copy for overlap-style clips
    over disjoint members; integer filter/clip loops otherwise.
    """
    start, end, exact = group_range(cols, op_name, rlo, rhi)
    los, his = cols.los, cols.his
    if exact:
        if not clip or op_name in CLIP_IDENTITY:
            return cols.slice(start, end)
        return _clip_exact(cols, op_name, start, end, rlo, rhi)
    predicate = INT_PREDICATES[op_name]
    if not clip:
        positions = [i for i in range(start, end)
                     if predicate(los[i], his[i], rlo, rhi)]
        return cols.take(positions)
    out_los: list[int] = []
    out_his: list[int] = []
    for i in range(start, end):
        mlo = los[i]
        mhi = his[i]
        if not predicate(mlo, mhi, rlo, rhi):
            continue
        plo = mlo if mlo > rlo else rlo
        phi = mhi if mhi < rhi else rhi
        if plo > phi:
            continue
        out_los.append(plo)
        out_his.append(phi)
    return IntervalColumns(array("q", out_los), array("q", out_his))


def _clip_exact(cols: IntervalColumns, op_name: str, start: int, end: int,
                rlo: int, rhi: int) -> IntervalColumns:
    """Clip an exact lane range to the reference interval."""
    if end <= start:
        return cols.slice(start, start)
    los, his = cols.los, cols.his
    if op_name in ("overlaps", "intersects") and cols.disjoint:
        # Disjoint members: only the two boundary members can poke
        # outside the reference; the interior is untouched.
        patch_lo = los[start] < rlo
        patch_hi = his[end - 1] > rhi if end > start else False
        if not patch_lo and not patch_hi:
            return cols.slice(start, end)
        out = cols.copy_slice(start, end)
        if patch_lo:
            out.los[0] = rlo
        if patch_hi:
            out.his[-1] = rhi
        return out
    out_los: list[int] = []
    out_his: list[int] = []
    for i in range(start, end):
        mlo = los[i]
        mhi = his[i]
        plo = mlo if mlo > rlo else rlo
        phi = mhi if mhi < rhi else rhi
        if plo > phi:
            # e.g. "<=" relates intervals that need not overlap; the
            # strict clip then drops the member (the paper's epsilon
            # exclusion), exactly like the object kernel.
            continue
        out_los.append(plo)
        out_his.append(phi)
    return IntervalColumns(array("q", out_los), array("q", out_his))


def iter_groups(mem: IntervalColumns, refs: IntervalColumns, op_name: str,
                clip: bool) -> Iterator[tuple[int, IntervalColumns]]:
    """Yield ``(ref_index, group_columns)`` for a grouped foreach.

    For ``during``/``overlaps`` against fully sorted lanes this is the
    gapless lane sweep: both group boundaries advance monotonically, so
    the whole grouping costs O(members + refs) pointer moves; other
    shapes fall back to per-reference lane bisects (still no ``Interval``
    objects).
    """
    rlos, rhis = refs.los, refs.his
    nrefs = len(rlos)
    if (op_name in ("during", "overlaps") and refs.hi_sorted
            and mem.hi_sorted):
        los, his = mem.los, mem.his
        n = len(los)
        s = e = 0
        identity = not clip or op_name in CLIP_IDENTITY
        for i in range(nrefs):
            rlo = rlos[i]
            rhi = rhis[i]
            if op_name == "during":
                while s < n and los[s] < rlo:
                    s += 1
                if e < s:
                    e = s
                while e < n and his[e] <= rhi:
                    e += 1
            else:
                while s < n and his[s] < rlo:
                    s += 1
                if e < s:
                    e = s
                while e < n and los[e] <= rhi:
                    e += 1
            if identity:
                yield i, mem.slice(s, e)
            else:
                yield i, _clip_exact(mem, op_name, s, e, rlo, rhi)
        return
    for i in range(nrefs):
        yield i, sweep_one(mem, op_name, rlos[i], rhis[i], clip)


def filtering_positions(mem: IntervalColumns, refs: IntervalColumns,
                        op_name: str, inverse: "str | None"
                        ) -> Iterator[tuple[int, int, int]]:
    """Yield ``(member_index, cand_start, cand_end)`` for filtering listops.

    The candidate range indexes ``refs`` (original order); ``inverse``
    narrows it by lane search exactly like ``_foreach_filtering`` does
    with the inverse-operator ``candidate_range``.
    """
    los, his = mem.los, mem.his
    nrefs = len(refs)
    for i in range(len(los)):
        if inverse is not None:
            start, end, _exact = group_range(refs, inverse, los[i], his[i])
        else:
            start, end = 0, nrefs
        yield i, start, end


# ---------------------------------------------------------------------------
# Batch probe / join kernels (the DB executor's vectorized pipeline)
# ---------------------------------------------------------------------------

def batch_membership(los: Sequence[int], his: Sequence[int],
                     values: Sequence[int]) -> list[bool]:
    """Point-membership of ascending ``values`` against sorted lanes.

    Both lanes must be nondecreasing (the ``hi_sorted`` invariant); the
    whole batch is answered in one merge pass — the pointer into the
    lanes only ever advances, so a sorted batch of N probes against M
    intervals costs O(N + M) instead of N bisects.  Axis point 0 is
    never covered (the zero-skipping axis has no day 0), matching
    ``Calendar.contains_point`` and ``IntervalIndex.contains``.
    """
    n = len(los)
    out: list[bool] = []
    append = out.append
    i = 0
    for v in values:
        while i < n and his[i] < v:
            i += 1
        append(v != 0 and i < n and los[i] <= v)
    return out


def interval_join_pairs(alos: Sequence[int], ahis: Sequence[int],
                        blos: Sequence[int], bhis: Sequence[int],
                        predicate: "str" = "overlaps"
                        ) -> list[tuple[int, int]]:
    """Endpoint-sweep interval join: ``(i, j)`` pairs with ``a[i]``
    relating to ``b[j]``.

    Both inputs must be lo-sorted (callers argsort and map positions
    back).  This is the forward-scan sweep of Piatov et al.: two
    cursors walk the lo lanes in merge order and each side scans the
    other's still-open intervals, so the cost is O(n log n) for the
    caller's sorts plus one interpreter step per *output* pair — never
    the nested-loop n*m.  ``predicate`` narrows the emitted pairs:

    * ``"overlaps"`` — ``a.lo <= b.hi and b.lo <= a.hi`` (every scanned
      pair qualifies; no residual test);
    * ``"during"`` — ``a`` inside ``b`` (``a.lo >= b.lo and
      a.hi <= b.hi``), filtered out of the overlap candidates.

    Every interval must be *regular* (``lo <= hi``): the scan bounds
    assume it, so inverted or NaN-endpoint rows would be emitted or
    missed inconsistently.  The executor routes such rows through the
    scalar predicate instead of the sweep.
    """
    na, nb = len(alos), len(blos)
    pairs: list[tuple[int, int]] = []
    append = pairs.append
    during = predicate == "during"
    if predicate not in ("overlaps", "during"):
        raise ValueError(f"unknown join predicate {predicate!r}")
    i = j = 0
    while i < na and j < nb:
        if alos[i] <= blos[j]:
            ahi = ahis[i]
            alo = alos[i]
            k = j
            while k < nb and blos[k] <= ahi:
                if not during or (alo >= blos[k] and ahi <= bhis[k]):
                    append((i, k))
                k += 1
            i += 1
        else:
            bhi = bhis[j]
            blo = blos[j]
            k = i
            while k < na and alos[k] <= bhi:
                if not during or (alos[k] >= blo and ahis[k] <= bhi):
                    append((k, j))
                k += 1
            j += 1
    return pairs


# ---------------------------------------------------------------------------
# Misc column kernels
# ---------------------------------------------------------------------------

def clip_to_span(cols: IntervalColumns, lo: int, hi: int
                 ) -> "IntervalColumns | None":
    """Keep elements overlapping ``[lo, hi]``; ``None`` when the lanes are
    unsorted (caller falls back to a scan)."""
    if not cols.hi_sorted:
        return None
    start = bisect_left(cols.his, lo)
    end = bisect_right(cols.los, hi)
    if end < start:
        end = start
    return cols.slice(start, end)


def clip_cover(cols: IntervalColumns, lo: int, hi: int) -> IntervalColumns:
    """Intersect the two boundary elements with ``[lo, hi]`` (cover → clip
    materialisation); zero-copy when no boundary pokes outside."""
    n = len(cols)
    if n == 0:
        return cols
    patch_lo = cols.los[0] < lo
    patch_hi = cols.his[-1] > hi
    if not patch_lo and not patch_hi:
        return cols
    out = cols.copy_slice(0, n)
    if patch_lo:
        out.los[0] = lo
    if patch_hi:
        out.his[-1] = hi
    return out


def shift_columns(cols: IntervalColumns,
                  delta: int) -> "IntervalColumns | None":
    """Translate every interval by ``delta`` zero-skipping ticks; ``None``
    when a shifted endpoint leaves the int64 range."""
    out_los: list[int] = []
    out_his: list[int] = []
    for lane, out in ((cols.los, out_los), (cols.his, out_his)):
        for t in lane:
            r = t + delta
            if t > 0 and r <= 0:
                r -= 1
            elif t < 0 and r >= 0:
                r += 1
            out.append(r)
    try:
        return IntervalColumns(array("q", out_los), array("q", out_his))
    except OverflowError:
        return None
