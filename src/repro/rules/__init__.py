"""Time-based rules: event rules, temporal rules, RULE tables, DBCRON."""

from repro.rules.clock import SimulatedClock, WallClock
from repro.rules.dbcron import DBCron
from repro.rules.events import Event
from repro.rules.manager import RuleManager
from repro.rules.rule import EventRule
from repro.rules.tables import RULE_INFO, RULE_TIME, RuleTables
from repro.rules.temporal import TemporalRule

__all__ = [
    "Event", "EventRule", "TemporalRule", "RuleManager",
    "RuleTables", "RULE_INFO", "RULE_TIME",
    "SimulatedClock", "WallClock", "DBCron",
]
