"""E9: the DBCRON daemon (Figure 4) end to end."""

import datetime

import pytest

from repro.core import AxisError
from repro.rules import DBCron, RuleManager, SimulatedClock


def tuesdays_between(start: datetime.date, end: datetime.date):
    d = start
    while d <= end:
        if d.isoweekday() == 2:
            yield d
        d += datetime.timedelta(days=1)


class TestEveryTuesday:
    """The paper's 'On Every Tuesday do Proc_X'."""

    def test_fires_on_every_tuesday(self, ruled_db):
        db, manager, clock, cron = ruled_db
        fired = []
        manager.define_temporal_rule(
            "every_tuesday", "[2]/DAYS:during:WEEKS",
            callback=lambda d, t: fired.append(t), after=clock.now)
        cron.run_until(db.system.day_of("Mar 1 1993"))
        got = [db.system.date_of(t) for t in fired]
        expected = list(tuesdays_between(datetime.date(1993, 1, 2),
                                         datetime.date(1993, 3, 1)))
        assert [(g.year, g.month, g.day) for g in got] == \
            [(e.year, e.month, e.day) for e in expected]

    def test_never_fires_early(self, ruled_db):
        db, manager, clock, cron = ruled_db
        fired = []
        manager.define_temporal_rule(
            "every_tuesday", "[2]/DAYS:during:WEEKS",
            callback=lambda d, t: fired.append((t, clock.now)),
            after=clock.now)
        cron.run_until(db.system.day_of("Feb 1 1993"))
        assert all(fire_tick <= now for fire_tick, now in fired)

    def test_rule_time_points_ahead_after_run(self, ruled_db):
        db, manager, clock, cron = ruled_db
        manager.define_temporal_rule(
            "every_tuesday", "[2]/DAYS:during:WEEKS",
            callback=lambda d, t: None, after=clock.now)
        cron.run_until(db.system.day_of("Feb 1 1993"))
        next_fire = manager.tables.next_fire_of("every_tuesday")
        assert next_fire > clock.now - cron.period


class TestDaemonMechanics:
    def test_probe_loads_due_rules(self, ruled_db):
        db, manager, clock, cron = ruled_db
        db.calendars.define("soon", values=[(clock.now + 3, clock.now + 3)],
                            granularity="DAYS")
        manager.define_temporal_rule("r", "SOON",
                                     callback=lambda d, t: None,
                                     after=clock.now)
        loaded = cron.probe()
        assert loaded == 1

    def test_rules_beyond_horizon_not_loaded(self, ruled_db):
        db, manager, clock, cron = ruled_db
        db.calendars.define("later",
                            values=[(clock.now + 100, clock.now + 100)],
                            granularity="DAYS")
        manager.define_temporal_rule("r", "LATER",
                                     callback=lambda d, t: None,
                                     after=clock.now)
        assert cron.probe() == 0

    def test_multiple_rules_fire_in_time_order(self, ruled_db):
        db, manager, clock, cron = ruled_db
        order = []
        db.calendars.define("day3", values=[(clock.now + 3, clock.now + 3)],
                            granularity="DAYS")
        db.calendars.define("day2", values=[(clock.now + 2, clock.now + 2)],
                            granularity="DAYS")
        manager.define_temporal_rule(
            "late", "DAY3", callback=lambda d, t: order.append("late"),
            after=clock.now)
        manager.define_temporal_rule(
            "early", "DAY2", callback=lambda d, t: order.append("early"),
            after=clock.now)
        cron.run_until(clock.now + 10)
        assert order == ["early", "late"]

    def test_catchup_fires_all_missed_points(self, ruled_db):
        db, manager, clock, cron = ruled_db
        fired = []
        manager.define_temporal_rule(
            "daily", "DAYS", callback=lambda d, t: fired.append(t),
            after=clock.now)
        # Jump a month in a single probe-period-sized series of steps.
        cron.run_until(clock.now + 28)
        assert len(fired) == 28

    def test_dropped_rule_never_fires(self, ruled_db):
        db, manager, clock, cron = ruled_db
        fired = []
        manager.define_temporal_rule(
            "every_tuesday", "[2]/DAYS:during:WEEKS",
            callback=lambda d, t: fired.append(t), after=clock.now)
        cron.probe()
        manager.drop_rule("every_tuesday")
        cron.run_until(clock.now + 30)
        assert fired == []

    def test_rule_defined_mid_run_is_picked_up(self, ruled_db):
        db, manager, clock, cron = ruled_db
        fired = []
        cron.run_until(clock.now + 5)
        manager.define_temporal_rule(
            "every_tuesday", "[2]/DAYS:during:WEEKS",
            callback=lambda d, t: fired.append(t), after=clock.now)
        cron.run_until(clock.now + 21)
        assert len(fired) == 3

    def test_stats_accumulate(self, ruled_db):
        db, manager, clock, cron = ruled_db
        manager.define_temporal_rule(
            "every_tuesday", "[2]/DAYS:during:WEEKS",
            callback=lambda d, t: None, after=clock.now)
        cron.run_until(clock.now + 28)
        assert cron.stats.fires == 4
        assert cron.stats.probes >= 4
        assert cron.stats.max_heap_size >= 1

    def test_bad_period_rejected(self, ruled_db):
        db, manager, clock, _ = ruled_db
        with pytest.raises(AxisError):
            DBCron(manager, clock, period=0)

    def test_probe_period_does_not_change_fire_days(self, db):
        """Firing days are a property of the calendar, not of T."""
        results = {}
        for period in (1, 7, 30):
            manager = RuleManager.__new__(RuleManager)  # fresh manager
            from repro.db import Database
            fresh = Database(calendars=db.calendars)
            manager = RuleManager(fresh)
            clock = SimulatedClock(now=fresh.system.day_of("Jan 1 1993"))
            cron = DBCron(manager, clock, period=period)
            fired = []
            manager.define_temporal_rule(
                "t", "[2]/DAYS:during:WEEKS",
                callback=lambda d, t: fired.append(t), after=clock.now)
            cron.run_until(fresh.system.day_of("Feb 15 1993"))
            results[period] = fired
        assert results[1] == results[7] == results[30]
