"""Tests for the mini-MultiCal comparator and its bridge (section 5)."""

import pytest

from repro.core import CalendarError, Epoch
from repro.multical import (
    CalendricSystem,
    FiscalMCCalendar,
    MCEvent,
    MCInterval,
    MCSpan,
    calendar_to_mc_intervals,
    interval_to_mc,
    mc_interval_to_interval,
    render_calendar,
    variable_span_equals_months_step,
)


@pytest.fixture(scope="module")
def mc():
    system = CalendricSystem(Epoch.of("Jan 1 1987"))
    system.register(FiscalMCCalendar(system.epoch, start_month=10))
    return system


class TestTypes:
    def test_event_no_chronon_zero(self):
        with pytest.raises(CalendarError):
            MCEvent(0)

    def test_event_ordering(self):
        assert MCEvent(1) < MCEvent(5)
        assert MCEvent(-1) < MCEvent(1)

    def test_fixed_span_between_events_skips_zero(self):
        assert MCEvent(-1).fixed_span_to(MCEvent(1)) == MCSpan(days=1)
        assert MCEvent(1).fixed_span_to(MCEvent(-1)) == MCSpan(days=-1)

    def test_span_arithmetic(self):
        assert MCSpan(months=1) + MCSpan(days=3) == MCSpan(1, 3)
        assert -MCSpan(1, 3) == MCSpan(-1, -3)
        assert MCSpan(2, 5) - MCSpan(1, 2) == MCSpan(1, 3)

    def test_span_fixedness(self):
        assert MCSpan(days=7).is_fixed
        assert not MCSpan(months=1).is_fixed

    def test_span_str(self):
        assert str(MCSpan(months=2, days=3)) == "2 months 3 days"
        assert str(MCSpan()) == "0 days"

    def test_interval_validation(self):
        with pytest.raises(CalendarError):
            MCInterval(5, 1)
        with pytest.raises(CalendarError):
            MCInterval(0, 5)

    def test_interval_predicates(self):
        a, b = MCInterval(1, 10), MCInterval(5, 20)
        assert a.overlaps(b) and b.overlaps(a)
        assert MCInterval(1, 30).contains(b)
        assert a.contains_event(MCEvent(7))
        assert not a.contains_event(MCEvent(11))

    def test_duration_skips_zero(self):
        assert MCInterval(-2, 2).duration() == MCSpan(days=4)


class TestCalendars:
    def test_gregorian_io(self, mc):
        event = mc.input_event("Nov 19 1993")
        assert mc.output_event(event) == "Nov 19 1993"

    def test_fiscal_rendering_of_same_chronon(self, mc):
        event = mc.input_event("Nov 19 1993")
        assert mc.output_event(event, "fiscal") == "FY1994 M02 D19"

    def test_fiscal_parse(self, mc):
        event = mc.input_event("FY1994 M02 D19", calendar="fiscal")
        assert mc.output_event(event, "gregorian") == "Nov 19 1993"

    def test_fiscal_year_boundaries(self, mc):
        oct1 = mc.input_event("Oct 1 1993")
        sep30 = mc.input_event("Sep 30 1994")
        assert mc.output_event(oct1, "fiscal") == "FY1994 M01 D01"
        assert mc.output_event(sep30, "fiscal") == "FY1994 M12 D30"

    def test_fiscal_parse_error(self, mc):
        with pytest.raises(CalendarError):
            mc.input_event("FY1994", calendar="fiscal")

    def test_unknown_calendar(self, mc):
        with pytest.raises(CalendarError):
            mc.input_event("Nov 19 1993", calendar="lunar")

    def test_fiscal_start_month_validation(self, mc):
        with pytest.raises(CalendarError):
            FiscalMCCalendar(mc.epoch, start_month=1)

    def test_interval_io(self, mc):
        interval = mc.input_interval("Jan 1 1993", "Mar 31 1993")
        assert "Jan 1 1993" in mc.output_interval(interval)


class TestVariableSpans:
    def test_add_variable_month_span(self, mc):
        event = mc.input_event("Jan 31 1993")
        moved = mc.add(event, MCSpan(months=1))
        # Jan 31 + 1 month clamps to Feb 28 (variable span semantics).
        assert mc.output_event(moved) == "Feb 28 1993"

    def test_add_mixed_span(self, mc):
        event = mc.input_event("Nov 19 1993")
        moved = mc.add(event, MCSpan(months=1, days=2))
        assert mc.output_event(moved) == "Dec 21 1993"

    def test_fiscal_month_arithmetic_matches_civil(self, mc):
        event = mc.input_event("FY1994 M01 D15", calendar="fiscal")
        moved = mc.add(event, MCSpan(months=2))
        assert mc.output_event(moved, "fiscal") == "FY1994 M03 D15"
        assert mc.output_event(moved, "gregorian") == "Dec 15 1993"

    def test_variable_span_equals_months_calendar_step(self, mc,
                                                       registry):
        """Section 5: the single point of overlap between the proposals."""
        months = registry.system.months("Jan 1 1993", "Dec 31 1994")
        event = mc.input_event("Mar 15 1993")
        for k in (1, 3, 11):
            assert variable_span_equals_months_step(mc, months, event, k)


class TestBridge:
    def test_interval_roundtrip(self):
        from repro.core import Interval
        ours = Interval(-4, 3)
        theirs = interval_to_mc(ours)
        assert mc_interval_to_interval(theirs) == ours

    def test_calendar_flattening_is_lossy(self, registry):
        """MultiCal has no nested lists: order-2 structure is lost."""
        cal = registry.eval_expression(
            "WEEKS:during:[1-3]/MONTHS:during:1993/YEARS")
        assert cal.order == 2
        flat = calendar_to_mc_intervals(cal)
        assert len(flat) == cal.leaf_count()
        assert all(isinstance(x, MCInterval) for x in flat)

    def test_render_calendar_in_two_calendars(self, mc, registry):
        expirations = registry.eval_expression(
            "[3]/([5]/DAYS:during:WEEKS):overlaps:"
            "[11]/MONTHS:during:1993/YEARS")
        gregorian = render_calendar(mc, expirations, "gregorian")
        fiscal = render_calendar(mc, expirations, "fiscal")
        assert gregorian == ["Nov 19 1993"]
        assert fiscal == ["FY1994 M02 D19"]

    def test_multical_constant_feeds_our_algebra(self, mc, registry):
        """Parse a constant with MultiCal, use it in a calendar script."""
        from repro.core import Calendar
        interval = mc.input_interval("FY1994 M01 D01", "FY1994 M12 D30",
                                     calendar="fiscal")
        fy94 = Calendar.interval(interval.start, interval.end)
        mondays = registry.eval_script(
            "{return([1]/DAYS:during:WEEKS:during:FY94);}",
            window=("Jan 1 1993", "Dec 31 1994"), env={"FY94": fy94})
        dates = [registry.system.date_of(iv.lo) for iv in mondays.elements]
        assert dates[0].month == 10 and dates[0].year == 1993
        assert dates[-1].year == 1994 and dates[-1].month == 9
