"""B1 / E4 / E5: factorization effect on the Figure 2 and 3 expressions.

The paper claims the parser's factorization removes redundant parts of
calendar expressions.  Each figure expression is evaluated four ways —
{unfactorized, factorized} x {interpreter, compiled plan} — and the
factorized compiled plan must generate strictly fewer intervals.

Regenerates (printed by ``test_report_figures_2_and_3``):
  * the initial and factorized parse trees (Figures 2 and 3),
  * node counts and applied rewrites,
  * intervals-generated and wall-time per strategy.
"""

from __future__ import annotations

import time

import pytest

from repro.core.granularity import Granularity
from repro.lang import (
    EvalContext,
    Interpreter,
    PlanVM,
    compile_expression,
    count_nodes,
    expand,
    factorize,
    parse_expression,
    parse_script,
    render_tree,
)
from repro.lang.defs import DerivedDef, basic_resolver, chain_resolvers

DERIVED = {
    "mondays": DerivedDef(
        parse_script("{return([1]/DAYS:during:WEEKS);}"),
        Granularity.DAYS),
    "januarys": DerivedDef(
        parse_script("{return([1]/MONTHS:during:YEARS);}"),
        Granularity.MONTHS),
    "third_weeks": DerivedDef(
        parse_script("{return([3]/WEEKS:overlaps:MONTHS);}"),
        Granularity.WEEKS),
}
RESOLVER = chain_resolvers(lambda n: DERIVED.get(n.lower()),
                           basic_resolver)

FIGURE_2 = "Mondays:during:Januarys:during:1993/Years"
FIGURE_3 = "Third_Weeks:during:Januarys:during:1993/Years"


def window_of(registry):
    lo, _ = registry.system.epoch.days_of_year(1987)
    _, hi = registry.system.epoch.days_of_year(2016)
    return lo, hi


def run_interpreter(registry, expr, window):
    ctx = EvalContext(system=registry.system, resolver=RESOLVER,
                      window=window)
    return Interpreter(ctx).evaluate(expr), ctx.stats


def run_plan(registry, expr, window):
    plan = compile_expression(expr, registry.system, RESOLVER,
                              context_window=window)
    ctx = EvalContext(system=registry.system, resolver=RESOLVER,
                      window=window)
    return PlanVM(ctx).run(plan), ctx.stats


@pytest.mark.parametrize("label,text", [("figure2", FIGURE_2),
                                        ("figure3", FIGURE_3)])
class TestFactorizationBenchmarks:
    def test_unfactorized_interpreter(self, benchmark, registry, label,
                                      text):
        window = window_of(registry)
        expr = expand(parse_expression(text), RESOLVER)
        benchmark(lambda: run_interpreter(registry, expr, window))

    def test_factorized_plan(self, benchmark, registry, label, text):
        window = window_of(registry)
        expr = factorize(parse_expression(text), RESOLVER).expression
        benchmark(lambda: run_plan(registry, expr, window))


def test_report_figures_2_and_3(registry, capsys):
    """Regenerate the Figure 2/3 artifacts and the quantitative rows."""
    window = window_of(registry)
    rows = []
    for title, text in [("Figure 2 (Mondays during January 1993)",
                         FIGURE_2),
                        ("Figure 3 (Third week in January 1993)",
                         FIGURE_3)]:
        initial = expand(parse_expression(text), RESOLVER)
        result = factorize(parse_expression(text), RESOLVER)
        factored = result.expression
        print(f"\n=== {title}")
        print("--- INITIAL parse tree "
              f"({count_nodes(initial)} nodes)")
        print(render_tree(initial))
        print(f"--- FACTORIZED parse tree "
              f"({count_nodes(factored)} nodes, "
              f"{result.applied} rewrites)")
        print(render_tree(factored))

        t0 = time.perf_counter()
        ref, ref_stats = run_interpreter(registry, initial, window)
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast, fast_stats = run_plan(registry, factored, window)
        t_fast = time.perf_counter() - t0
        assert fast.to_pairs() == ref.to_pairs()
        assert fast_stats["intervals_generated"] < \
            ref_stats["intervals_generated"]
        print(f"intervals generated: initial/interpreter "
              f"{ref_stats['intervals_generated']}, "
              f"factorized/plan {fast_stats['intervals_generated']} "
              f"({ref_stats['intervals_generated'] / max(1, fast_stats['intervals_generated']):.1f}x fewer)")
        print(f"wall time: {t_ref * 1e3:.2f} ms -> {t_fast * 1e3:.2f} ms")
        rows.append((title, count_nodes(initial), count_nodes(factored)))
    assert rows[0][1] > rows[0][2]
    assert rows[1][1] > rows[1][2]
