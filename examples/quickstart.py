"""Quickstart: the calendar algebra, language and catalog in five minutes.

Run with::

    python examples/quickstart.py
"""

from repro import CalendarRegistry, CalendarSystem
from repro.catalog import install_standard_calendars, install_us_holidays


def main() -> None:
    # 1. A calendar system anchored at the paper's start date.
    system = CalendarSystem.starting("Jan 1 1987")
    registry = CalendarRegistry(system, default_horizon_years=20)
    install_standard_calendars(registry)
    install_us_holidays(registry, 1987, 2006)

    def show(title, cal):
        dates = [str(system.date_of(iv.lo)) + (
            "" if iv.is_instant() else f" .. {system.date_of(iv.hi)}")
            for iv in cal.iter_intervals()]
        print(f"{title}:")
        for d in dates[:6]:
            print(f"   {d}")
        if len(dates) > 6:
            print(f"   ... ({len(dates)} total)")
        print()

    # 2. The paper's generate() example, verbatim.
    years = system.generate("YEARS", "DAYS", ("Jan 1 1987", "Jan 3 1992"))
    print("generate(YEARS, DAYS, [Jan 1 1987, Jan 3 1992]) =")
    print("  ", years, "\n")

    # 3. Calendar expressions: the third week in January 1993 (Figure 3).
    third_week = registry.eval_expression(
        "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS")
    show("Third week in January 1993", third_week)

    # 4. Natural-language definitions stored in the CALENDARS catalog.
    registry.define(
        "PAYDAYS",
        script="{return([n]/AM_BUS_DAYS:during:MONTHS);}",
        granularity="DAYS")
    paydays = registry.evaluate("PAYDAYS",
                                window=("Jan 1 1993", "Jun 30 1993"))
    show("Paydays (last business day of each month)", paydays)

    # 5. The Figure 1 catalog row.
    print("CALENDARS catalog row for Tuesdays:")
    print(registry.render("Tuesdays"))
    print()

    # 6. Set operations and scripts: the EMP-DAYS example of section 3.3.
    emp_days = registry.eval_script("""
        {LDOM_x = [n]/DAYS:during:MONTHS;
         LDOM_HOL = LDOM_x:intersects:HOLIDAYS;
         LAST_BUS = [n]/AM_BUS_DAYS:<:LDOM_HOL;
         return (LDOM_x - LDOM_HOL + LAST_BUS);}
    """, window=("Jan 1 1993", "Dec 31 1993"))
    show("Employment-figures days 1993 (EMP-DAYS script)", emp_days)


if __name__ == "__main__":
    main()
