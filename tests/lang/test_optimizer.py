"""Unit tests for the cost-aware plan optimizer: pass by pass.

Each pass (CSE, select fusion, foreach merging, selection push-down,
dead-code elimination) is exercised both structurally — the rewritten
plan has the expected step shapes — and semantically: running the
optimized plan yields byte-identical results to the original.
"""

import os

import pytest

from repro.core import Calendar, CalendarSystem, Granularity
from repro.core.algebra import SelectionPredicate
from repro.lang import (
    EvalContext,
    PlanVM,
    compile_expression,
    factorize,
    optimize_plan,
    parse_expression,
    parse_script,
)
from repro.lang.defs import (
    DerivedDef,
    basic_resolver,
    chain_resolvers,
)
from repro.lang.plan import (
    FlattenStep,
    ForEachStep,
    FusedForEachStep,
    GenerateStep,
    MergedForEachStep,
    PipelineForEachStep,
    Plan,
    SelectStep,
    SetOpStep,
    WindowSpec,
)


@pytest.fixture(scope="module")
def sys87():
    return CalendarSystem.starting("Jan 1 1987")


def make_resolver():
    defs = {
        "mondays": DerivedDef(
            parse_script("{return([1]/DAYS:during:WEEKS);}"),
            Granularity.DAYS),
    }
    return chain_resolvers(lambda n: defs.get(n.lower()), basic_resolver)


RESOLVER = make_resolver()


def window_of(sys87, y0, y1):
    lo, _ = sys87.epoch.days_of_year(y0)
    _, hi = sys87.epoch.days_of_year(y1)
    return (lo, hi)


def compile_for(sys87, text, window):
    expr = factorize(parse_expression(text), RESOLVER).expression
    return compile_expression(expr, sys87, RESOLVER,
                              context_window=window)


def run_plan(sys87, plan, window):
    ctx = EvalContext(sys87, RESOLVER, window=window)
    return PlanVM(ctx).run(plan)


def assert_equivalent(sys87, before, after, window):
    a = run_plan(sys87, before, window)
    b = run_plan(sys87, after, window)
    assert a == b
    assert a.flatten().to_pairs() == b.flatten().to_pairs()


class TestCSE:
    def test_duplicate_steps_collapse(self, sys87):
        # Hand-built plan with two identical generate+foreach chains
        # feeding a union (the planner's own memoisation would already
        # share them; CSE must catch plans that arrive unshared).
        w = WindowSpec()
        plan = Plan(steps=[
            GenerateStep("t1", Granularity.MONTHS, w),
            GenerateStep("t2", Granularity.DAYS, w),
            ForEachStep("t3", "during", True, "t2", "t1"),
            FlattenStep("t4", "t3"),
            GenerateStep("t5", Granularity.MONTHS, w),
            GenerateStep("t6", Granularity.DAYS, w),
            ForEachStep("t7", "during", True, "t6", "t5"),
            FlattenStep("t8", "t7"),
            SetOpStep("t9", "+", "t4", "t8"),
        ], result="t9")
        window = window_of(sys87, 1993, 1993)
        out = optimize_plan(plan, context_window=window)
        kinds = [type(s).__name__ for s in out.plan.steps]
        assert kinds.count("GenerateStep") == 2
        assert kinds.count("ForEachStep") == 1
        assert kinds.count("FlattenStep") == 1
        assert out.eliminated >= 4
        assert any("cse" in r for r in out.rewrites)
        assert_equivalent(sys87, plan, out.plan, window)

    def test_distinct_windows_not_merged(self, sys87):
        plan = Plan(steps=[
            GenerateStep("t1", Granularity.DAYS, WindowSpec(fixed=(1, 50))),
            GenerateStep("t2", Granularity.DAYS,
                         WindowSpec(fixed=(100, 150))),
            SetOpStep("t3", "+", "t1", "t2"),
        ], result="t3")
        out = optimize_plan(plan,
                            context_window=window_of(sys87, 1993, 1993))
        assert len(out.plan.steps) == 3


class TestSelectFusion:
    def test_select_over_foreach_fuses(self, sys87):
        window = window_of(sys87, 1993, 1994)
        plan = compile_for(sys87, "[1]/(MONTHS:during:YEARS)", window)
        assert any(isinstance(s, SelectStep) for s in plan.steps)
        out = optimize_plan(plan, context_window=window)
        assert any(isinstance(s, FusedForEachStep) for s in out.plan.steps)
        assert not any(isinstance(s, SelectStep) for s in out.plan.steps)
        assert any("fused" in r for r in out.rewrites)
        assert_equivalent(sys87, plan, out.plan, window)

    def test_negative_predicate_fuses(self, sys87):
        window = window_of(sys87, 1993, 1993)
        plan = compile_for(sys87, "[-1]/(WEEKS:during:MONTHS)", window)
        out = optimize_plan(plan, context_window=window)
        assert any(isinstance(s, FusedForEachStep) for s in out.plan.steps)
        assert_equivalent(sys87, plan, out.plan, window)

    def test_shared_foreach_not_fused(self, sys87):
        # The foreach result is consumed twice: fusing it into one
        # select would lose the other consumer's input.
        w = WindowSpec()
        plan = Plan(steps=[
            GenerateStep("t1", Granularity.MONTHS, w),
            GenerateStep("t2", Granularity.WEEKS, w),
            ForEachStep("t3", "during", True, "t2", "t1"),
            SelectStep("t4", SelectionPredicate(items=(1,)), "t3"),
            FlattenStep("t5", "t3"),
            SetOpStep("t6", "+", "t4", "t5"),
        ], result="t6")
        window = window_of(sys87, 1993, 1993)
        out = optimize_plan(plan, context_window=window)
        assert not any(isinstance(s, FusedForEachStep)
                       for s in out.plan.steps)
        assert_equivalent(sys87, plan, out.plan, window)


class TestForeachMerge:
    def test_adjacent_foreach_merge(self, sys87):
        window = window_of(sys87, 1993, 1993)
        plan = compile_for(sys87, "(DAYS:during:WEEKS):during:MONTHS",
                           window)
        out = optimize_plan(plan, context_window=window)
        assert any(isinstance(s, MergedForEachStep)
                   for s in out.plan.steps)
        assert any("merged" in r for r in out.rewrites)
        assert_equivalent(sys87, plan, out.plan, window)


class TestPushDown:
    CANONICAL = "Mondays:during:([1]/(MONTHS:during:YEARS))"

    def test_pipeline_fires_on_canonical_expression(self, sys87):
        window = window_of(sys87, 1987, 2016)
        plan = compile_for(sys87, self.CANONICAL, window)
        out = optimize_plan(plan, context_window=window)
        assert any(isinstance(s, PipelineForEachStep)
                   for s in out.plan.steps)
        assert any("pushdown" in r for r in out.rewrites)
        assert_equivalent(sys87, plan, out.plan, window)

    def test_pipeline_skipped_for_huge_reference_sets(self, sys87):
        # Every day of 30 years as references: way past the ref cap.
        window = window_of(sys87, 1987, 2016)
        plan = compile_for(sys87, "Mondays:during:(DAYS:during:MONTHS)",
                           window)
        out = optimize_plan(plan, context_window=window)
        assert not any(isinstance(s, PipelineForEachStep)
                       for s in out.plan.steps)

    def test_pipeline_result_with_n_last_selection(self, sys87):
        window = window_of(sys87, 1990, 1999)
        plan = compile_for(sys87, "Mondays:during:([n]/(MONTHS:during:"
                                  "YEARS))", window)
        out = optimize_plan(plan, context_window=window)
        assert_equivalent(sys87, plan, out.plan, window)


class TestDCE:
    def test_unreferenced_steps_dropped(self, sys87):
        w = WindowSpec()
        plan = Plan(steps=[
            GenerateStep("t1", Granularity.DAYS, w),
            GenerateStep("t2", Granularity.MONTHS, w),  # dead
            GenerateStep("t3", Granularity.WEEKS, w),
            ForEachStep("t4", "during", True, "t1", "t3"),
        ], result="t4")
        window = window_of(sys87, 1993, 1993)
        out = optimize_plan(plan, context_window=window)
        targets = [s.target for s in out.plan.steps]
        assert "t2" not in targets
        assert any("dce" in r for r in out.rewrites)
        assert_equivalent(sys87, plan, out.plan, window)


class TestGating:
    def test_registry_flag_off_keeps_plan(self):
        from repro.catalog import CalendarRegistry
        registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                    optimize=False)
        assert registry.optimize is False

    def test_env_gate(self, monkeypatch):
        from repro.catalog.registry import _env_optimize_default
        monkeypatch.delenv("REPRO_OPTIMIZE", raising=False)
        assert _env_optimize_default() is True
        monkeypatch.setenv("REPRO_OPTIMIZE", "0")
        assert _env_optimize_default() is False
        monkeypatch.setenv("REPRO_OPTIMIZE", "off")
        assert _env_optimize_default() is False
        monkeypatch.setenv("REPRO_OPTIMIZE", "1")
        assert _env_optimize_default() is True

    def test_metrics_and_events_recorded(self, sys87):
        from repro.obs.instrument import MetricsRegistry
        from repro.obs.telemetry import TelemetryPipeline
        window = window_of(sys87, 1993, 1994)
        plan = compile_for(sys87, "[1]/(MONTHS:during:YEARS)", window)
        metrics = MetricsRegistry()
        pipeline = TelemetryPipeline()
        out = optimize_plan(plan, context_window=window, metrics=metrics,
                            events=pipeline)
        assert out.rewrites
        snap = metrics.snapshot()
        assert snap.get("optimizer.runs", 0) >= 1
        assert snap.get("optimizer.rewrites", 0) >= 1
        assert any(e.kind == "optimizer.rewrite"
                   for e in pipeline.events())

    def test_costs_annotate_final_registers(self, sys87):
        window = window_of(sys87, 1993, 1994)
        plan = compile_for(sys87, "[1]/(MONTHS:during:YEARS)", window)
        out = optimize_plan(plan, context_window=window)
        assert out.costs
        for value in out.costs.values():
            assert value.startswith("~") and value.endswith(" ivs")
