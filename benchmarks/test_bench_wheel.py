"""Timing-wheel DBCRON at alerting scale: throughput and drift.

Scheduler-core benchmarks isolating the *scheduling* path of each
strategy at 10k / 100k (and, gated, 1M) registered rules:

* **heap leg** — the legacy design's full scheduling loop: a RULE_TIME
  catalog (with its ordered ``next_fire`` index) kept current per fire,
  probed every period for due rules, feeding a binary heap.  The
  catalog work belongs in this leg because the probe *requires* it —
  RULE_TIME is the heap's scheduling source of truth.
* **wheel leg** — the sharded hierarchical wheel on its own: arms and
  re-arms go straight into O(1) buckets and no catalog is consulted
  (in the live daemon RULE_TIME survives only as a durability record
  off the scheduling path).

Rule actions and everything else the two modes share are deliberately
excluded, so the measured gap is the scheduling cost the wheel rework
actually removed.  Self-timed rows land in ``BENCH_core.json``
(``wheel/...``) with fire throughput, p99 drift in ticks and — for the
gated 1M run — peak RSS.

The 1M sweep runs only with ``REPRO_BENCH_FULL=1`` (it arms a million
rules); its recorded row persists across smoke runs via the report's
merge-by-name semantics.
"""

from __future__ import annotations

import os
import resource

from time import perf_counter

import pytest

from conftest import record_benchmark

from repro.db import Database
from repro.rules import HeapSchedule, WheelSchedule
from repro.rules.tables import RuleTables

#: Simulated steady-state window (ticks) per timed round.
WINDOW = 40
#: Rules actively firing inside the window; the rest are armed at far
#: futures (dormant alerts), which is what dominates real fleets.
ACTIVE = 6_000
PROBE_PERIOD = 7


class _StubRule:
    """The minimal surface RuleTables.register needs."""

    __slots__ = ("name", "expression_text", "expression", "plan")

    def __init__(self, name: str) -> None:
        self.name = name
        self.expression_text = "DAYS"
        self.expression = "DAYS"
        self.plan = None


def _stride(index: int) -> int:
    return 20 + index % 13  # mixed periods, all < WINDOW


class _HeapState:
    """Legacy scheduling core: RULE_TIME catalog + probe + heap."""

    def __init__(self, registry, n_rules: int) -> None:
        self.tables = RuleTables(Database(calendars=registry))
        self.sched = HeapSchedule()
        self.now = 1
        self.strides: dict[str, int] = {}
        for i in range(n_rules):
            name = f"alert-{i}"
            if i < ACTIVE:
                first = self.now + 1 + i % _stride(i)
                self.strides[name] = _stride(i)
            else:
                first = self.now + 10_000 + i  # dormant
                self.strides[name] = 10_000
            self.tables.register(_StubRule(name), first)

    def run(self, window: int) -> tuple[int, list[int]]:
        """One steady-state window; (fires, per-fire drift ticks)."""
        fires, drifts = 0, []
        end = self.now + window
        while self.now < end:
            self.now += 1
            if self.now % PROBE_PERIOD == 0:  # the RULE_TIME probe
                for tick, name in self.tables.due_within(
                        self.now, PROBE_PERIOD):
                    self.sched.schedule(name, tick)
            while True:
                wave = self.sched.pop_wave(self.now)
                if not wave:
                    break
                for tick, name, _ in wave:
                    fires += 1
                    drifts.append(self.now - tick)
                    nxt = tick + self.strides[name]
                    # The catalog write is the heap's re-arm path: the
                    # next probe discovers it there.
                    self.tables.set_next_fire(name, nxt)
                    if nxt <= self.now + PROBE_PERIOD:
                        self.sched.schedule(name, nxt)  # inside horizon
        return fires, drifts


class _WheelState:
    """Wheel scheduling core: buckets only, no catalog in the path."""

    def __init__(self, n_rules: int, shards: int = 4) -> None:
        self.sched = WheelSchedule(1, shards=shards)
        self.now = 1
        self.strides: dict[str, int] = {}
        for i in range(n_rules):
            name = f"alert-{i}"
            if i < ACTIVE:
                first = self.now + 1 + i % _stride(i)
                self.strides[name] = _stride(i)
            else:
                first = self.now + 10_000 + i
                self.strides[name] = 10_000
            self.sched.schedule(name, first)

    def run(self, window: int, step: int = 3) -> tuple[int, list[int]]:
        """One steady-state window advancing ``step`` ticks at a time."""
        fires, drifts = 0, []
        end = self.now + window
        while self.now < end:
            self.now = min(end, self.now + step)
            while True:
                wave = self.sched.pop_wave(self.now)
                if not wave:
                    break
                for tick, name, _ in wave:
                    fires += 1
                    drifts.append(self.now - tick)
                    self.sched.schedule(name, tick + self.strides[name])
        return fires, drifts


def _p99(values: list[int]) -> int:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1,
                       round(0.99 * (len(ordered) - 1)))] if ordered else 0


def _measure(state, rounds: int) -> dict:
    """Timed steady-state rounds; summary row fields."""
    samples, fires, drifts = [], 0, []
    for _ in range(rounds):
        t0 = perf_counter()
        round_fires, round_drifts = state.run(WINDOW)
        samples.append(perf_counter() - t0)
        fires += round_fires
        drifts.extend(round_drifts)
    total = sum(samples)
    return {
        "samples": samples,
        "fires": fires,
        "fires_per_s": fires / total if total > 0 else 0.0,
        "p99_drift_ticks": _p99(drifts),
    }


@pytest.mark.parametrize("n_rules", [10_000, 100_000])
def test_wheel_vs_heap_fire_throughput(registry, n_rules):
    """The headline row: scheduling throughput, wheel vs legacy heap."""
    heap = _measure(_HeapState(registry, n_rules), rounds=2)
    wheel = _measure(_WheelState(n_rules), rounds=2)
    label = f"{n_rules // 1000}k"
    record_benchmark(f"wheel/heap_core_{label}", heap["samples"],
                     fires=heap["fires"],
                     fires_per_s=round(heap["fires_per_s"]),
                     p99_drift_ticks=heap["p99_drift_ticks"],
                     rules=n_rules)
    speedup = wheel["fires_per_s"] / heap["fires_per_s"] \
        if heap["fires_per_s"] else float("inf")
    record_benchmark(f"wheel/wheel_core_{label}", wheel["samples"],
                     fires=wheel["fires"],
                     fires_per_s=round(wheel["fires_per_s"]),
                     p99_drift_ticks=wheel["p99_drift_ticks"],
                     rules=n_rules,
                     speedup_vs_heap=round(speedup, 1))
    # Identical workloads fire identically.
    assert wheel["fires"] == heap["fires"] > 0
    # The CI drift gate: the wheel daemon must keep up at scale.
    assert wheel["p99_drift_ticks"] <= 2, \
        f"p99 drift {wheel['p99_drift_ticks']} ticks at {n_rules} rules"
    if n_rules >= 100_000:
        # The acceptance floor: at alerting scale the wheel's fire
        # throughput leaves the probe+catalog path >= 10x behind.
        assert speedup >= 10.0, \
            f"wheel only {speedup:.1f}x the heap at {n_rules} rules"


@pytest.mark.skipif(os.environ.get("REPRO_BENCH_FULL") != "1",
                    reason="1M-rule sweep only with REPRO_BENCH_FULL=1")
def test_wheel_one_million_rules_bounded():
    """1M armed rules: completes, bounded memory, drift recorded."""
    rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    t0 = perf_counter()
    state = _WheelState(1_000_000, shards=8)
    arm_seconds = perf_counter() - t0
    stats = _measure(state, rounds=2)
    rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    rss_mb = (rss_after - rss_before) / 1024  # ru_maxrss is KiB on Linux
    record_benchmark("wheel/wheel_core_1M", stats["samples"],
                     fires=stats["fires"],
                     fires_per_s=round(stats["fires_per_s"]),
                     p99_drift_ticks=stats["p99_drift_ticks"],
                     rules=1_000_000,
                     arm_seconds=round(arm_seconds, 3),
                     rss_delta_mb=round(rss_mb, 1),
                     overflow=state.sched.overflow_size())
    assert stats["fires"] > 0
    assert stats["p99_drift_ticks"] <= 2
    # Bounded memory: ~a few hundred bytes per armed rule, not gigabytes.
    assert rss_mb < 2048, f"1M rules grew RSS by {rss_mb:.0f} MiB"


def test_registration_throughput_10k(registry):
    """Arming cost: O(1) wheel buckets vs heap + catalog maintenance."""
    n_rules = 10_000
    t0 = perf_counter()
    _HeapState(registry, n_rules)
    heap_s = perf_counter() - t0
    t0 = perf_counter()
    _WheelState(n_rules)
    wheel_s = perf_counter() - t0
    record_benchmark("wheel/register_10k_wheel", [wheel_s],
                     rules=n_rules, rules_per_s=round(n_rules / wheel_s))
    record_benchmark("wheel/register_10k_heap_catalog", [heap_s],
                     rules=n_rules, rules_per_s=round(n_rules / heap_s))
    assert wheel_s < heap_s
