"""Shared benchmark fixtures: populated registries over long horizons.

A session-finish hook writes ``BENCH_core.json`` to the repository root
with every benchmark's mean wall time plus the process-wide
materialisation-cache counters (hit ratio included), so successive runs
can be diffed without re-parsing pytest-benchmark's own storage.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.catalog import (
    CalendarRegistry,
    install_standard_calendars,
    install_us_holidays,
)
from repro.core import CalendarSystem
from repro.core.matcache import get_default_cache
from repro.db import Database

BENCH_REPORT = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def build_registry(horizon_years: int = 30,
                   matcache=None) -> CalendarRegistry:
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=horizon_years,
                                matcache=matcache)
    install_standard_calendars(registry)
    install_us_holidays(registry, 1987, 1987 + horizon_years - 1)
    return registry


@pytest.fixture(scope="module")
def registry() -> CalendarRegistry:
    return build_registry()


@pytest.fixture(scope="module")
def bench_db(registry) -> Database:
    return Database(calendars=registry)


def _benchmark_rows(session) -> list[dict]:
    """Per-benchmark mean/min wall times, tolerant of plugin internals."""
    rows = []
    try:
        benchmarks = session.config._benchmarksession.benchmarks
    except AttributeError:
        return rows
    for bench in benchmarks:
        try:
            rows.append({"name": bench.fullname,
                         "mean_s": bench.stats.mean,
                         "min_s": bench.stats.min,
                         "rounds": bench.stats.rounds})
        except (AttributeError, TypeError):
            continue
    return rows


def pytest_sessionfinish(session, exitstatus):
    """Write BENCH_core.json: wall times + materialisation-cache stats."""
    cache_stats = get_default_cache().stats()
    report = {
        "benchmarks": _benchmark_rows(session),
        "matcache": cache_stats,
        "cache_hit_ratio": cache_stats["hit_ratio"],
    }
    try:
        BENCH_REPORT.write_text(json.dumps(report, indent=2) + "\n")
    except OSError:
        pass
