"""B5: the Postquel substrate — scans, index probes, temporal predicates,
event-rule overhead.
"""

from __future__ import annotations

import time

import pytest

from repro.db import Database
from repro.rules import RuleManager

N_ROWS = 5_000


@pytest.fixture(scope="module")
def loaded_db(registry):
    db = Database(calendars=registry)
    db.create_table("trades",
                    [("id", "int4"), ("symbol", "text"),
                     ("day", "abstime"), ("qty", "int4")],
                    valid_time_column="day")
    base = db.system.day_of("Jan 1 1993")
    relation = db.relation("trades")
    for i in range(N_ROWS):
        relation.insert({"id": i, "symbol": f"S{i % 50}",
                         "day": base + (i % 365), "qty": i % 97},
                        fire_hooks=False)
    return db


class TestQueryCosts:
    def test_full_scan_filter(self, benchmark, loaded_db):
        result = benchmark(lambda: loaded_db.execute(
            "retrieve (t.id) from t in trades where t.qty > 90"))
        assert len(result) > 0

    def test_equality_without_index(self, benchmark, loaded_db):
        result = benchmark(lambda: loaded_db.execute(
            'retrieve (t.id) from t in trades where t.symbol = "S7"'))
        assert len(result) == N_ROWS // 50

    def test_equality_with_index(self, benchmark, loaded_db):
        if "symbol" not in loaded_db.relation("trades").indexes:
            loaded_db.create_index("trades", "symbol")
        result = benchmark(lambda: loaded_db.execute(
            'retrieve (t.id) from t in trades where t.symbol = "S7"'))
        assert len(result) == N_ROWS // 50

    def test_aggregate(self, benchmark, loaded_db):
        result = benchmark(lambda: loaded_db.execute(
            "retrieve (count(), sum(t.qty) as total) from t in trades"))
        assert result.rows[0]["count()"] == N_ROWS

    def test_within_calendar_predicate(self, benchmark, loaded_db):
        result = benchmark(lambda: loaded_db.execute(
            'retrieve (count()) from t in trades '
            'where t.day within "Mondays"'))
        assert result.rows[0]["count()"] > 0

    def test_on_calendar_clause(self, benchmark, loaded_db):
        result = benchmark(lambda: loaded_db.execute(
            "retrieve (count()) from t in trades on Mondays"))
        assert result.rows[0]["count()"] > 0


class TestRuleOverhead:
    def _insert_many(self, db, n=500):
        relation = db.relation("events_t")
        for i in range(n):
            relation.insert({"x": i})

    def test_append_without_rules(self, benchmark, registry):
        db = Database(calendars=registry)
        db.create_table("events_t", [("x", "int4")])

        def run():
            db.relation("events_t").truncate()
            self._insert_many(db)

        benchmark(run)

    def test_append_with_matching_rule(self, benchmark, registry):
        db = Database(calendars=registry)
        manager = RuleManager(db)
        db.create_table("events_t", [("x", "int4")])
        counter = []
        manager.define_event_rule("count_all", "append", "events_t",
                                  callback=lambda d, e: counter.append(1))

        def run():
            db.relation("events_t").truncate()
            self._insert_many(db)

        benchmark(run)
        assert counter

    def test_append_with_nonmatching_condition(self, benchmark, registry):
        db = Database(calendars=registry)
        manager = RuleManager(db)
        db.create_table("events_t", [("x", "int4")])
        manager.define_event_rule("never", "append", "events_t",
                                  condition="new.x < 0",
                                  callback=lambda d, e: None)

        def run():
            db.relation("events_t").truncate()
            self._insert_many(db)

        benchmark(run)


def test_report_within_periodic_speedup(loaded_db):
    """B5 addendum: ``within`` membership, compiled vs materialised.

    With periodic compilation on (the default), ``t.day within "Mondays"``
    probes the compiled :class:`~repro.core.periodic.PeriodicSet` —
    O(log offsets) per row — instead of materialising the calendar over
    the default window and locating the containing interval.  The
    materialised path's probe is itself an O(log n) bisect over the
    calendar's columnar endpoint lanes (it was a linear interval scan
    before the columnar core landed, and the compiled probe was >=5x
    faster then), so per-row membership is now cheap either way and the
    compiled backend's remaining wins are the generation and memory it
    avoids entirely.  The recorded row asserts compiled stays at least
    on par with materialised on the 5k-row trades relation.
    """
    from statistics import median

    from conftest import record_benchmark

    query = ('retrieve (count()) from t in trades '
             'where t.day within "Mondays"')
    registry = loaded_db.calendars

    def timed(loops=5):
        times = []
        for _ in range(loops):
            t0 = time.perf_counter()
            result = loaded_db.execute(query)
            times.append(time.perf_counter() - t0)
        return times, result

    loaded_db.execute(query)  # warm the compiled probe and plan caches
    compiled_times, compiled = timed()
    registry.periodic = False
    try:
        loaded_db.execute(query)  # warm the materialised path
        materialised_times, materialised = timed()
    finally:
        registry.periodic = True
    assert compiled.rows == materialised.rows
    t_compiled = median(compiled_times)
    t_materialised = median(materialised_times)
    speedup = t_materialised / t_compiled
    record_benchmark("db/within_periodic_speedup",
                     samples=compiled_times,
                     materialised_s=t_materialised,
                     speedup=speedup)
    print("\n=== B5 addendum: within-predicate membership on 5000 rows")
    print(f"   compiled probe:  {t_compiled * 1e3:8.2f} ms")
    print(f"   materialised:    {t_materialised * 1e3:8.2f} ms  "
          f"({speedup:.1f}x slower)")
    assert speedup >= 0.8, (
        f"compiled within-probe fell behind the materialised bisect: "
        f"{speedup:.2f}x")


def test_report_within_batched_50k(registry):
    """B5 addendum: batched calendar probes vs row-at-a-time ``within``.

    Successor of ``db/within_periodic_speedup``: once the compiled
    periodic probe made per-row membership O(log offsets), the remaining
    cost of ``within`` was the row engine itself — one environment dict
    and one expression-tree walk per tuple.  The vectorized pipeline
    gathers the valid-time lane, probes each *distinct* tick once
    against the compiled set, and filters with a selection vector, so
    the per-tuple interpreter overhead disappears.  Gate: >=5x on 50k
    rows (the recorded predecessor sat at ~1.07x).
    """
    from statistics import median

    from conftest import record_benchmark

    from repro.db import vector

    db = Database(calendars=registry)
    db.create_table("trades50", [("id", "int4"), ("day", "abstime")],
                    valid_time_column="day")
    base = db.system.day_of("Jan 4 1993")
    db.relation("trades50").insert_many(
        [{"id": i, "day": base + (i % 3650)} for i in range(50_000)],
        fire_hooks=False)
    query = ('retrieve (count()) from t in trades50 '
             'where t.day within "Mondays"')

    def timed(loops):
        times = []
        for _ in range(loops):
            t0 = time.perf_counter()
            result = db.execute(query)
            times.append(time.perf_counter() - t0)
        return times, result

    db.execute(query)  # warm the compiled probe and plan caches
    batched_times, batched = timed(5)
    previous = vector.set_enabled(False)
    try:
        db.execute(query)
        scalar_times, scalar = timed(3)
    finally:
        vector.set_enabled(previous)
    assert batched.rows == scalar.rows
    t_batched = median(batched_times)
    t_scalar = median(scalar_times)
    speedup = t_scalar / t_batched
    record_benchmark("db/within_batched_50k",
                     samples=batched_times,
                     rows=50_000,
                     scalar_s=t_scalar,
                     speedup=speedup)
    print("\n=== B5 addendum: within-predicate on 50000 rows")
    print(f"   batched calendar sweep: {t_batched * 1e3:8.2f} ms")
    print(f"   row-at-a-time:          {t_scalar * 1e3:8.2f} ms  "
          f"({speedup:.1f}x slower)")
    assert speedup >= 5.0, (
        f"batched within fell under the 5x gate: {speedup:.2f}x")


def _interval_table(db, name: str, n: int, span: int) -> None:
    """n short intervals scrambled across [1, span] (unsorted on lo)."""
    db.create_table(name, [("lo", "abstime"), ("hi", "abstime")])
    db.relation(name).insert_many(
        [{"lo": 1 + (i * 7919) % span, "hi": 1 + (i * 7919) % span + 5}
         for i in range(n)], fire_hooks=False)


def test_report_overlap_join(registry):
    """B5 addendum: endpoint-sweep interval join vs the nested loop.

    At 2k x 2k both engines are measured directly.  At 50k x 50k the
    nested loop would evaluate 2.5e9 predicate calls (hours), so its
    baseline is extrapolated from the measured 2k per-pair cost and the
    row is marked ``baseline_extrapolated``; the sweep is measured for
    real.  Gate: >=3x at both scales.
    """
    from statistics import median

    from conftest import record_benchmark

    from repro.db import vector

    db = Database(calendars=registry)
    n_small = 2_000
    _interval_table(db, "ia", n_small, 15 * n_small)
    _interval_table(db, "ib", n_small, 15 * n_small)
    query = ("retrieve (count()) from a in ia, b in ib "
             "where overlaps(a.lo, a.hi, b.lo, b.hi)")

    db.execute(query)  # warm plan caches
    sweep_times = []
    for _ in range(5):
        t0 = time.perf_counter()
        swept = db.execute(query)
        sweep_times.append(time.perf_counter() - t0)
    previous = vector.set_enabled(False)
    try:
        t0 = time.perf_counter()
        nested = db.execute(query)
        t_nested = time.perf_counter() - t0
    finally:
        vector.set_enabled(previous)
    assert swept.rows == nested.rows
    t_sweep = median(sweep_times)
    speedup_small = t_nested / t_sweep
    record_benchmark("db/overlap_join_2k",
                     samples=sweep_times,
                     rows=n_small,
                     nested_loop_s=t_nested,
                     speedup=speedup_small)

    n_large = 50_000
    _interval_table(db, "ja", n_large, 15 * n_large)
    _interval_table(db, "jb", n_large, 15 * n_large)
    large_query = ("retrieve (count()) from a in ja, b in jb "
                   "where overlaps(a.lo, a.hi, b.lo, b.hi)")
    db.execute(large_query)
    large_times = []
    for _ in range(3):
        t0 = time.perf_counter()
        result = db.execute(large_query)
        large_times.append(time.perf_counter() - t0)
    assert result.rows[0]["count()"] > 0
    t_large = median(large_times)
    per_pair = t_nested / (n_small * n_small)
    baseline_large = per_pair * n_large * n_large
    speedup_large = baseline_large / t_large
    record_benchmark("db/overlap_join_50k",
                     samples=large_times,
                     rows=n_large,
                     baseline_s=baseline_large,
                     baseline_extrapolated=True,
                     speedup=speedup_large)
    print("\n=== B5 addendum: interval-overlap join")
    print(f"   2k x 2k   sweep: {t_sweep * 1e3:8.2f} ms   "
          f"nested loop: {t_nested * 1e3:8.2f} ms  "
          f"({speedup_small:.0f}x)")
    print(f"   50k x 50k sweep: {t_large * 1e3:8.2f} ms   "
          f"nested loop (extrapolated): {baseline_large:8.1f} s  "
          f"({speedup_large:.0f}x)")
    assert speedup_small >= 3.0, (
        f"endpoint sweep fell under the 3x gate at 2k: "
        f"{speedup_small:.2f}x")
    assert speedup_large >= 3.0, (
        f"endpoint sweep fell under the 3x gate at 50k: "
        f"{speedup_large:.2f}x")


def test_report_index_crossover(loaded_db):
    """B5 table: scan vs index probe on the 5k-row trades relation."""
    relation = loaded_db.relation("trades")
    relation.indexes.pop("symbol", None)
    t0 = time.perf_counter()
    for _ in range(5):
        loaded_db.execute(
            'retrieve (t.id) from t in trades where t.symbol = "S7"')
    scan = (time.perf_counter() - t0) / 5 * 1e3
    loaded_db.create_index("trades", "symbol")
    t0 = time.perf_counter()
    for _ in range(5):
        loaded_db.execute(
            'retrieve (t.id) from t in trades where t.symbol = "S7"')
    probe = (time.perf_counter() - t0) / 5 * 1e3
    print("\n=== B5: equality retrieve on 5000 rows")
    print(f"   sequential scan: {scan:8.2f} ms")
    print(f"   index probe:     {probe:8.2f} ms  "
          f"({scan / max(probe, 1e-9):.1f}x faster)")
    assert probe < scan


def test_report_predicate_pushdown(registry):
    """B5 addendum: join cost with and without selective conjuncts.

    The pushdown evaluates per-variable conjuncts before deeper join
    levels; a selective predicate on the outer variable prunes the inner
    scan entirely.
    """
    from statistics import median

    db = Database(calendars=registry)
    db.create_table("outer_r", [("k", "int4")])
    db.create_table("inner_r", [("k", "int4")])
    for i in range(400):
        db.relation("outer_r").insert({"k": i}, fire_hooks=False)
        db.relation("inner_r").insert({"k": i}, fire_hooks=False)

    def timed(query):
        db.execute(query)  # warm parse/plan caches off the clock
        times = []
        for _ in range(5):
            t0 = time.perf_counter()
            result = db.execute(query)
            times.append((time.perf_counter() - t0) * 1e3)
        return median(times), result

    t_selective, selective = timed(
        "retrieve (count()) from a in outer_r, b in inner_r "
        "where a.k = 0 and a.k = b.k")
    t_full, full = timed(
        "retrieve (count()) from a in outer_r, b in inner_r "
        "where a.k = b.k")
    print("\n=== B5 addendum: predicate pushdown on a 400x400 join")
    print(f"   selective outer conjunct: {t_selective:8.2f} ms "
          f"(1 result row)")
    print(f"   full equi-join:           {t_full:8.2f} ms "
          f"(400 result rows)")
    assert selective.rows[0]["count()"] == 1
    assert full.rows[0]["count()"] == 400
    assert t_selective < t_full
