"""The CALENDARS catalog: records, registry and builtin definitions."""

from repro.catalog.builtins import (
    WEEKDAY_NAMES,
    install_standard_calendars,
    install_us_holidays,
    install_weekday_calendars,
    last_weekday_of_month,
    nth_weekday_of_month,
    us_federal_holidays,
)
from repro.catalog.registry import CalendarRegistry
from repro.catalog.table import (
    UNBOUNDED_LIFESPAN,
    CalendarRecord,
    CalendarsTable,
)

__all__ = [
    "CalendarRegistry", "CalendarRecord", "CalendarsTable",
    "UNBOUNDED_LIFESPAN", "WEEKDAY_NAMES",
    "install_standard_calendars", "install_weekday_calendars",
    "install_us_holidays", "us_federal_holidays",
    "nth_weekday_of_month", "last_weekday_of_month",
]
