"""Tests for the query-language extensions: DDL, rules, order by, into.

With these, the paper's entire interface — tables, indexes, calendar
definitions, event rules and temporal rules — is driveable from Postquel
text alone.
"""

import pytest

from repro.db import ExecutionError, QueryError, SchemaError
from repro.rules import RuleManager, SimulatedClock, DBCron


class TestCreateTable:
    def test_create_and_use(self, db):
        db.execute("create table points (x int4, y int4)")
        db.execute("append points (x = 1, y = 2)")
        assert db.execute("retrieve (p.x) from p in points") \
            .column("x") == [1]

    def test_key_clause(self, db):
        db.execute("create table users (id int4, name text) key (id)")
        db.execute('append users (id = 1, name = "a")')
        from repro.db import IntegrityError
        with pytest.raises(IntegrityError):
            db.execute('append users (id = 1, name = "b")')

    def test_valid_time_clause(self, db):
        db.execute("create table obs (t abstime, v float8) valid time t")
        assert db.relation("obs").schema.valid_time_column == "t"

    def test_create_index_statement(self, db):
        db.execute("create table big (k text)")
        db.execute("create index on big (k)")
        assert "k" in db.relation("big").indexes

    def test_drop_table_statement(self, db):
        db.execute("create table temp1 (x int4)")
        db.execute("drop table temp1")
        with pytest.raises(SchemaError):
            db.relation("temp1")


class TestDefineCalendarStatement:
    def test_define_and_query(self, db):
        db.execute('define calendar MIDMONTH as '
                   '"{return([15]/DAYS:during:MONTHS);}" granularity DAYS')
        assert "MIDMONTH" in db.calendars
        day15 = db.system.day_of("Jan 15 1993")
        result = db.execute(
            f'retrieve (member({day15}, "MIDMONTH") as hit)')
        assert result.rows[0]["hit"] is True


class TestDefineRuleStatements:
    def test_event_rule_via_ql(self, db):
        RuleManager(db)
        db.execute("create table students2 (name text, hours int4)")
        db.execute("create table audit2 (msg text)")
        db.execute(
            "define rule watch on append to students2 "
            "where new.hours > 20 "
            'do ( append audit2 (msg = new.name) )')
        db.execute('append students2 (name = "ana", hours = 30)')
        db.execute('append students2 (name = "bo", hours = 10)')
        assert db.execute("retrieve (a.msg) from a in audit2") \
            .column("msg") == ["ana"]

    def test_temporal_rule_via_ql(self, db):
        manager = RuleManager(db)
        clock = SimulatedClock(now=db.system.day_of("Jan 1 1993"))
        cron = DBCron(manager, clock, period=7)
        db.execute("create table log2 (t abstime)")
        db.execute(
            'define rule tick on calendar "[2]/DAYS:during:WEEKS" '
            "do ( append log2 (t = now.t) )")
        # The rule's schedule starts at the daemon clock's "now".
        cron.run_until(db.system.day_of("Feb 1 1993"))
        rows = db.execute("retrieve (l.t) from l in log2").rows
        assert len(rows) == 4  # Tuesdays of January 1993

    def test_multiple_actions(self, db):
        RuleManager(db)
        db.execute("create table src (x int4)")
        db.execute("create table a1 (x int4)")
        db.execute("create table a2 (x int4)")
        db.execute(
            "define rule fanout on append to src do ( "
            "append a1 (x = new.x) append a2 (x = new.x * 2) )")
        db.execute("append src (x = 7)")
        assert db.execute("retrieve (t.x) from t in a1").column("x") == [7]
        assert db.execute("retrieve (t.x) from t in a2").column("x") == [14]

    def test_drop_rule_statement(self, db):
        manager = RuleManager(db)
        db.execute("create table src2 (x int4)")
        db.execute("create table sink (x int4)")
        db.execute("define rule gone on append to src2 "
                   "do ( append sink (x = new.x) )")
        db.execute("drop rule gone")
        db.execute("append src2 (x = 1)")
        assert len(db.relation("sink")) == 0

    def test_rule_without_manager_rejected(self, db):
        assert db.rule_manager is None
        db.execute("create table lonely (x int4)")
        with pytest.raises(ExecutionError):
            db.execute("define rule r on append to lonely "
                       "do ( delete lonely )")


class TestRetrieveModifiers:
    @pytest.fixture()
    def filled(self, db):
        db.execute("create table nums (v int4, tag text)")
        for v, tag in [(3, "b"), (1, "a"), (3, "b"), (2, "a")]:
            db.execute(f'append nums (v = {v}, tag = "{tag}")')
        return db

    def test_order_by(self, filled):
        result = filled.execute(
            "retrieve (n.v) from n in nums order by v")
        assert result.column("v") == [1, 2, 3, 3]

    def test_order_by_desc(self, filled):
        result = filled.execute(
            "retrieve (n.v) from n in nums order by v desc")
        assert result.column("v") == [3, 3, 2, 1]

    def test_order_by_two_keys(self, filled):
        result = filled.execute(
            "retrieve (n.tag, n.v) from n in nums "
            "order by tag, v desc")
        assert [(r["tag"], r["v"]) for r in result.rows] == [
            ("a", 2), ("a", 1), ("b", 3), ("b", 3)]

    def test_unique(self, filled):
        result = filled.execute(
            "retrieve unique (n.v, n.tag) from n in nums order by v")
        assert [(r["v"], r["tag"]) for r in result.rows] == [
            (1, "a"), (2, "a"), (3, "b")]

    def test_into_creates_relation(self, filled):
        filled.execute(
            "retrieve into highs (n.v) from n in nums where n.v > 1")
        assert len(filled.relation("highs")) == 3

    def test_into_existing_relation_appends(self, filled):
        filled.execute("create table sink2 (v int4)")
        filled.execute("retrieve into sink2 (n.v) from n in nums")
        filled.execute("retrieve into sink2 (n.v) from n in nums")
        assert len(filled.relation("sink2")) == 8

    def test_order_by_unknown_column(self, filled):
        with pytest.raises(ExecutionError):
            filled.execute(
                "retrieve (n.v) from n in nums order by missing")


class TestTemporalConditionInEventRule:
    """Section 6(b) direction: temporal conditions inside rule bodies —
    already expressible because conditions are full Postquel expressions
    with calendar predicates."""

    def test_condition_with_within(self, db):
        manager = RuleManager(db)
        db.execute("create table deliveries (day abstime, item text)")
        db.execute("create table weekend_flags (item text)")
        manager.define_event_rule(
            "flag_weekend", "append", "deliveries",
            condition='new.day within "Weekends"',
            actions=['append weekend_flags (item = new.item)'])
        saturday = db.system.day_of("Jan 2 1993")
        monday = db.system.day_of("Jan 4 1993")
        db.insert("deliveries", day=saturday, item="anvil")
        db.insert("deliveries", day=monday, item="feather")
        assert db.execute(
            "retrieve (w.item) from w in weekend_flags") \
            .column("item") == ["anvil"]


class TestParseErrors:
    def test_bad_create(self, db):
        with pytest.raises(QueryError):
            db.execute("create view v (x int4)")

    def test_bad_define(self, db):
        with pytest.raises(QueryError):
            db.execute("define operator plus")

    def test_rule_missing_do(self, db):
        with pytest.raises(QueryError):
            db.execute("define rule r on append to t "
                       "( append t (x = 1) )")


class TestDefineCalendarValues:
    def test_values_variant(self, db):
        db.execute("define calendar HOLS2 values ((31,31),(90,90)) "
                   "granularity DAYS")
        record = db.calendars.record("HOLS2")
        assert record.values.to_pairs() == ((31, 31), (90, 90))

    def test_negative_endpoints(self, db):
        db.execute("define calendar SPAN0 values ((-4,3))")
        assert db.calendars.record("SPAN0").values.to_pairs() == ((-4, 3),)

    def test_usable_in_queries(self, db):
        db.execute("define calendar HOLS3 values ((31,31))")
        result = db.execute('retrieve (member(31, "HOLS3") as hit)')
        assert result.rows[0]["hit"] is True

    def test_missing_as_or_values(self, db):
        with pytest.raises(QueryError):
            db.execute("define calendar BAD granularity DAYS")
