"""Database events observed by the rule system."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Event"]


@dataclass(frozen=True)
class Event:
    """One storage-level event.

    ``kind`` is one of ``append`` / ``delete`` / ``replace`` / ``retrieve``.
    ``current`` is the tuple accessed (retrieve/replace/delete) and ``new``
    the tuple being appended or the post-image of a replace — matching the
    POSTGRES rule system's CURRENT and NEW tuple variables (section 4).
    """

    kind: str
    relation: str
    current: dict | None = None
    new: dict | None = None
