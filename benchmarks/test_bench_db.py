"""B5: the Postquel substrate — scans, index probes, temporal predicates,
event-rule overhead.
"""

from __future__ import annotations

import time

import pytest

from repro.db import Database
from repro.rules import RuleManager

N_ROWS = 5_000


@pytest.fixture(scope="module")
def loaded_db(registry):
    db = Database(calendars=registry)
    db.create_table("trades",
                    [("id", "int4"), ("symbol", "text"),
                     ("day", "abstime"), ("qty", "int4")],
                    valid_time_column="day")
    base = db.system.day_of("Jan 1 1993")
    relation = db.relation("trades")
    for i in range(N_ROWS):
        relation.insert({"id": i, "symbol": f"S{i % 50}",
                         "day": base + (i % 365), "qty": i % 97},
                        fire_hooks=False)
    return db


class TestQueryCosts:
    def test_full_scan_filter(self, benchmark, loaded_db):
        result = benchmark(lambda: loaded_db.execute(
            "retrieve (t.id) from t in trades where t.qty > 90"))
        assert len(result) > 0

    def test_equality_without_index(self, benchmark, loaded_db):
        result = benchmark(lambda: loaded_db.execute(
            'retrieve (t.id) from t in trades where t.symbol = "S7"'))
        assert len(result) == N_ROWS // 50

    def test_equality_with_index(self, benchmark, loaded_db):
        if "symbol" not in loaded_db.relation("trades").indexes:
            loaded_db.create_index("trades", "symbol")
        result = benchmark(lambda: loaded_db.execute(
            'retrieve (t.id) from t in trades where t.symbol = "S7"'))
        assert len(result) == N_ROWS // 50

    def test_aggregate(self, benchmark, loaded_db):
        result = benchmark(lambda: loaded_db.execute(
            "retrieve (count(), sum(t.qty) as total) from t in trades"))
        assert result.rows[0]["count()"] == N_ROWS

    def test_within_calendar_predicate(self, benchmark, loaded_db):
        result = benchmark(lambda: loaded_db.execute(
            'retrieve (count()) from t in trades '
            'where t.day within "Mondays"'))
        assert result.rows[0]["count()"] > 0

    def test_on_calendar_clause(self, benchmark, loaded_db):
        result = benchmark(lambda: loaded_db.execute(
            "retrieve (count()) from t in trades on Mondays"))
        assert result.rows[0]["count()"] > 0


class TestRuleOverhead:
    def _insert_many(self, db, n=500):
        relation = db.relation("events_t")
        for i in range(n):
            relation.insert({"x": i})

    def test_append_without_rules(self, benchmark, registry):
        db = Database(calendars=registry)
        db.create_table("events_t", [("x", "int4")])

        def run():
            db.relation("events_t").truncate()
            self._insert_many(db)

        benchmark(run)

    def test_append_with_matching_rule(self, benchmark, registry):
        db = Database(calendars=registry)
        manager = RuleManager(db)
        db.create_table("events_t", [("x", "int4")])
        counter = []
        manager.define_event_rule("count_all", "append", "events_t",
                                  callback=lambda d, e: counter.append(1))

        def run():
            db.relation("events_t").truncate()
            self._insert_many(db)

        benchmark(run)
        assert counter

    def test_append_with_nonmatching_condition(self, benchmark, registry):
        db = Database(calendars=registry)
        manager = RuleManager(db)
        db.create_table("events_t", [("x", "int4")])
        manager.define_event_rule("never", "append", "events_t",
                                  condition="new.x < 0",
                                  callback=lambda d, e: None)

        def run():
            db.relation("events_t").truncate()
            self._insert_many(db)

        benchmark(run)


def test_report_within_periodic_speedup(loaded_db):
    """B5 addendum: ``within`` membership, compiled vs materialised.

    With periodic compilation on (the default), ``t.day within "Mondays"``
    probes the compiled :class:`~repro.core.periodic.PeriodicSet` —
    O(log offsets) per row — instead of materialising the calendar over
    the default window and locating the containing interval.  The
    materialised path's probe is itself an O(log n) bisect over the
    calendar's columnar endpoint lanes (it was a linear interval scan
    before the columnar core landed, and the compiled probe was >=5x
    faster then), so per-row membership is now cheap either way and the
    compiled backend's remaining wins are the generation and memory it
    avoids entirely.  The recorded row asserts compiled stays at least
    on par with materialised on the 5k-row trades relation.
    """
    from statistics import median

    from conftest import record_benchmark

    query = ('retrieve (count()) from t in trades '
             'where t.day within "Mondays"')
    registry = loaded_db.calendars

    def timed(loops=5):
        times = []
        for _ in range(loops):
            t0 = time.perf_counter()
            result = loaded_db.execute(query)
            times.append(time.perf_counter() - t0)
        return times, result

    loaded_db.execute(query)  # warm the compiled probe and plan caches
    compiled_times, compiled = timed()
    registry.periodic = False
    try:
        loaded_db.execute(query)  # warm the materialised path
        materialised_times, materialised = timed()
    finally:
        registry.periodic = True
    assert compiled.rows == materialised.rows
    t_compiled = median(compiled_times)
    t_materialised = median(materialised_times)
    speedup = t_materialised / t_compiled
    record_benchmark("db/within_periodic_speedup",
                     samples=compiled_times,
                     materialised_s=t_materialised,
                     speedup=speedup)
    print("\n=== B5 addendum: within-predicate membership on 5000 rows")
    print(f"   compiled probe:  {t_compiled * 1e3:8.2f} ms")
    print(f"   materialised:    {t_materialised * 1e3:8.2f} ms  "
          f"({speedup:.1f}x slower)")
    assert speedup >= 0.8, (
        f"compiled within-probe fell behind the materialised bisect: "
        f"{speedup:.2f}x")


def test_report_index_crossover(loaded_db):
    """B5 table: scan vs index probe on the 5k-row trades relation."""
    relation = loaded_db.relation("trades")
    relation.indexes.pop("symbol", None)
    t0 = time.perf_counter()
    for _ in range(5):
        loaded_db.execute(
            'retrieve (t.id) from t in trades where t.symbol = "S7"')
    scan = (time.perf_counter() - t0) / 5 * 1e3
    loaded_db.create_index("trades", "symbol")
    t0 = time.perf_counter()
    for _ in range(5):
        loaded_db.execute(
            'retrieve (t.id) from t in trades where t.symbol = "S7"')
    probe = (time.perf_counter() - t0) / 5 * 1e3
    print("\n=== B5: equality retrieve on 5000 rows")
    print(f"   sequential scan: {scan:8.2f} ms")
    print(f"   index probe:     {probe:8.2f} ms  "
          f"({scan / max(probe, 1e-9):.1f}x faster)")
    assert probe < scan


def test_report_predicate_pushdown(registry):
    """B5 addendum: join cost with and without selective conjuncts.

    The pushdown evaluates per-variable conjuncts before deeper join
    levels; a selective predicate on the outer variable prunes the inner
    scan entirely.
    """
    db = Database(calendars=registry)
    db.create_table("outer_r", [("k", "int4")])
    db.create_table("inner_r", [("k", "int4")])
    for i in range(400):
        db.relation("outer_r").insert({"k": i}, fire_hooks=False)
        db.relation("inner_r").insert({"k": i}, fire_hooks=False)
    t0 = time.perf_counter()
    selective = db.execute(
        "retrieve (count()) from a in outer_r, b in inner_r "
        "where a.k = 0 and a.k = b.k")
    t_selective = (time.perf_counter() - t0) * 1e3
    t0 = time.perf_counter()
    full = db.execute(
        "retrieve (count()) from a in outer_r, b in inner_r "
        "where a.k = b.k")
    t_full = (time.perf_counter() - t0) * 1e3
    print("\n=== B5 addendum: predicate pushdown on a 400x400 join")
    print(f"   selective outer conjunct: {t_selective:8.2f} ms "
          f"(1 result row)")
    print(f"   full equi-join:           {t_full:8.2f} ms "
          f"(400 result rows)")
    assert selective.rows[0]["count()"] == 1
    assert full.rows[0]["count()"] == 400
    assert t_selective < t_full
