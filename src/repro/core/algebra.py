"""The calendar algebra: ``foreach`` (dicing), selection (slicing), caloperate.

This module implements the operator set of section 3.1:

* :func:`foreach` — the strict (``:Op:``) and relaxed (``.Op.``) *foreach*
  operator.  With an interval as right operand the result is order-1; with a
  calendar as right operand the result is order-2 (one sub-calendar per
  right-hand element) for *grouping* listops, or stays order-1 for
  *filtering* listops such as ``intersects`` (see
  :class:`repro.core.interval.Listop`).
* :func:`select` — positional selection ``[x]/C`` with integers, ``n``
  (last), negatives (from the end), lists and ranges.  On calendars of order
  greater than one a *singleton* predicate reduces the order by one, exactly
  as in the paper's ``[3]/WEEKS:overlaps:Year-1993`` example.
* :func:`label_select` — the bare selection ``1993/YEARS`` by element label.
* :func:`caloperate` — derives a calendar by circularly grouping consecutive
  intervals of an existing calendar (``caloperate(YEARS, *; 7) = WEEKS``).
"""

from __future__ import annotations

import bisect

from dataclasses import dataclass
from typing import Sequence

from repro.core import columnar
from repro.core.calendar import Calendar, Label
from repro.core.columnar import IntervalColumns
from repro.core.errors import CalendarError, OperatorError, SelectionError
from repro.core.interval import Interval, Listop, get_listop

#: The canonical predicate of every builtin listop, keyed by surface name.
#: The columnar sweep kernels encode these relations as integer lane
#: comparisons, so they may only run when the registered listop still
#: *is* the builtin (``register_listop(..., replace=True)`` can swap a
#: name's predicate, which must disable the sweep for that name).
_BUILTIN_PREDICATES = {
    "overlaps": Interval.overlaps,
    "during": Interval.during,
    "contains": Interval.contains,
    "meets": Interval.meets,
    "<": Interval.before,
    "<=": Interval.starts_before,
    "intersects": Interval.overlaps,
    "starts": Interval.starts,
    "finishes": Interval.finishes,
    "equals": Interval.equals,
}

#: Inverse listop per name: ``member op ref`` iff ``ref inverse member``
#: (used to window the reference side of filtering listops).
_INVERSE = {"during": "contains", "contains": "during",
            "overlaps": "overlaps", "intersects": "intersects",
            "equals": "equals"}


def _sweepable(op: Listop) -> bool:
    """True when ``op`` is a builtin whose sweep kernel is valid."""
    return _BUILTIN_PREDICATES.get(op.name) is op.predicate

__all__ = [
    "foreach",
    "select",
    "label_select",
    "caloperate",
    "SelectionPredicate",
    "LAST",
]


# ---------------------------------------------------------------------------
# foreach
# ---------------------------------------------------------------------------

class _SortedView:
    """Candidate-range index over an order-1 calendar's elements.

    When the elements are sorted by ``lo`` (and, usually, by ``hi`` too —
    true for every generated calendar), the elements that can satisfy a
    known listop against a reference interval form a contiguous slice that
    binary search finds in O(log n).  Unsorted calendars and custom
    listops fall back to a full scan.
    """

    def __init__(self, cal: Calendar) -> None:
        self._cal = cal
        cols = cal.columns
        if cols is not None:
            # Column-backed calendar: the view indexes the lanes directly
            # and defers Interval materialisation until someone actually
            # touches ``elements``.
            self._elements = None
            self.los = cols.los
            self.his = cols.his
            self.lo_sorted = cols.lo_sorted
            self.hi_sorted = cols.hi_sorted
            return
        elements = cal.elements
        self._elements = elements
        self.los = [iv.lo for iv in elements]
        self.his = [iv.hi for iv in elements]
        self.lo_sorted = all(self.los[i] <= self.los[i + 1]
                             for i in range(len(self.los) - 1))
        self.hi_sorted = self.lo_sorted and all(
            self.his[i] <= self.his[i + 1]
            for i in range(len(self.his) - 1))

    @property
    def elements(self) -> tuple:
        els = self._elements
        if els is None:
            els = self._elements = self._cal.elements
        return els

    @classmethod
    def of(cls, cal: Calendar) -> "_SortedView":
        """The memoised view of an order-1 calendar.

        Calendars are immutable, so the lo/hi arrays and sortedness flags
        are computed once per instance and stashed on it; nested foreach
        loops and repeated selections then skip the O(n) rebuild.

        Safe under concurrent access: ``dict.setdefault`` is atomic in
        CPython, so two threads racing to attach the memo agree on one
        winning view (the loser's duplicate is discarded) instead of the
        get-then-set pattern publishing different views to different
        callers.
        """
        view = cal.__dict__.get("_sorted_view")
        if view is None:
            view = cal.__dict__.setdefault("_sorted_view", cls(cal))
        return view

    def candidate_range(self, op_name: str, ref: Interval
                        ) -> tuple[int, int]:
        n = len(self.los)
        if not self.lo_sorted:
            return 0, n
        if op_name == "during":
            return (bisect.bisect_left(self.los, ref.lo),
                    bisect.bisect_right(self.los, ref.hi))
        if op_name in ("overlaps", "intersects"):
            start = (bisect.bisect_left(self.his, ref.lo)
                     if self.hi_sorted else 0)
            return start, bisect.bisect_right(self.los, ref.hi)
        if op_name == "meets":
            if self.hi_sorted:
                return (bisect.bisect_left(self.his, ref.lo),
                        bisect.bisect_right(self.his, ref.lo))
            return 0, n
        if op_name == "<":
            if self.hi_sorted:
                return 0, bisect.bisect_right(self.his, ref.lo)
            return 0, n
        if op_name in ("<=", "contains", "starts"):
            return 0, bisect.bisect_right(self.los, ref.lo)
        if op_name in ("finishes", "equals"):
            if self.hi_sorted:
                return (bisect.bisect_left(self.his, ref.hi),
                        bisect.bisect_right(self.his, ref.hi))
            return 0, n
        return 0, n


def _apply_over(view: _SortedView, op: Listop, ref: Interval,
                strict: bool, out: list[Interval]) -> None:
    start, end = view.candidate_range(op.name, ref)
    for i in range(start, end):
        iv = view.elements[i]
        if not op(iv, ref):
            continue
        if strict and op.clips:
            clipped = iv.intersect(ref)
            # The paper excludes the empty interval (its epsilon) from
            # strict results; operators relating disjoint intervals
            # (e.g. "<") declare clips=False and keep the element whole.
            if clipped is None:
                continue
            out.append(clipped)
        else:
            out.append(iv)


def _foreach_interval(op: Listop, cal: Calendar, ref: Interval,
                      strict: bool,
                      view: "_SortedView | None" = None) -> Calendar:
    """Apply ``op`` between every element of order-1 ``cal`` and ``ref``."""
    cols = cal.columns
    if cols is not None and _sweepable(op):
        out = columnar.sweep_one(cols, op.name, ref.lo, ref.hi,
                                 strict and op.clips)
        return Calendar._from_columns(out, cal.granularity)
    view = view or _SortedView.of(cal)
    result: list[Interval] = []
    _apply_over(view, op, ref, strict, result)
    return Calendar.from_intervals(result, cal.granularity)


def _foreach_grouping_columnar(op: Listop, cal: Calendar,
                               ref: Calendar) -> "tuple | None":
    """Lane layout for a columnar grouped foreach, or ``None`` when the
    operands force the object path."""
    cols = cal.columns
    if cols is None or not _sweepable(op):
        return None
    refs = ref._lanes()
    if refs is None:
        return None
    return cols, refs


def _foreach_filtering(op: Listop, cal: Calendar, ref: Calendar,
                       strict: bool) -> Calendar:
    """Filtering listops treat ``ref`` as a set; the result stays order-1."""
    cols = cal.columns
    if cols is not None and _sweepable(op):
        refs = ref._lanes()
        if refs is not None:
            return _filtering_columnar(op, cols, refs, strict,
                                       cal.granularity)
    result: list[Interval] = []
    ref_view = _SortedView.of(ref)
    inverse = _INVERSE.get(op.name)
    for iv in cal.elements:
        if inverse is not None:
            start, end = ref_view.candidate_range(inverse, iv)
            candidates = ref_view.elements[start:end]
        else:
            candidates = ref.elements
        matches = [r for r in candidates if op(iv, r)]
        if not matches:
            continue
        if strict and op.clips:
            for r in matches:
                clipped = iv.intersect(r)
                if clipped is not None:
                    result.append(clipped)
        else:
            result.append(iv)
    return Calendar.from_intervals(result, cal.granularity)


def _filtering_columnar(op: Listop, mem: IntervalColumns,
                        refs: IntervalColumns, strict: bool,
                        granularity) -> Calendar:
    """Pure-integer filtering foreach: keep (or clip) members relating to
    any reference, windowing the reference lanes by the inverse listop."""
    predicate = columnar.INT_PREDICATES[op.name]
    inverse = _INVERSE.get(op.name)
    clip = strict and op.clips
    rlos, rhis = refs.los, refs.his
    nrefs = len(rlos)
    mlos, mhis = mem.los, mem.his
    out_los: list[int] = []
    out_his: list[int] = []
    for i in range(len(mlos)):
        mlo = mlos[i]
        mhi = mhis[i]
        if inverse is not None:
            start, end, exact = columnar.group_range(refs, inverse, mlo, mhi)
        else:
            start, end, exact = 0, nrefs, False
        if not clip:
            if exact:
                matched = end > start
            else:
                matched = any(predicate(mlo, mhi, rlos[k], rhis[k])
                              for k in range(start, end))
            if matched:
                out_los.append(mlo)
                out_his.append(mhi)
            continue
        for k in range(start, end):
            rlo = rlos[k]
            rhi = rhis[k]
            if not exact and not predicate(mlo, mhi, rlo, rhi):
                continue
            plo = mlo if mlo > rlo else rlo
            phi = mhi if mhi < rhi else rhi
            if plo <= phi:
                out_los.append(plo)
                out_his.append(phi)
    out = IntervalColumns.from_lists(out_los, out_his)
    return Calendar._from_columns(out, granularity)


def foreach(op: "Listop | str", cal: Calendar,
            ref: "Calendar | Interval", strict: bool = True) -> Calendar:
    """The paper's *foreach* operator ``{C :Op: I}`` / ``{C .Op. I}``.

    ``cal`` must be order-1 (apply :meth:`Calendar.flatten` first if
    needed).  ``ref`` may be an :class:`Interval`, an order-1 calendar or a
    deeper calendar (handled by recursing on the right operand, adding one
    level of structure per order).
    """
    if isinstance(op, str):
        op = get_listop(op)
    if cal.order != 1:
        raise OperatorError(
            f"foreach expects an order-1 left operand, got order {cal.order}")
    if isinstance(ref, Interval):
        return _foreach_interval(op, cal, ref, strict)
    if not isinstance(ref, Calendar):
        raise OperatorError(f"foreach right operand must be a calendar or "
                            f"interval, got {ref!r}")
    if ref.order == 1:
        if op.shape == "filtering":
            return _foreach_filtering(op, cal, ref, strict)
        subs: list[Calendar] = []
        labels: list[Label] = []
        lanes = _foreach_grouping_columnar(op, cal, ref)
        if lanes is not None:
            cols, refs = lanes
            clip = strict and op.clips
            gran = cal.granularity
            for i, group in columnar.iter_groups(cols, refs, op.name, clip):
                if not len(group):
                    continue
                subs.append(Calendar._from_columns(group, gran))
                labels.append(ref.label_of(i))
        else:
            view = _SortedView.of(cal)
            for i, r in enumerate(ref.elements):
                sub = _foreach_interval(op, cal, r, strict, view)
                if sub.is_empty():
                    continue
                subs.append(sub)
                labels.append(ref.label_of(i))
        out = Calendar.from_calendars(subs, cal.granularity)
        if ref.labels is not None:
            out = out.with_labels(labels)
        return out
    # Deeper right operand: recurse per sub-calendar.
    subs = [foreach(op, cal, sub, strict) for sub in ref.elements]
    subs = [s for s in subs if not s.is_empty()]
    return Calendar.from_calendars(subs, cal.granularity)


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------

class _Last:
    """Sentinel for the paper's ``n`` (select the last interval)."""

    def __repr__(self) -> str:
        return "n"


LAST = _Last()


@dataclass(frozen=True)
class SelectionPredicate:
    """The bracketed part of ``[x]/C``.

    ``items`` holds integers (1-based; negatives select from the end), the
    :data:`LAST` sentinel, and ``(start, end)`` range tuples (inclusive,
    1-based, e.g. ``[2-4]``).
    """

    items: tuple

    def __post_init__(self) -> None:
        if not self.items:
            raise SelectionError("empty selection predicate")
        for item in self.items:
            if item is LAST:
                continue
            if isinstance(item, tuple):
                start, end = item
                if start == 0 or end == 0 or start > end:
                    raise SelectionError(f"bad selection range {item!r}")
                continue
            if isinstance(item, int) and not isinstance(item, bool):
                if item == 0:
                    raise SelectionError("selection index 0 is not allowed "
                                         "(indices are 1-based)")
                continue
            raise SelectionError(f"bad selection item {item!r}")

    @classmethod
    def of(cls, *items) -> "SelectionPredicate":
        return cls(tuple(items))

    def is_singleton(self) -> bool:
        """True when the predicate picks at most one element."""
        return len(self.items) == 1 and not isinstance(self.items[0], tuple)

    def positions(self, length: int) -> list[int]:
        """Resolve to 0-based positions within a list of ``length`` elements.

        Out-of-range indices are skipped (a month with only two full weeks
        contributes nothing to "the third week of every month").
        """
        chosen: list[int] = []
        for item in self.items:
            if item is LAST:
                if length:
                    chosen.append(length - 1)
            elif isinstance(item, tuple):
                start, end = item
                for k in range(start, end + 1):
                    pos = self._resolve(k, length)
                    if pos is not None:
                        chosen.append(pos)
            else:
                pos = self._resolve(item, length)
                if pos is not None:
                    chosen.append(pos)
        # keep calendar order, drop duplicates
        return sorted(set(chosen))

    @staticmethod
    def _resolve(index: int, length: int) -> int | None:
        if index > 0:
            pos = index - 1
        else:
            pos = length + index
        if 0 <= pos < length:
            return pos
        return None

    def __str__(self) -> str:
        parts = []
        for item in self.items:
            if item is LAST:
                parts.append("n")
            elif isinstance(item, tuple):
                parts.append(f"{item[0]}-{item[1]}")
            else:
                parts.append(str(item))
        return "[" + ";".join(parts) + "]"


def _select_order1(cal: Calendar, pred: SelectionPredicate) -> Calendar:
    positions = pred.positions(len(cal))
    labels = None
    if cal.labels is not None:
        labels = tuple(cal.labels[p] for p in positions)
    cols = cal.columns
    if cols is not None:
        # Index straight into the columns: a contiguous selection is a
        # zero-copy slice, anything else gathers into fresh buffers.
        if positions and positions[-1] - positions[0] + 1 == len(positions):
            out = cols.slice(positions[0], positions[-1] + 1)
        else:
            out = cols.take(positions)
        return Calendar._from_columns(out, cal.granularity, labels)
    els = [cal.elements[p] for p in positions]
    return Calendar.from_intervals(els, cal.granularity, labels)


def select(cal: Calendar, pred: SelectionPredicate) -> Calendar:
    """Positional selection ``[x]/C``.

    On an order-1 calendar the predicate selects elements positionally.  On
    an order-k calendar the predicate is applied to every order-(k-1)
    component; a singleton predicate reduces the order by one (the paper's
    "third week of every month" example yields a flat calendar), while a
    multi-element predicate preserves the nesting.
    """
    if cal.order == 1:
        return _select_order1(cal, pred)
    picked = [select(sub, pred) for sub in cal.elements]
    if pred.is_singleton():
        if cal.order == 2:
            # p[0] materialises a single Interval (never the full tuple).
            intervals = [p[0] for p in picked if len(p)]
            return Calendar.from_intervals(intervals, cal.granularity)
        subs = [p for p in picked if not p.is_empty()]
        return Calendar.from_calendars(subs, cal.granularity)
    subs = [p for p in picked if not p.is_empty()]
    return Calendar.from_calendars(subs, cal.granularity)


def label_select(cal: Calendar, label: Label) -> Calendar:
    """Bare selection by label, e.g. ``1993/YEARS``.

    The result is an order-1 calendar holding the labelled interval (empty
    when the label is absent).
    """
    if cal.order != 1:
        raise SelectionError("label selection is defined on order-1 calendars")
    if cal.labels is None:
        raise SelectionError(
            "calendar carries no labels; use a bracketed positional selection")
    idx = cal.find_label(label)
    if idx is None:
        return Calendar.from_intervals([], cal.granularity)
    return Calendar.from_intervals([cal.elements[idx]], cal.granularity,
                                   [label])


# ---------------------------------------------------------------------------
# caloperate
# ---------------------------------------------------------------------------

def caloperate(cal: Calendar, counts: Sequence[int],
               end: int | None = None) -> Calendar:
    """Derive a calendar by grouping consecutive intervals of ``cal``.

    ``caloperate(C, (x1, …, xn))`` unions the first ``x1`` intervals of
    ``C`` into the first result interval, the next ``x2`` into the second,
    and so on, treating the count list as circular (section 3.2).  ``end``
    bounds the result (``*`` in the paper's syntax means "no bound"); a
    trailing partial group is kept, clipped to ``end`` when given.
    """
    if cal.order != 1:
        raise CalendarError("caloperate is defined on order-1 calendars")
    if not counts:
        raise CalendarError("caloperate needs at least one group size")
    for c in counts:
        if not isinstance(c, int) or isinstance(c, bool) or c <= 0:
            raise CalendarError(f"group sizes must be positive ints, got {c!r}")
    n = len(cal)
    cols = cal.columns
    if cols is not None:
        # Hull extraction straight from the lanes; sorted lanes reduce
        # min/max over the chunk to its boundary entries.
        los, his = cols.los, cols.his
        lo_sorted = cols.lo_sorted
        hi_sorted = cols.hi_sorted
        out_los: list[int] = []
        out_his: list[int] = []
        i = 0
        group = 0
        while i < n:
            size = counts[group % len(counts)]
            j = i + size
            if j > n:
                j = n
            hlo = los[i] if lo_sorted else min(los[i:j])
            hhi = his[j - 1] if hi_sorted else max(his[i:j])
            if end is not None:
                if hlo > end:
                    break
                if hhi > end:
                    clip = Interval(hlo, end)
                    out_los.append(clip.lo)
                    out_his.append(clip.hi)
                    break
            out_los.append(hlo)
            out_his.append(hhi)
            i = j
            group += 1
        out = IntervalColumns.from_lists(out_los, out_his)
        return Calendar._from_columns(out, cal.granularity)
    result: list[Interval] = []
    i = 0
    group = 0
    while i < n:
        size = counts[group % len(counts)]
        chunk = cal.elements[i:i + size]
        hull = Interval(min(iv.lo for iv in chunk),
                        max(iv.hi for iv in chunk))
        if end is not None:
            if hull.lo > end:
                break
            if hull.hi > end:
                result.append(Interval(hull.lo, end))
                break
        result.append(hull)
        i += size
        group += 1
    return Calendar.from_intervals(result, cal.granularity)
