"""B3 / E9: DBCRON scalability — rule count and probe period sweeps.

The Figure 4 pipeline end to end: declare N temporal rules, run the
daemon over a simulated year, and measure firing throughput.  The probe
period T trades probe frequency against main-memory schedule size without
changing *what* fires (asserted).
"""

from __future__ import annotations

import time

import pytest

from repro.db import Database
from repro.rules import DBCron, RuleManager, SimulatedClock

WEEKDAY_EXPRS = [f"[{k}]/DAYS:during:WEEKS" for k in range(1, 8)]


def build(registry, n_rules, period):
    db = Database(calendars=registry)
    manager = RuleManager(db)
    clock = SimulatedClock(now=db.system.day_of("Jan 1 1993"))
    cron = DBCron(manager, clock, period=period)
    fired = []
    for i in range(n_rules):
        manager.define_temporal_rule(
            f"rule{i}", WEEKDAY_EXPRS[i % len(WEEKDAY_EXPRS)],
            callback=lambda d, t: fired.append(t), after=clock.now)
    return db, cron, fired


def run_one_quarter(registry, n_rules, period):
    db, cron, fired = build(registry, n_rules, period)
    cron.run_until(db.system.day_of("Apr 1 1993"))
    return len(fired), cron.stats


@pytest.mark.parametrize("n_rules", [1, 10, 50])
def test_rule_count_sweep(benchmark, registry, n_rules):
    fires, _ = benchmark(lambda: run_one_quarter(registry, n_rules, 7))
    # ~90 days/7 per weekday rule => ~12-13 fires per rule.
    assert fires >= n_rules * 11


@pytest.mark.parametrize("period", [1, 7, 30])
def test_probe_period_sweep(benchmark, registry, period):
    fires, _ = benchmark(lambda: run_one_quarter(registry, 10, period))
    assert fires >= 110


def test_report_dbcron_scaling(registry):
    """The B3 table: throughput vs rule count and probe period."""
    print("\n=== B3: DBCRON over Q1-1993 (simulated)")
    print(f"{'rules':>6} | {'T':>3} | {'fires':>6} | {'probes':>6} | "
          f"{'max heap':>8} | {'ms':>8} | fires/s")
    for n_rules in (1, 10, 50, 200):
        for period in (1, 7, 30):
            t0 = time.perf_counter()
            fires, stats = run_one_quarter(registry, n_rules, period)
            elapsed = time.perf_counter() - t0
            print(f"{n_rules:>6} | {period:>3} | {fires:>6} | "
                  f"{stats.probes:>6} | {stats.max_heap_size:>8} | "
                  f"{elapsed * 1e3:>8.1f} | {fires / elapsed:>9.0f}")
    # Same work fires regardless of T (already asserted in unit tests);
    # here assert scale: 200 rules over a quarter must stay interactive.
    t0 = time.perf_counter()
    fires, _ = run_one_quarter(registry, 200, 7)
    assert time.perf_counter() - t0 < 30.0
    assert fires >= 200 * 11


def test_report_rule_time_catalog(registry):
    """E9: RULE-INFO / RULE-TIME contents after a run (Figure 4 state)."""
    db, cron, _ = build(registry, 3, 7)
    cron.run_until(db.system.day_of("Feb 1 1993"))
    info = db.execute(
        "retrieve (r.rulename, r.expression) from r in rule_info")
    times = db.execute(
        "retrieve (r.rulename, r.next_fire) from r in rule_time")
    print("\n=== E9: rule catalog after one month of DBCRON")
    print(info.to_table())
    print(times.to_table())
    assert len(info.rows) == 3
    assert all(row["next_fire"] > db.system.day_of("Jan 25 1993")
               for row in times.rows)
