"""The extensible type and operator system.

This is the substrate feature the paper leans on: POSTGRES lets users
*declare new abstract data types and operators over them*, and the calendar
system is implemented as exactly such declarations.  :class:`TypeRegistry`
holds data types (including the ``calendar`` ADT), and
:class:`OperatorRegistry` / :class:`FunctionRegistry` hold operators and
functions that the query language resolves by name and operand type.

Built-in types: ``int4``, ``float8``, ``text``, ``bool``, ``date`` (a
:class:`~repro.core.chrono.CivilDate`), ``abstime`` (an axis day tick) and
``calendar`` (an order-n :class:`~repro.core.calendar.Calendar`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.calendar import Calendar
from repro.core.chrono import CivilDate
from repro.db.errors import DataTypeError

__all__ = ["DataType", "TypeRegistry", "OperatorRegistry",
           "FunctionRegistry", "ANY"]

#: Wildcard operand type for operator/function registration.
ANY = "any"


@dataclass(frozen=True)
class DataType:
    """A named data type with a Python-level validity check."""

    name: str
    check: Callable[[object], bool]
    description: str = ""

    def validate(self, value: object) -> object:
        """Return ``value`` if it conforms (None always passes)."""
        if value is None:
            return None
        if not self.check(value):
            raise DataTypeError(
                f"value {value!r} is not a valid {self.name}")
        return value


def _is_int(v: object) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def _is_float(v: object) -> bool:
    return (isinstance(v, float)
            or (isinstance(v, int) and not isinstance(v, bool)))


class TypeRegistry:
    """Data types known to one database."""

    def __init__(self) -> None:
        self._types: dict[str, DataType] = {}
        for dtype in (
            DataType("int4", _is_int, "32-bit integer"),
            DataType("float8", _is_float, "double precision"),
            DataType("text", lambda v: isinstance(v, str), "string"),
            DataType("bool", lambda v: isinstance(v, bool), "boolean"),
            DataType("date", lambda v: isinstance(v, CivilDate),
                     "civil date"),
            DataType("abstime", _is_int,
                     "axis day tick (integer, no day 0)"),
            DataType("calendar", lambda v: isinstance(v, Calendar),
                     "order-n collection of intervals (the calendar ADT)"),
        ):
            self._types[dtype.name] = dtype

    def define(self, name: str, check: Callable[[object], bool],
               description: str = "", replace: bool = False) -> DataType:
        """Declare a new abstract data type (the POSTGRES extensibility hook)."""
        key = name.lower()
        if key in self._types and not replace:
            raise DataTypeError(f"type {name!r} is already defined")
        dtype = DataType(key, check, description)
        self._types[key] = dtype
        return dtype

    def get(self, name: str) -> DataType:
        """The type named ``name`` (raises DataTypeError if unknown)."""
        try:
            return self._types[name.lower()]
        except KeyError:
            raise DataTypeError(f"unknown type {name!r}") from None

    def names(self) -> list[str]:
        """Sorted names of all known types."""
        return sorted(self._types)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._types


@dataclass(frozen=True)
class _OpKey:
    name: str
    left: str
    right: str


class OperatorRegistry:
    """Binary operators resolved by (name, left type, right type).

    Resolution tries the exact signature, then wildcard variants
    (``ANY`` on either or both sides).
    """

    def __init__(self) -> None:
        self._ops: dict[_OpKey, Callable] = {}

    def register(self, name: str, left: str, right: str,
                 func: Callable[[object, object], object],
                 replace: bool = False) -> None:
        """Declare an operator implementation for a type signature."""
        key = _OpKey(name, left.lower(), right.lower())
        if key in self._ops and not replace:
            raise DataTypeError(
                f"operator {name!r}({left}, {right}) is already defined")
        self._ops[key] = func

    def resolve(self, name: str, left: str, right: str) -> Callable | None:
        """Best implementation for the operand types, or None."""
        for lt, rt in ((left, right), (left, ANY), (ANY, right), (ANY, ANY)):
            func = self._ops.get(_OpKey(name, lt.lower(), rt.lower()))
            if func is not None:
                return func
        return None

    def names(self) -> list[str]:
        """Sorted distinct operator names."""
        return sorted({key.name for key in self._ops})


class FunctionRegistry:
    """Named functions callable from the query language."""

    def __init__(self) -> None:
        self._functions: dict[str, Callable] = {}

    def register(self, name: str, func: Callable,
                 replace: bool = False) -> None:
        """Declare a named function callable from queries."""
        key = name.lower()
        if key in self._functions and not replace:
            raise DataTypeError(f"function {name!r} is already defined")
        self._functions[key] = func

    def resolve(self, name: str) -> Callable | None:
        """The function registered under ``name``, or None."""
        return self._functions.get(name.lower())

    def names(self) -> list[str]:
        """Sorted names of all registered functions."""
        return sorted(self._functions)
