"""E2 / E6 / E7 / E8: the paper's worked scripts as benchmarks.

Regenerates the generate() list of section 3.2 and times the three
section 3.3 scripts through the full pipeline (parse -> factorize ->
evaluate against the real HOLIDAYS/AM_BUS_DAYS catalog).
"""

from __future__ import annotations

import pytest

from conftest import build_registry
from repro.core import Calendar
from repro.core.matcache import MaterialisationCache
from repro.finance import expiration_date, last_trading_day

EMP_DAYS = """
{LDOM_b = [n]/DAYS:during:MONTHS;
 LDOM_HOL = LDOM_b:intersects:HOLIDAYS;
 LAST_BUS = [n]/AM_BUS_DAYS:<:LDOM_HOL;
 return (LDOM_b - LDOM_HOL + LAST_BUS);}
"""


class TestGenerateExample:
    def test_e2_generate_years_days(self, benchmark, registry):
        result = benchmark(lambda: registry.system.generate(
            "YEARS", "DAYS", ("Jan 1 1987", "Jan 3 1992")))
        assert result.to_pairs() == (
            (1, 365), (366, 731), (732, 1096),
            (1097, 1461), (1462, 1826), (1827, 1829))


class TestScriptBenchmarks:
    def test_e6_emp_days_one_year(self, benchmark, registry):
        result = benchmark(lambda: registry.eval_script(
            EMP_DAYS, window=("Jan 1 1993", "Dec 31 1993")))
        assert len(result) == 12

    def test_e6_emp_days_ten_years(self, benchmark, registry):
        result = benchmark(lambda: registry.eval_script(
            EMP_DAYS, window=("Jan 1 1990", "Dec 31 1999")))
        assert len(result) == 120

    def test_e7_expiration_all_months(self, benchmark, registry):
        dates = benchmark(lambda: [expiration_date(registry, 1993, m)
                                   for m in range(1, 13)])
        assert len(dates) == 12

    def test_e8_last_trading_day(self, benchmark, registry):
        day = benchmark(lambda: last_trading_day(registry, 1993, 11))
        assert day is not None

    def test_defined_calendar_plan_vs_interpreter(self, benchmark,
                                                  registry):
        if "BENCH_TUESDAYS" not in registry:
            registry.define("BENCH_TUESDAYS",
                            script="{return([2]/DAYS:during:WEEKS);}",
                            granularity="DAYS")
        window = ("Jan 1 1993", "Dec 31 1994")
        via_plan = benchmark(lambda: registry.evaluate(
            "BENCH_TUESDAYS", window=window, use_plan=True))
        via_interp = registry.evaluate("BENCH_TUESDAYS", window=window,
                                       use_plan=False)
        assert via_plan.to_pairs() == via_interp.to_pairs()


class TestRepeatedScriptEvaluation:
    """E6 re-evaluated over sliding yearly windows, cached vs disabled.

    Applications re-run the same scripts as their window of interest
    advances; the shared materialisation cache turns the repeated basic
    tilings into bisect slices.  Both variants land in BENCH_core.json
    so the cached/uncached ratio can be read straight off the report.
    """

    WINDOWS = [(f"{y}-{m:02d}-01", f"{y + 1}-{m:02d}-01")
               for y, m in ((1993, m) for m in range(1, 13))]

    def _run(self, registry):
        return [len(registry.eval_script(EMP_DAYS, window=w))
                for w in self.WINDOWS]

    def test_bench_e6_repeated_cached(self, benchmark):
        registry = build_registry(matcache=MaterialisationCache())
        self._run(registry)  # warm once
        counts = benchmark(lambda: self._run(registry))
        assert counts == [12] * 12

    def test_bench_e6_repeated_uncached(self, benchmark):
        registry = build_registry(
            matcache=MaterialisationCache(maxsize=0))
        counts = benchmark(lambda: self._run(registry))
        assert counts == [12] * 12


class TestNextOccurrence:
    """DBCRON's scheduling primitive (growing-window evaluation)."""

    def test_near_occurrence(self, benchmark, registry):
        t0 = registry.system.day_of("Jan 1 1993")
        result = benchmark(lambda: registry.next_occurrence(
            "[2]/DAYS:during:WEEKS", t0))
        assert result == t0 + 4

    def test_sparse_occurrence(self, benchmark, registry):
        if "SPARSE_BENCH" not in registry:
            far = registry.system.day_of("Jun 1 1995")
            registry.define("SPARSE_BENCH", values=[(far, far)],
                            granularity="DAYS")
        t0 = registry.system.day_of("Jan 1 1993")
        result = benchmark(lambda: registry.next_occurrence(
            "SPARSE_BENCH", t0))
        assert result == registry.system.day_of("Jun 1 1995")
