"""Unit tests for the Calendar type (order-n collections)."""

import pytest

from repro.core import Calendar, CalendarError, Granularity, Interval


def cal(*pairs):
    return Calendar.from_intervals(pairs)


class TestConstruction:
    def test_order1_from_pairs(self):
        c = cal((1, 5), (7, 9))
        assert c.order == 1
        assert c.to_pairs() == ((1, 5), (7, 9))

    def test_order1_from_intervals(self):
        c = Calendar.from_intervals([Interval(1, 2)])
        assert len(c) == 1

    def test_order2(self):
        c = Calendar.from_calendars([cal((1, 2)), cal((4, 5), (7, 8))])
        assert c.order == 2
        assert c.to_pairs() == (((1, 2),), ((4, 5), (7, 8)))

    def test_order3(self):
        inner = Calendar.from_calendars([cal((1, 2))])
        c = Calendar.from_calendars([inner])
        assert c.order == 3

    def test_mixed_orders_rejected(self):
        with pytest.raises(CalendarError):
            Calendar.from_calendars([cal((1, 2)),
                                     Calendar.from_calendars([cal((1, 2))])])

    def test_interval_in_order2_rejected(self):
        with pytest.raises(CalendarError):
            Calendar((Interval(1, 2),), order=2)

    def test_point_and_interval_constructors(self):
        assert Calendar.point(5).to_pairs() == ((5, 5),)
        assert Calendar.interval(2, 9).to_pairs() == ((2, 9),)

    def test_labels_must_parallel(self):
        with pytest.raises(CalendarError):
            Calendar.from_intervals([(1, 2)], labels=[1, 2])


class TestInspection:
    def test_bool_is_nonempty(self):
        assert not Calendar()
        assert cal((1, 1))

    def test_iteration_and_getitem(self):
        c = cal((1, 2), (4, 5))
        assert list(c) == [Interval(1, 2), Interval(4, 5)]
        assert c[1] == Interval(4, 5)

    def test_span(self):
        assert cal((3, 5), (9, 12)).span() == Interval(3, 12)
        assert Calendar().span() is None

    def test_contains_point(self):
        c = cal((1, 3), (7, 9))
        assert c.contains_point(2)
        assert not c.contains_point(5)

    def test_leaf_count_nested(self):
        c = Calendar.from_calendars([cal((1, 2)), cal((4, 5), (7, 8))])
        assert c.leaf_count() == 3

    def test_str_matches_paper_notation(self):
        assert str(cal((1, 31), (32, 59))) == "{(1,31),(32,59)}"
        nested = Calendar.from_calendars([cal((4, 10))])
        assert str(nested) == "{{(4,10)}}"


class TestLabels:
    def test_find_label(self):
        c = Calendar.from_intervals([(1, 365), (366, 731)],
                                    labels=[1987, 1988])
        assert c.find_label(1988) == 1
        assert c.find_label(1999) is None

    def test_label_of(self):
        c = Calendar.from_intervals([(1, 365)], labels=[1987])
        assert c.label_of(0) == 1987

    def test_unlabelled(self):
        assert cal((1, 2)).find_label(1987) is None


class TestFlatten:
    def test_flatten_order2(self):
        c = Calendar.from_calendars([cal((1, 2)), cal((4, 5))])
        assert c.flatten().to_pairs() == ((1, 2), (4, 5))

    def test_flatten_order1_identity(self):
        c = cal((1, 2))
        assert c.flatten() is c

    def test_drop_empty(self):
        c = Calendar.from_calendars([cal((1, 2)), Calendar()])
        cleaned = c.drop_empty()
        assert len(cleaned) == 1


class TestSetOperations:
    def test_union_disjoint_keeps_elements(self):
        c = cal((1, 7)) + cal((8, 14))
        # Adjacent weeks are NOT merged: boundaries stay selectable.
        assert c.to_pairs() == ((1, 7), (8, 14))

    def test_union_merges_overlap(self):
        c = cal((1, 7)) + cal((5, 10))
        assert c.to_pairs() == ((1, 10),)

    def test_union_sorts(self):
        c = cal((8, 9)) + cal((1, 2))
        assert c.to_pairs() == ((1, 2), (8, 9))

    def test_difference_removes_whole(self):
        c = cal((31, 31), (59, 59)) - cal((31, 31))
        assert c.to_pairs() == ((59, 59),)

    def test_difference_splits(self):
        c = cal((1, 10)) - cal((4, 6))
        assert c.to_pairs() == ((1, 3), (7, 10))

    def test_difference_disjoint(self):
        c = cal((1, 3)) - cal((7, 9))
        assert c.to_pairs() == ((1, 3),)

    def test_intersection(self):
        c = cal((1, 10), (20, 30)) & cal((5, 25))
        assert c.to_pairs() == ((5, 10), (20, 25))

    def test_paper_emp_days_combination(self):
        # (LDOM - LDOM_HOL + LAST_BUS_DAY) from section 3.3.
        ldom = cal((31, 31), (59, 59), (90, 90))
        ldom_hol = cal((31, 31), (90, 90))
        last_bus = cal((30, 30), (88, 88))
        result = ldom - ldom_hol + last_bus
        assert result.to_pairs() == ((30, 30), (59, 59), (88, 88))

    def test_setops_require_order1(self):
        nested = Calendar.from_calendars([cal((1, 2))])
        with pytest.raises(CalendarError):
            nested + cal((1, 2))
        with pytest.raises(CalendarError):
            cal((1, 2)) - nested

    def test_granularity_preserved(self):
        a = Calendar.from_intervals([(1, 2)], Granularity.DAYS)
        assert (a + cal((4, 5))).granularity == Granularity.DAYS
