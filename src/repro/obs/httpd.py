"""The embedded telemetry HTTP endpoint.

A tiny stdlib-only HTTP server (``http.server.ThreadingHTTPServer`` on
a daemon thread) exposing the observability state of one running
session to the outside world — the "observe the planner from outside"
posture of the POSTGRES rule-system statistics tables, pointed at a
Prometheus scraper instead of a catalog:

* ``GET /metrics``  — Prometheus text exposition (0.0.4);
* ``GET /healthz``  — liveness JSON: ``200`` when healthy, ``503`` with
  a ``problems`` list when degraded (excessive DBCRON clock drift, a
  closed worker pool, …);
* ``GET /slowlog``  — captured slow-query records, JSON;
* ``GET /traces``   — the trace ring as OTLP-style JSON;
* ``GET /events``   — the telemetry ring buffer as a JSON array;
* ``GET /profile?seconds=N`` — sample the process for N seconds (1 by
  default, capped at 60) and return that window as collapsed-stack
  text;
* ``GET /flamegraph`` — the profiler's full accumulation as
  collapsed-stack text, ready for ``flamegraph.pl`` or speedscope.

``HEAD`` is answered for every route with the same status and headers
and no body (scrapers and load balancers probe with HEAD; the stdlib
default would 501).  Other methods get ``405`` with an
``Allow: GET, HEAD`` header.

The server holds **no references into the stack** beyond the provider
callables handed to it, each invoked per request on the serving thread;
a provider that raises turns into a ``500`` with the error text rather
than killing the server.  Construction binds the socket synchronously
(``port=0`` picks an ephemeral port, reported via :attr:`port`), so a
caller can scrape immediately after the constructor returns.
"""

from __future__ import annotations

import json
import threading

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

__all__ = ["TelemetryServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Ceiling on ``/profile?seconds=N`` so a typo cannot pin a serving
#: thread for minutes.
MAX_PROFILE_SECONDS = 60.0


class TelemetryServer:
    """Serves one session's telemetry over HTTP on a daemon thread.

    Providers are zero-argument callables returning:

    * ``metrics_text`` — the ``/metrics`` body (Prometheus text);
    * ``health``       — the ``/healthz`` dict (``status`` of ``"ok"``
      or ``"degraded"`` decides 200 vs 503);
    * ``slowlog``      — a JSON-ready list for ``/slowlog``;
    * ``traces``       — a JSON-ready dict for ``/traces``;
    * ``events``       — a JSON-ready list for ``/events`` (optional);
    * ``rules``        — a JSON-ready dict for ``/rules`` (optional):
      the ``Session.rules.stats()`` report — scheduler kind, shard
      sizes, shed/throttle counters;
    * ``profile``      — a callable taking a ``seconds`` float and
      returning collapsed-stack text for ``/profile`` (optional);
    * ``flamegraph``   — collapsed-stack text of the profiler's full
      accumulation for ``/flamegraph`` (optional).
    """

    def __init__(self, *, metrics_text, health, slowlog, traces,
                 events=None, rules=None, profile=None, flamegraph=None,
                 port: int = 0, host: str = "127.0.0.1") -> None:
        self._providers = {
            "/metrics": ("prometheus", metrics_text),
            "/healthz": ("health", health),
            "/slowlog": ("json", slowlog),
            "/traces": ("json", traces),
            "/events": ("json", events if events is not None
                        else (lambda: [])),
            "/rules": ("json", rules if rules is not None
                       else (lambda: {})),
        }
        if profile is not None:
            self._providers["/profile"] = ("profile", profile)
        if flamegraph is not None:
            self._providers["/flamegraph"] = ("text", flamegraph)
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                server._handle(self)

            def do_HEAD(self) -> None:  # noqa: N802
                # Full provider dispatch (status and headers must match
                # the GET they stand in for), body suppressed in _send.
                server._handle(self, head=True)

            def _method_not_allowed(self) -> None:
                body = b"method not allowed\n"
                self.send_response(405)
                self.send_header("Allow", "GET, HEAD")
                self.send_header("Content-Type",
                                 "text/plain; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            do_POST = _method_not_allowed    # noqa: N815
            do_PUT = _method_not_allowed     # noqa: N815
            do_DELETE = _method_not_allowed  # noqa: N815
            do_PATCH = _method_not_allowed   # noqa: N815
            do_OPTIONS = _method_not_allowed # noqa: N815

            def log_message(self, format, *args) -> None:
                pass  # keep scrape traffic off stderr

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = host
        #: The bound port (resolves ``port=0`` to the ephemeral choice).
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-telemetry-{self.port}", daemon=True)
        self._thread.start()

    # -- request handling -----------------------------------------------------

    def _handle(self, handler: BaseHTTPRequestHandler,
                head: bool = False) -> None:
        raw_path, _, query = handler.path.partition("?")
        path = raw_path.rstrip("/") or "/"
        provider = self._providers.get(path)
        if provider is None:
            self._send(handler, 404, "text/plain; charset=utf-8",
                       b"not found\n", head)
            return
        kind, fn = provider
        try:
            if kind == "profile":
                # HEAD must not pin the serving thread sampling for the
                # requested window; answer from a zero-length sample.
                payload = fn(0.0 if head
                             else self._profile_seconds(query))
            else:
                payload = fn()
        except Exception as exc:  # provider failure is a 500, not a crash
            self._send(handler, 500, "text/plain; charset=utf-8",
                       f"provider error: {exc}\n".encode(), head)
            return
        if kind == "prometheus":
            self._send(handler, 200, PROMETHEUS_CONTENT_TYPE,
                       str(payload).encode(), head)
        elif kind in ("text", "profile"):
            body = str(payload)
            if body and not body.endswith("\n"):
                body += "\n"
            self._send(handler, 200, "text/plain; charset=utf-8",
                       body.encode(), head)
        elif kind == "health":
            status = 200 if payload.get("status") == "ok" else 503
            self._send(handler, status, "application/json",
                       self._json(payload), head)
        else:
            self._send(handler, 200, "application/json",
                       self._json(payload), head)

    @staticmethod
    def _profile_seconds(query: str) -> float:
        """The clamped ``seconds`` parameter of a ``/profile`` request."""
        try:
            raw = parse_qs(query).get("seconds", ["1"])[0]
            seconds = float(raw)
        except (ValueError, IndexError):
            seconds = 1.0
        return min(max(seconds, 0.05), MAX_PROFILE_SECONDS)

    @staticmethod
    def _json(payload) -> bytes:
        return (json.dumps(payload, indent=2, default=str) + "\n").encode()

    @staticmethod
    def _send(handler: BaseHTTPRequestHandler, status: int,
              content_type: str, body: bytes,
              head: bool = False) -> None:
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        if not head:
            handler.wfile.write(body)

    # -- lifecycle ------------------------------------------------------------

    @property
    def url(self) -> str:
        """Base URL of the endpoint (e.g. ``http://127.0.0.1:43210``)."""
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __repr__(self) -> str:
        return f"TelemetryServer({self.url})"
