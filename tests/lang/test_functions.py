"""Tests for the shift/instants/hull calendar functions."""

import pytest

from repro.lang.errors import EvaluationError


class TestShift:
    def test_shift_forward_and_back(self, registry):
        ldom = registry.eval_expression(
            "[n]/DAYS:during:[1]/MONTHS:during:1993/YEARS")
        shifted = registry.eval_expression(
            "shift([n]/DAYS:during:[1]/MONTHS:during:1993/YEARS, -3)")
        assert shifted.elements[0].lo == ldom.elements[0].lo - 3

    def test_shift_skips_zero(self, registry):
        cal = registry.eval_expression("shift(interval(1, 2), -1)",
                                       optimize=False)
        assert cal.to_pairs() == ((-1, 1),)

    def test_settlement_dates_use_case(self, registry):
        """T+5 settlement: expirations shifted five days forward."""
        exp = registry.eval_expression(
            "[5]/DAYS:during:[3]/WEEKS:during:[1]/MONTHS:during:"
            "1993/YEARS")
        settle = registry.eval_expression(
            "shift([5]/DAYS:during:[3]/WEEKS:during:[1]/MONTHS:during:"
            "1993/YEARS, 5)")
        assert settle.elements[0].lo == exp.elements[0].lo + 5

    def test_shift_arity(self, registry):
        with pytest.raises(EvaluationError):
            registry.eval_expression("shift(DAYS)", optimize=False)

    def test_shift_needs_integer(self, registry):
        with pytest.raises(EvaluationError):
            registry.eval_expression('shift(DAYS, "three")',
                                     optimize=False)


class TestInstantsAndHull:
    def test_instants_explodes_intervals(self, registry):
        cal = registry.eval_expression(
            "instants([1]/WEEKS:during:[1]/MONTHS:during:1993/YEARS)")
        assert len(cal) == 7
        assert all(iv.is_instant() for iv in cal.elements)

    def test_hull_spans_result(self, registry):
        cal = registry.eval_expression(
            "hull([2]/DAYS:during:WEEKS:during:[1]/MONTHS:during:"
            "1993/YEARS)")
        assert len(cal) == 1
        lo = registry.system.day_of("Jan 5 1993")
        hi = registry.system.day_of("Jan 26 1993")
        assert cal.to_pairs() == ((lo, hi),)

    def test_hull_of_empty(self, registry):
        # Day 2 (Jan 2 1987) is not a holiday, so the intersection is empty.
        cal = registry.eval_expression(
            "hull(HOLIDAYS & interval(2, 2))", optimize=False)
        assert cal.is_empty()

    def test_instants_dedupes_overlap(self, registry):
        cal = registry.eval_expression(
            "instants(interval(1, 3) + interval(2, 5))", optimize=False)
        assert cal.to_pairs() == ((1, 1), (2, 2), (3, 3), (4, 4), (5, 5))

    def test_arity_errors(self, registry):
        for text in ("instants()", "hull(DAYS, WEEKS)"):
            with pytest.raises(EvaluationError):
                registry.eval_expression(text, optimize=False)
