"""A miniature MultiCal (Soo & Snodgrass) — the paper's section 5 comparator.

Implements MultiCal's temporal types (event / interval / span), calendars
as systems of divisions with per-calendar input/output, and the bridge to
this library's nested-interval calendars.
"""

from repro.multical.bridge import (
    calendar_to_mc_intervals,
    event_to_tick,
    interval_to_mc,
    mc_interval_to_interval,
    render_calendar,
    tick_to_event,
    variable_span_equals_months_step,
)
from repro.multical.calsystem import (
    CalendricSystem,
    FiscalMCCalendar,
    GregorianMCCalendar,
    MCCalendar,
)
from repro.multical.types import MCEvent, MCInterval, MCSpan

__all__ = [
    "MCEvent", "MCInterval", "MCSpan",
    "MCCalendar", "GregorianMCCalendar", "FiscalMCCalendar",
    "CalendricSystem",
    "event_to_tick", "tick_to_event", "mc_interval_to_interval",
    "interval_to_mc", "calendar_to_mc_intervals", "render_calendar",
    "variable_span_equals_months_step",
]
