"""Property tests for the registry: stored plans vs interpreter.

Random single-expression calendars are defined in a catalog; evaluating
them through their pre-compiled plan must equal interpreting the script,
over random windows.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.catalog import CalendarRegistry, install_standard_calendars
from repro.core import CalendarSystem

selectors = st.sampled_from(["[1]/", "[2]/", "[n]/", "[-1]/", ""])
bases = st.sampled_from(["DAYS", "WEEKS", "MONTHS"])
ops = st.sampled_from(["during", "overlaps"])

window_starts = st.integers(min_value=1, max_value=1200)
window_lengths = st.integers(min_value=60, max_value=800)


@st.composite
def derivations(draw):
    depth = draw(st.integers(min_value=1, max_value=3))
    parts = [f"{draw(selectors)}{draw(bases)}" for _ in range(depth)]
    text = parts[0]
    for part in parts[1:]:
        text += f":{draw(ops)}:{part}"
    return "{return(" + text + ");}"


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(derivations(), window_starts, window_lengths)
def test_stored_plan_equals_interpreter(script, start, length):
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=8)
    install_standard_calendars(registry)
    record = registry.define("FUZZED", script=script)
    window = (start, start + length)
    via_plan = registry.evaluate("FUZZED", window=window, use_plan=True)
    via_interp = registry.evaluate("FUZZED", window=window,
                                   use_plan=False)
    assert via_plan.to_pairs() == via_interp.to_pairs(), \
        f"plan/interpreter divergence for {script} over {window}"
    if record.eval_plan is not None:
        # The stored plan is what Figure 1's eval-plan column holds.
        assert "generate(" in record.eval_plan.text()
