"""The CALENDARS catalog table (section 3.2, Figure 1).

.. code-block:: text

   CALENDARS( name : text,
     derivation-script: text, eval-plan: function,
     lifespan: float[2], granularity: text,
     values: interval[] )

:class:`CalendarRecord` is one tuple of that table and
:class:`CalendarsTable` the table itself.  ``render`` reproduces the
Figure 1 box for any stored calendar.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.calendar import Calendar
from repro.core.errors import CalendarError
from repro.core.granularity import Granularity

__all__ = ["CalendarRecord", "CalendarsTable", "UNBOUNDED_LIFESPAN"]

#: The paper's ``(1985, infinity)`` style lifespan default.
UNBOUNDED_LIFESPAN = (-math.inf, math.inf)


@dataclass
class CalendarRecord:
    """One tuple of the CALENDARS table."""

    name: str
    derivation_script: str | None = None
    eval_plan: object | None = None          # a repro.lang.plan.Plan
    lifespan: tuple[float, float] = UNBOUNDED_LIFESPAN
    granularity: Granularity | None = None
    values: Calendar | None = None
    #: Parsed derivation script (kept alongside the text, like POSTGRES
    #: caching a parsed rule body).
    parsed_script: object | None = None

    def __post_init__(self) -> None:
        if self.derivation_script is None and self.values is None:
            raise CalendarError(
                f"calendar {self.name!r} needs a derivation script or "
                "explicit values")
        lo, hi = self.lifespan
        if lo > hi:
            raise CalendarError(
                f"calendar {self.name!r} lifespan is inverted: {self.lifespan}")

    @property
    def is_explicit(self) -> bool:
        return self.values is not None and self.derivation_script is None

    def render(self) -> str:
        """Reproduce the paper's Figure 1 tabular presentation."""
        def fmt_lifespan() -> str:
            lo, hi = self.lifespan
            lo_s = "-inf" if lo == -math.inf else f"{lo:g}"
            hi_s = "inf" if hi == math.inf else f"{hi:g}"
            return f"({lo_s},{hi_s})"

        plan = ("set of procedural statements"
                if self.eval_plan is not None else "")
        rows = [
            ("Name", self.name),
            ("Derivation-Script", self.derivation_script or ""),
            ("Eval-Plan", plan),
            ("Lifespan", fmt_lifespan()),
            ("Granularity", self.granularity.name if self.granularity
             else ""),
            ("Values", str(self.values) if self.values is not None else ""),
        ]
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label.ljust(width)} | {value}"
                         for label, value in rows)


class CalendarsTable:
    """The CALENDARS system table: named calendar definitions."""

    def __init__(self) -> None:
        self._records: dict[str, CalendarRecord] = {}

    def insert(self, record: CalendarRecord, replace: bool = False) -> None:
        """Add a record; raises on duplicates unless ``replace``."""
        key = record.name.lower()
        if key in self._records and not replace:
            raise CalendarError(
                f"calendar {record.name!r} is already defined")
        self._records[key] = record

    def get(self, name: str) -> CalendarRecord | None:
        """The record under (case-insensitive) ``name``, or None."""
        return self._records.get(name.lower())

    def drop(self, name: str) -> None:
        """Delete a record; raises if unknown."""
        try:
            del self._records[name.lower()]
        except KeyError:
            raise CalendarError(f"unknown calendar {name!r}") from None

    def names(self) -> list[str]:
        """Sorted stored calendar names (original spelling)."""
        return sorted(record.name for record in self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._records

    def __iter__(self):
        return iter(self._records.values())
