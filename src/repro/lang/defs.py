"""Calendar name definitions shared by the interpreter, factorizer, planner.

A *resolver* maps calendar names to one of three definition kinds,
mirroring the CALENDARS catalog of section 3.2:

* :class:`BasicDef` — one of the nine basic calendars, materialised on
  demand by ``generate``;
* :class:`DerivedDef` — a calendar defined by a derivation script in the
  calendar expression language;
* :class:`ExplicitDef` — a calendar whose values are stored outright
  (the paper's HOLIDAYS example, the ``values`` column).

Name lookup is case-insensitive (the paper freely mixes ``HOLIDAYS`` and
``holidays``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.core.calendar import Calendar
from repro.core.granularity import Granularity

__all__ = ["BasicDef", "DerivedDef", "ExplicitDef", "Definition",
           "Resolver", "basic_resolver", "chain_resolvers"]


@dataclass(frozen=True)
class BasicDef:
    """A basic calendar (SECONDS … CENTURY)."""

    granularity: Granularity


@dataclass(frozen=True)
class DerivedDef:
    """A calendar derived by a script (stored pre-parsed).

    ``script`` is a :class:`repro.lang.ast.Script`; ``granularity`` may be
    ``None`` when it should be inferred from the derivation script.
    """

    script: object
    granularity: Granularity | None = None
    lifespan: tuple | None = None


@dataclass(frozen=True)
class ExplicitDef:
    """A calendar with explicitly stored interval values."""

    values: Calendar
    granularity: Granularity | None = None
    lifespan: tuple | None = None


Definition = Union[BasicDef, DerivedDef, ExplicitDef]
Resolver = Callable[[str], Optional[Definition]]


def basic_resolver(name: str) -> Definition | None:
    """Resolve only the nine basic calendar names."""
    try:
        return BasicDef(Granularity.parse(name))
    except Exception:
        return None


def chain_resolvers(*resolvers: Resolver) -> Resolver:
    """Try each resolver in turn; first non-None answer wins."""

    def resolve(name: str) -> Definition | None:
        for resolver in resolvers:
            definition = resolver(name)
            if definition is not None:
                return definition
        return None

    return resolve
