"""Property-based tests for the shared materialisation cache.

Every cache-served calendar must be indistinguishable from a fresh
``CalendarSystem.generate`` call — element pairs and labels alike — no
matter which subsumption, extension or replacement path served it.  One
module-level cache is shared across all Hypothesis examples so successive
windows genuinely exercise slicing, extension merging and eviction
against entries left behind by earlier examples.
"""

from hypothesis import given, settings, strategies as st

from repro.core import CalendarSystem
from repro.core.matcache import MaterialisationCache

SYSTEM = CalendarSystem.starting("Jan 1 1987")

#: Shared across examples on purpose — see module docstring.
CACHE = MaterialisationCache()

day_granularities = st.sampled_from(["DAYS", "WEEKS", "MONTHS", "YEARS"])

modes = st.sampled_from(["clip", "cover"])

# Start anywhere on the zero-skipping axis, including negative ticks, so
# windows straddling the missing point 0 are drawn regularly.
windows = st.tuples(
    st.integers(min_value=-3000, max_value=3000).filter(lambda t: t != 0),
    st.integers(min_value=0, max_value=800),
).map(lambda t: (t[0], t[0] + t[1] if t[0] + t[1] != 0 else t[0] + t[1] + 1))

small_windows = st.tuples(
    st.integers(min_value=-400, max_value=400).filter(lambda t: t != 0),
    st.integers(min_value=0, max_value=120),
).map(lambda t: (t[0], t[0] + t[1] if t[0] + t[1] != 0 else t[0] + t[1] + 1))


def assert_equal(cached, fresh):
    assert cached.to_pairs() == fresh.to_pairs()
    assert cached.labels == fresh.labels
    assert cached.granularity == fresh.granularity


class TestCacheMatchesFreshGenerate:
    @given(day_granularities, windows, modes)
    @settings(max_examples=120, deadline=None)
    def test_day_based_units(self, gran, window, mode):
        cached = CACHE.generate(SYSTEM, gran, "DAYS", window, mode)
        fresh = SYSTEM.generate(gran, "DAYS", window, mode=mode)
        assert_equal(cached, fresh)

    @given(windows, modes)
    @settings(max_examples=60, deadline=None)
    def test_weeks_in_weeks_identity(self, window, mode):
        cached = CACHE.generate(SYSTEM, "WEEKS", "WEEKS", window, mode)
        fresh = SYSTEM.generate("WEEKS", "WEEKS", window, mode=mode)
        assert_equal(cached, fresh)

    @given(small_windows, modes)
    @settings(max_examples=60, deadline=None)
    def test_subday_units(self, window, mode):
        cached = CACHE.generate(SYSTEM, "HOURS", "MINUTES", window, mode)
        fresh = SYSTEM.generate("HOURS", "MINUTES", window, mode=mode)
        assert_equal(cached, fresh)

    @given(small_windows, modes)
    @settings(max_examples=60, deadline=None)
    def test_month_units(self, window, mode):
        cached = CACHE.generate(SYSTEM, "YEARS", "MONTHS", window, mode)
        fresh = SYSTEM.generate("YEARS", "MONTHS", window, mode=mode)
        assert_equal(cached, fresh)

    @given(day_granularities, small_windows, modes)
    @settings(max_examples=60, deadline=None)
    def test_tiny_lru_still_correct(self, gran, window, mode):
        """Constant churn (maxsize=1) must never corrupt served results."""
        cached = TINY.generate(SYSTEM, gran, "DAYS", window, mode)
        fresh = SYSTEM.generate(gran, "DAYS", window, mode=mode)
        assert_equal(cached, fresh)


#: maxsize=1 forces replacement/extension on nearly every example.
TINY = MaterialisationCache(maxsize=1)


class TestNegativeAxis:
    @given(st.integers(min_value=1, max_value=900), day_granularities,
           modes)
    @settings(max_examples=60, deadline=None)
    def test_windows_straddling_the_missing_zero(self, half, gran, mode):
        """Windows symmetric around the absent tick 0."""
        window = (-half, half)
        cached = CACHE.generate(SYSTEM, gran, "DAYS", window, mode)
        fresh = SYSTEM.generate(gran, "DAYS", window, mode=mode)
        assert_equal(cached, fresh)

    @given(st.integers(min_value=-2000, max_value=-1),
           st.integers(min_value=0, max_value=500), day_granularities,
           modes)
    @settings(max_examples=60, deadline=None)
    def test_fully_negative_windows(self, lo, length, gran, mode):
        hi = lo + length
        if hi >= 0:
            hi = -1
        window = (lo, hi)
        cached = CACHE.generate(SYSTEM, gran, "DAYS", window, mode)
        fresh = SYSTEM.generate(gran, "DAYS", window, mode=mode)
        assert_equal(cached, fresh)
