"""The structured event pipeline: schema, sinks, backpressure drops."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.telemetry import (
    CallbackSink,
    Event,
    FileSink,
    RingSink,
    TelemetryPipeline,
)


class TestEventSchema:
    def test_jsonl_round_trip(self):
        """to_json() -> json.loads() reproduces the exact schema."""
        pipeline = TelemetryPipeline()
        assert pipeline.emit("eval.finish", source="WEEKS",
                             duration_s=0.25, error=None)
        (event,) = pipeline.events()
        decoded = json.loads(event.to_json())
        assert decoded == event.to_dict()
        assert set(decoded) == {"ts", "seq", "kind", "fields"}
        assert decoded["kind"] == "eval.finish"
        assert decoded["seq"] == 1
        assert decoded["ts"] == pytest.approx(event.ts)
        assert decoded["fields"] == {"source": "WEEKS",
                                     "duration_s": 0.25, "error": None}

    def test_field_named_kind_does_not_collide(self):
        """The event kind is positional-only, so a *field* may be named
        ``kind`` — query.execute events carry the statement kind."""
        pipeline = TelemetryPipeline()
        assert pipeline.emit("query.execute", kind="Append", rows=3)
        (event,) = pipeline.events()
        assert event.kind == "query.execute"
        assert event.fields == {"kind": "Append", "rows": 3}

    def test_sequence_is_monotone(self):
        pipeline = TelemetryPipeline()
        for i in range(5):
            pipeline.emit("tick", i=i)
        assert [e.seq for e in pipeline.events()] == [1, 2, 3, 4, 5]

    def test_non_json_values_coerce_via_str(self):
        """Arbitrary field values fall back to str() in the JSONL line."""
        event = Event(ts=1.0, seq=1, kind="x", fields={"obj": object()})
        decoded = json.loads(event.to_json())
        assert decoded["fields"]["obj"].startswith("<object object")

    def test_to_jsonl_one_line_per_event(self):
        pipeline = TelemetryPipeline()
        pipeline.emit("a")
        pipeline.emit("b")
        lines = pipeline.to_jsonl().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["a", "b"]


class TestSinks:
    def test_ring_sink_bounded(self):
        pipeline = TelemetryPipeline(ring_capacity=3)
        for i in range(10):
            pipeline.emit("tick", i=i)
        kept = [e.fields["i"] for e in pipeline.events()]
        assert kept == [7, 8, 9]
        assert pipeline.emitted == 10

    def test_file_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        pipeline = TelemetryPipeline()
        sink = FileSink(str(path))
        pipeline.add_sink(sink)
        pipeline.emit("cache.hit", calendar="WEEKS")
        pipeline.emit("cache.miss", calendar="MONTHS")
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "cache.hit"
        assert json.loads(lines[1])["fields"] == {"calendar": "MONTHS"}

    def test_callback_sink_sees_every_event(self):
        seen = []
        pipeline = TelemetryPipeline()
        pipeline.add_sink(CallbackSink(seen.append))
        pipeline.emit("one")
        pipeline.emit("two")
        assert [e.kind for e in seen] == ["one", "two"]

    def test_remove_sink_detaches_but_keeps_ring(self):
        pipeline = TelemetryPipeline()
        extra = RingSink()
        pipeline.add_sink(extra)
        pipeline.emit("before")
        pipeline.remove_sink(extra)
        pipeline.remove_sink(pipeline.ring)  # the built-in ring stays
        pipeline.emit("after")
        assert [e.kind for e in extra.events()] == ["before"]
        assert [e.kind for e in pipeline.events()] == ["before", "after"]

    def test_events_filter_by_kind(self):
        pipeline = TelemetryPipeline()
        pipeline.emit("cache.hit")
        pipeline.emit("cache.miss")
        pipeline.emit("cache.hit")
        assert len(pipeline.events("cache.hit")) == 2
        assert len(pipeline.events()) == 3


class TestBackpressure:
    def test_failing_sink_counts_drop_not_raise(self):
        def boom(event):
            raise RuntimeError("disk full")

        pipeline = TelemetryPipeline()
        pipeline.add_sink(CallbackSink(boom))
        assert pipeline.emit("x")  # the ring still got it
        assert pipeline.dropped == 1
        assert pipeline.emitted == 1
        assert len(pipeline.events()) == 1

    def test_contended_emit_drops_instead_of_blocking(self):
        """An emitter that finds the lock held drops and returns False."""
        pipeline = TelemetryPipeline()
        entered = threading.Event()
        release = threading.Event()

        class _Blocking:
            def accept(self, event):
                entered.set()
                release.wait(timeout=5)

        pipeline.add_sink(_Blocking())
        slow = threading.Thread(target=pipeline.emit, args=("slow",))
        slow.start()
        try:
            assert entered.wait(timeout=5)
            # The pipeline lock is held by the slow emitter right now.
            assert pipeline.emit("contended") is False
            assert pipeline.dropped == 1
        finally:
            release.set()
            slow.join(timeout=5)
        assert [e.kind for e in pipeline.events()] == ["slow"]

    def test_emit_under_foreign_lock_never_deadlocks(self):
        """Leaf-lock contract: emitting while holding other locks is fine."""
        pipeline = TelemetryPipeline()
        foreign = threading.Lock()
        with foreign:
            assert pipeline.emit("held")
        assert pipeline.dropped == 0

    def test_clear_drops_ring_only(self):
        pipeline = TelemetryPipeline()
        extra = RingSink()
        pipeline.add_sink(extra)
        pipeline.emit("x")
        pipeline.clear()
        assert pipeline.events() == []
        assert len(extra.events()) == 1
        assert pipeline.emitted == 1
