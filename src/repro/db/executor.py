"""Query execution for the Postquel-like language.

A deliberately simple engine: nested-loop joins over the from-clause range
variables, with two optimisations that matter for the paper's workloads:

* equality predicates ``var.col = <const>`` probe an
  :class:`~repro.db.index.OrderedIndex` when one exists on the column;
* the ``on <calendar>`` clause and the ``within`` operator evaluate the
  calendar once per statement and probe an
  :class:`~repro.db.index.IntervalIndex` per tuple.

Operator dispatch goes through the extensible
:class:`~repro.db.types.OperatorRegistry` first (so user-declared ADT
operators — the POSTGRES extensibility story — take precedence), falling
back to built-in arithmetic/comparison semantics.

``retrieve`` fires a *retrieve* event for every tuple that contributes to
the result, which is what lets event rules monitor reads (section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator, Sequence

from repro.core.calendar import Calendar
from repro.core.chrono import CivilDate
from repro.db.errors import ExecutionError, SchemaError
from repro.db.index import IntervalIndex, OrderedIndex
from repro.db.ql.ast import (
    Append,
    BinOp,
    ColumnRef,
    Const,
    CreateIndex,
    CreateTable,
    DefineCalendar,
    DefineRule,
    Delete,
    DropRule,
    DropTable,
    FuncCall,
    QlExpr,
    Replace,
    Retrieve,
    Statement,
    Target,
    UnOp,
)

__all__ = ["Result", "Executor", "AGGREGATES"]

AGGREGATES = ("count", "sum", "avg", "min", "max")


@dataclass
class Result:
    """A retrieve result: ordered column names and rows of dicts."""

    columns: list[str] = field(default_factory=list)
    rows: list[dict] = field(default_factory=list)
    #: Number of tuples touched by a mutation statement.
    affected: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.rows)

    def column(self, name: str) -> list:
        """All values of one result column, in row order."""
        return [row[name] for row in self.rows]

    def first(self) -> dict | None:
        """The first result row, or None."""
        return self.rows[0] if self.rows else None

    def to_table(self) -> str:
        """Render as a fixed-width text table."""
        if not self.columns:
            return f"({self.affected} tuples affected)"
        widths = {c: len(c) for c in self.columns}
        rendered = []
        for row in self.rows:
            cells = {c: str(row.get(c)) for c in self.columns}
            for c in self.columns:
                widths[c] = max(widths[c], len(cells[c]))
            rendered.append(cells)
        header = " | ".join(c.ljust(widths[c]) for c in self.columns)
        sep = "-+-".join("-" * widths[c] for c in self.columns)
        lines = [header, sep]
        for cells in rendered:
            lines.append(" | ".join(cells[c].ljust(widths[c])
                                    for c in self.columns))
        return "\n".join(lines)


def _type_name(value: object) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int4"
    if isinstance(value, float):
        return "float8"
    if isinstance(value, str):
        return "text"
    if isinstance(value, CivilDate):
        return "date"
    if isinstance(value, Calendar):
        return "calendar"
    return "any"


class Executor:
    """Executes statements against a :class:`repro.db.database.Database`."""

    def __init__(self, database) -> None:
        self.db = database

    # -- public ------------------------------------------------------------------

    def execute(self, statement: Statement,
                bindings: dict | None = None) -> Result:
        """Run one parsed statement with optional variable bindings.

        Every execution is timed into the ``db.query.latency`` histogram
        and the per-relation ``db.relation.query_seconds`` family
        (exemplar-linked to the executor span's trace id when tracing
        is on) and — with tracing on — wrapped in an
        ``executor.<Kind>`` span;
        with a telemetry pipeline attached a ``query.execute`` event
        records the statement kind and result cardinality.  The
        instrumentation bundle is looked up per call because a session
        may swap the database's bundle after this executor was built.
        """
        inst = self.db.instrumentation
        kind = type(statement).__name__
        tracer = inst.tracer
        t0 = perf_counter()
        trace_id = None
        if tracer is not None:
            with tracer.span(f"executor.{kind}") as span:
                result = self._dispatch(statement, bindings)
            # Past the per-trace span budget the tracer hands out a
            # timing-free stand-in with no trace id to link to.
            trace_id = getattr(span, "trace_id", None)
        else:
            result = self._dispatch(statement, bindings)
        elapsed = perf_counter() - t0
        inst.metrics.histogram("db.query.latency").observe(elapsed)
        inst.metrics.histogram(
            "db.relation.query_seconds",
            "Query latency per target relation",
            labels=("relation",), max_series=128,
        ).labels(self._statement_relation(statement)) \
            .observe(elapsed, trace_id)
        if inst.pipeline is not None:
            inst.pipeline.emit("query.execute", kind=kind,
                               rows=len(result.rows),
                               affected=result.affected,
                               duration_s=elapsed)
        return result

    @staticmethod
    def _statement_relation(statement: Statement) -> str:
        """The relation a statement targets, for per-relation metrics.

        Joins are attributed to their first range variable's relation;
        statements with no relation (define calendar/rule, …) land in
        the ``-`` series.  The labelled family is cardinality-governed,
        so a schema with hundreds of relations collapses the tail into
        ``other`` rather than growing the registry unboundedly.
        """
        if isinstance(statement, (Append, CreateIndex)):
            return statement.relation
        if isinstance(statement, (Retrieve, Replace, Delete)):
            if statement.range_vars:
                return statement.range_vars[0].relation
            if isinstance(statement, (Replace, Delete)):
                # Implicit range: the variable names the relation.
                return statement.var
            return "-"
        if isinstance(statement, (CreateTable, DropTable)):
            return statement.name
        return "-"

    def _dispatch(self, statement: Statement, bindings: dict | None
                  ) -> Result:
        bindings = dict(bindings or {})
        if isinstance(statement, Retrieve):
            return self._retrieve(statement, bindings)
        if isinstance(statement, Append):
            return self._append(statement, bindings)
        if isinstance(statement, Replace):
            return self._replace(statement, bindings)
        if isinstance(statement, Delete):
            return self._delete(statement, bindings)
        if isinstance(statement, CreateTable):
            self.db.create_table(statement.name, statement.columns,
                                 key=statement.key,
                                 valid_time_column=statement
                                 .valid_time_column)
            return Result(affected=0)
        if isinstance(statement, CreateIndex):
            self.db.create_index(statement.relation, statement.column)
            return Result(affected=0)
        if isinstance(statement, DropTable):
            self.db.drop_table(statement.name)
            return Result(affected=0)
        if isinstance(statement, DefineCalendar):
            self.db.calendars.define(
                statement.name, script=statement.script,
                values=(list(statement.values)
                        if statement.values is not None else None),
                granularity=statement.granularity)
            return Result(affected=0)
        if isinstance(statement, DefineRule):
            return self._define_rule(statement)
        if isinstance(statement, DropRule):
            self._rule_manager().drop_rule(statement.name)
            return Result(affected=0)
        raise ExecutionError(f"cannot execute {statement!r}")

    def _rule_manager(self):
        manager = self.db.rule_manager
        if manager is None:
            raise ExecutionError(
                "no rule manager is attached to this database "
                "(create a repro.rules.RuleManager first)")
        return manager

    def _define_rule(self, stmt: DefineRule) -> Result:
        manager = self._rule_manager()
        if stmt.calendar_expression is not None:
            manager.declare_temporal(
                stmt.name, expression=stmt.calendar_expression,
                actions=stmt.actions)
        else:
            rule = manager.declare_event(
                stmt.name, event=stmt.event, relation=stmt.relation,
                condition=None, actions=stmt.actions)
            rule.condition = stmt.condition
        return Result(affected=0)

    # -- explain -----------------------------------------------------------------

    def explain(self, statement: Statement) -> str:
        """Describe how a retrieve would execute (no tuples touched).

        Reports, per range variable: scan strategy (sequential, index
        probe, or historical ``as of`` scan) and the predicate conjuncts
        evaluated at that join level (the pushdown placement), plus any
        ``on <calendar>`` restriction and post-processing steps.
        """
        if not isinstance(statement, Retrieve):
            raise ExecutionError("explain supports retrieve statements")
        lines: list[str] = []
        conjuncts = []
        for term in self._conjuncts(statement.where):
            refs: set = set()
            self._referenced_vars(term, refs)
            level = 0
            remaining = set(refs)
            for i, rv in enumerate(statement.range_vars):
                remaining.discard(rv.var)
                if not remaining:
                    level = i
                    break
            else:
                level = max(0, len(statement.range_vars) - 1)
            conjuncts.append((level, term))
        for i, rv in enumerate(statement.range_vars):
            relation = self.db.relation(rv.relation)
            if rv.as_of is not None:
                strategy = f"historical scan (as of {rv.as_of})"
            else:
                strategy = "sequential scan"
                for column, _ in self._equality_terms(
                        statement.where, rv.var, {})                         if statement.where is not None else ():
                    if isinstance(relation.indexes.get(column),
                                  OrderedIndex):
                        strategy = f"index probe on {rv.relation}.{column}"
                        break
            lines.append(f"{'  ' * i}-> {rv.var} in {rv.relation}: "
                         f"{strategy}")
            terms = [str(t) for lvl, t in conjuncts if lvl == i]
            if terms:
                lines.append(f"{'  ' * i}   filter: "
                             + " and ".join(terms))
        if statement.on_calendar:
            lines.append(f"valid-time restriction: on "
                         f"{statement.on_calendar!r} (interval index)")
        if statement.unique:
            lines.append("post: unique")
        if statement.order_by:
            keys = ", ".join(str(e) for e, _ in statement.order_by)
            lines.append(f"post: order by {keys}")
        if statement.into:
            lines.append(f"post: materialise into {statement.into}")
        if not lines:
            return "-> constant result"
        return "\n".join(lines)

    # -- retrieve ----------------------------------------------------------------

    def _retrieve(self, stmt: Retrieve, bindings: dict) -> Result:
        where = stmt.where
        calendar_index = self._on_calendar_index(stmt)
        aggregate_mode = stmt.targets and all(
            isinstance(t.expr, FuncCall) and t.expr.name in AGGREGATES
            for t in stmt.targets)
        columns = [t.name for t in stmt.targets]
        rows: list[dict] = []
        acc: dict[int, list] = {i: [] for i in range(len(stmt.targets))}
        for combo in self._bindings(stmt.range_vars, where, bindings):
            if calendar_index is not None and not self._valid_time_ok(
                    stmt, combo, calendar_index):
                continue
            if where is not None and not self._truthy(
                    self._eval(where, combo)):
                continue
            self._fire_retrieve(stmt.range_vars, combo)
            if aggregate_mode:
                for i, target in enumerate(stmt.targets):
                    call = target.expr
                    if call.args:
                        acc[i].append(self._eval(call.args[0], combo))
                    else:
                        acc[i].append(1)
            else:
                rows.append({t.name: self._eval(t.expr, combo)
                             for t in stmt.targets})
        if aggregate_mode:
            row = {}
            for i, target in enumerate(stmt.targets):
                row[target.name] = self._aggregate(target.expr.name, acc[i])
            rows = [row]
        if stmt.unique:
            seen: set = set()
            deduped = []
            for row in rows:
                key = tuple(sorted((k, repr(v)) for k, v in row.items()))
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            rows = deduped
        if stmt.order_by:
            # Stable multi-key sort: apply keys right-to-left.
            for expr, ascending in reversed(stmt.order_by):
                rows.sort(key=lambda row, e=expr: self._order_key(e, row),
                          reverse=not ascending)
        result = Result(columns=columns, rows=rows)
        if stmt.into is not None:
            self._materialise_into(stmt.into, result)
        return result

    def _order_key(self, expr: QlExpr, row: dict):
        # Order-by expressions are evaluated against the projected row:
        # a bare column name (parsed as ColumnRef(name, "")) refers to a
        # result column; var.column re-evaluation is not available after
        # projection, so qualified refs must also appear in the targets.
        if isinstance(expr, ColumnRef):
            name = expr.column or expr.var
            if name in row:
                return row[name]
        raise ExecutionError(
            f"order by key {expr} must name a result column")

    def _materialise_into(self, relation_name: str, result: Result) -> None:
        if relation_name not in self.db:
            columns = []
            sample = result.rows[0] if result.rows else {}
            for name in result.columns:
                value = sample.get(name)
                columns.append((name, _type_name(value)
                                if value is not None else "text"))
            self.db.create_table(relation_name, columns)
        relation = self.db.relation(relation_name)
        for row in result.rows:
            relation.insert(dict(row), fire_hooks=False)

    @staticmethod
    def _aggregate(name: str, values: list):
        if name == "count":
            return len(values)
        values = [v for v in values if v is not None]
        if not values:
            return None
        if name == "sum":
            return sum(values)
        if name == "avg":
            return sum(values) / len(values)
        if name == "min":
            return min(values)
        if name == "max":
            return max(values)
        raise ExecutionError(f"unknown aggregate {name!r}")

    def _on_calendar_index(self, stmt: Retrieve) -> IntervalIndex | None:
        if stmt.on_calendar is None:
            return None
        if not stmt.range_vars:
            raise ExecutionError("'on <calendar>' requires a from clause")
        calendar = self.db.resolve_calendar(stmt.on_calendar)
        return IntervalIndex(calendar.flatten()
                             if calendar.order != 1 else calendar)

    def _valid_time_ok(self, stmt: Retrieve, combo: dict,
                       index: IntervalIndex) -> bool:
        var = stmt.range_vars[0].var
        relation = self.db.relation(stmt.range_vars[0].relation)
        column = relation.schema.valid_time_column
        if column is None:
            raise ExecutionError(
                f"relation {relation.name!r} has no valid-time column for "
                "'on <calendar>'")
        value = combo[var].get(column)
        return value is not None and index.contains(value)

    def _fire_retrieve(self, range_vars, combo: dict) -> None:
        for rv in range_vars:
            relation = self.db.relation(rv.relation)
            relation.notify_retrieve(combo[rv.var])

    # -- binding enumeration -------------------------------------------------------

    @classmethod
    def _conjuncts(cls, expr: QlExpr | None) -> list:
        """Top-level AND-ed terms of a predicate."""
        if expr is None:
            return []
        if isinstance(expr, BinOp) and expr.op == "and":
            return cls._conjuncts(expr.left) + cls._conjuncts(expr.right)
        return [expr]

    @classmethod
    def _referenced_vars(cls, expr: QlExpr, out: set) -> None:
        if isinstance(expr, ColumnRef):
            out.add(expr.var)
        elif isinstance(expr, BinOp):
            cls._referenced_vars(expr.left, out)
            cls._referenced_vars(expr.right, out)
        elif isinstance(expr, UnOp):
            cls._referenced_vars(expr.operand, out)
        elif isinstance(expr, FuncCall):
            for arg in expr.args:
                cls._referenced_vars(arg, out)

    def _bindings(self, range_vars, where: QlExpr | None,
                  extra: dict) -> Iterator[dict]:
        if not range_vars:
            yield dict(extra)
            return
        # Predicate pushdown: a conjunct is evaluated as soon as every
        # variable it references is bound, pruning the join early.
        conjuncts = []
        for term in self._conjuncts(where):
            refs: set = set()
            self._referenced_vars(term, refs)
            refs -= set(extra)
            level = 0
            remaining = set(refs)
            for i, rv in enumerate(range_vars):
                remaining.discard(rv.var)
                if not remaining:
                    level = i
                    break
            else:
                level = len(range_vars) - 1
            conjuncts.append((level, term))
        by_level: dict[int, list] = {}
        for level, term in conjuncts:
            by_level.setdefault(level, []).append(term)

        def recurse(index: int, current: dict) -> Iterator[dict]:
            if index == len(range_vars):
                yield dict(current)
                return
            rv = range_vars[index]
            relation = self.db.relation(rv.relation)
            as_of = None
            if rv.as_of is not None:
                as_of = self._eval(rv.as_of, current)
                if not isinstance(as_of, int):
                    raise ExecutionError(
                        "'as of' must evaluate to a transaction id")
            level_terms = by_level.get(index, ())
            for row in self._candidate_rows(relation, rv.var, where,
                                            current, as_of):
                current[rv.var] = row
                if all(self._truthy(self._eval(term, current))
                       for term in level_terms):
                    yield from recurse(index + 1, current)
            current.pop(rv.var, None)

        yield from recurse(0, dict(extra))

    def _candidate_rows(self, relation, var: str, where: QlExpr | None,
                        bound: dict, as_of: int | None = None):
        """Rows of ``relation``, restricted via an index when possible.

        Historical (``as of``) scans bypass indexes — they cover live
        tuples only.
        """
        if as_of is not None:
            yield from relation.scan(as_of=as_of)
            return
        probe = self._index_probe(relation, var, where, bound)
        if probe is not None:
            for tid in probe:
                row = relation.get(tid)
                if row is not None:
                    yield row
            return
        yield from relation.scan()

    def _index_probe(self, relation, var: str, where: QlExpr | None,
                     bound: dict):
        """tids for an equality predicate ``var.col = <evaluable>``."""
        if where is None:
            return None
        for column, value in self._equality_terms(where, var, bound):
            index = relation.indexes.get(column)
            if isinstance(index, OrderedIndex):
                return index.lookup_eq(value)
        return None

    def _equality_terms(self, expr: QlExpr, var: str, bound: dict):
        """Yield (column, value) for top-level AND-ed equality terms."""
        if isinstance(expr, BinOp):
            if expr.op == "and":
                yield from self._equality_terms(expr.left, var, bound)
                yield from self._equality_terms(expr.right, var, bound)
                return
            if expr.op == "=":
                for colref, other in ((expr.left, expr.right),
                                      (expr.right, expr.left)):
                    if isinstance(colref, ColumnRef) and \
                            colref.var == var and colref.column:
                        try:
                            yield colref.column, self._eval(other, bound)
                        except ExecutionError:
                            pass

    # -- mutation -----------------------------------------------------------------

    def _append(self, stmt: Append, bindings: dict) -> Result:
        self.db.begin_xact()
        relation = self.db.relation(stmt.relation)
        values = {column: self._eval(expr, bindings)
                  for column, expr in stmt.assignments}
        relation.insert(values)
        return Result(affected=1)

    def _mutation_targets(self, var: str, range_vars, where,
                          bindings: dict) -> tuple[list[dict], list]:
        range_vars = list(range_vars)
        if not any(rv.var == var for rv in range_vars):
            # Implicit range over the relation named by the variable.
            from repro.db.ql.ast import RangeVar
            range_vars.append(RangeVar(var, var))
        combos = []
        for combo in self._bindings(tuple(range_vars), where, bindings):
            if where is None or self._truthy(self._eval(where, combo)):
                combos.append(combo)
        return combos, range_vars

    def _replace(self, stmt: Replace, bindings: dict) -> Result:
        self.db.begin_xact()
        combos, range_vars = self._mutation_targets(
            stmt.var, stmt.range_vars, stmt.where, bindings)
        relation_name = next(rv.relation for rv in range_vars
                             if rv.var == stmt.var)
        relation = self.db.relation(relation_name)
        affected = 0
        seen: set[int] = set()
        for combo in combos:
            row = combo[stmt.var]
            if row["_tid"] in seen:
                continue
            seen.add(row["_tid"])
            changes = {column: self._eval(expr, combo)
                       for column, expr in stmt.assignments}
            relation.update(row["_tid"], changes)
            affected += 1
        return Result(affected=affected)

    def _delete(self, stmt: Delete, bindings: dict) -> Result:
        self.db.begin_xact()
        combos, range_vars = self._mutation_targets(
            stmt.var, stmt.range_vars, stmt.where, bindings)
        relation_name = next(rv.relation for rv in range_vars
                             if rv.var == stmt.var)
        relation = self.db.relation(relation_name)
        affected = 0
        seen: set[int] = set()
        for combo in combos:
            row = combo[stmt.var]
            if row["_tid"] in seen:
                continue
            seen.add(row["_tid"])
            relation.delete(row["_tid"])
            affected += 1
        return Result(affected=affected)

    # -- expression evaluation ---------------------------------------------------------

    def _eval(self, expr: QlExpr, bindings: dict):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, ColumnRef):
            return self._eval_column_ref(expr, bindings)
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand, bindings)
            if expr.op == "not":
                return not self._truthy(value)
            if expr.op == "-":
                return -value
            raise ExecutionError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, bindings)
        if isinstance(expr, FuncCall):
            return self._eval_funcall(expr, bindings)
        raise ExecutionError(f"cannot evaluate {expr!r}")

    def _eval_column_ref(self, expr: ColumnRef, bindings: dict):
        key = expr.var
        row = bindings.get(key)
        if row is None and key.lower() in ("new", "current"):
            row = bindings.get(key.lower())
        if row is None:
            if not expr.column and key in bindings:
                return bindings[key]
            if not expr.column:
                raise ExecutionError(f"unbound variable {key!r}")
            raise ExecutionError(f"unbound tuple variable {key!r}")
        if not expr.column:
            return row
        if isinstance(row, dict):
            if expr.column not in row:
                raise ExecutionError(
                    f"tuple variable {key!r} has no column {expr.column!r}")
            return row[expr.column]
        raise ExecutionError(f"{key!r} is not a tuple variable")

    def _eval_binop(self, expr: BinOp, bindings: dict):
        if expr.op == "and":
            return (self._truthy(self._eval(expr.left, bindings))
                    and self._truthy(self._eval(expr.right, bindings)))
        if expr.op == "or":
            return (self._truthy(self._eval(expr.left, bindings))
                    or self._truthy(self._eval(expr.right, bindings)))
        left = self._eval(expr.left, bindings)
        right = self._eval(expr.right, bindings)
        custom = self.db.operators.resolve(expr.op, _type_name(left),
                                           _type_name(right))
        if custom is not None:
            return custom(left, right)
        return self._builtin_binop(expr.op, left, right)

    def _builtin_binop(self, op: str, left, right):
        if op == "within":
            if not isinstance(left, int):
                raise ExecutionError(
                    "within expects an abstime tick on the left")
            # Compiled membership probe: O(log offsets) modular
            # arithmetic instead of materialising the calendar's cover
            # (falls back near the default-window boundary, where the
            # materialised calendar is clipped).
            probe = self.db.resolve_periodic(right)
            if probe is not None and probe[1] <= left <= probe[2]:
                return probe[0].contains(left)
            return self.db.resolve_calendar(right).contains_point(left)
        try:
            if op == "=":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left / right
            if op == "%":
                return left % right
            if op == "||":
                return str(left) + str(right)
        except TypeError as exc:
            raise ExecutionError(
                f"operator {op!r} not applicable to "
                f"{_type_name(left)}/{_type_name(right)}: {exc}") from exc
        raise ExecutionError(f"unknown operator {op!r}")

    def _eval_funcall(self, expr: FuncCall, bindings: dict):
        if expr.name in AGGREGATES:
            raise ExecutionError(
                f"aggregate {expr.name!r} is only allowed as a whole "
                "retrieve target list")
        func = self.db.functions.resolve(expr.name)
        if func is None:
            raise ExecutionError(f"unknown function {expr.name!r}")
        args = [self._eval(a, bindings) for a in expr.args]
        return func(*args)

    @staticmethod
    def _truthy(value) -> bool:
        if value is None:
            return False
        if isinstance(value, Calendar):
            return not value.is_empty()
        return bool(value)
