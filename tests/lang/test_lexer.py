"""Unit tests for the calendar-expression-language lexer."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenType as T


def types(source):
    return [t.type for t in tokenize(source)[:-1]]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is T.EOF

    def test_simple_expression(self):
        assert types("[2]/DAYS:during:WEEKS") == [
            T.LBRACKET, T.NUMBER, T.RBRACKET, T.SLASH, T.IDENT,
            T.COLON, T.IDENT, T.COLON, T.IDENT]

    def test_relaxed_foreach_dots(self):
        assert types("WEEKS.overlaps.Jan") == [
            T.IDENT, T.DOT, T.IDENT, T.DOT, T.IDENT]

    def test_keywords(self):
        assert types("if else while return") == [
            T.IF, T.ELSE, T.WHILE, T.RETURN]

    def test_comparison_ops(self):
        assert types(":<: :<=:") == [T.COLON, T.LT, T.COLON,
                                     T.COLON, T.LE, T.COLON]

    def test_positions(self):
        token = tokenize("\n  WEEKS")[0]
        assert (token.line, token.column) == (2, 3)


class TestHyphenGluing:
    def test_glued_name(self):
        assert texts("Jan-1993") == ["Jan-1993"]

    def test_expiration_month(self):
        assert texts("Expiration-Month") == ["Expiration-Month"]

    def test_spaced_minus_is_operator(self):
        assert types("LDOM - LDOM_HOL") == [T.IDENT, T.MINUS, T.IDENT]

    def test_n_never_glues(self):
        assert types("n-2") == [T.IDENT, T.MINUS, T.NUMBER]

    def test_multi_hyphen_name(self):
        assert texts("a-b-c") == ["a-b-c"]


class TestLiterals:
    def test_string(self):
        tokens = tokenize('"LAST TRADING DAY"')
        assert tokens[0].type is T.STRING
        assert tokens[0].text == "LAST TRADING DAY"

    def test_string_escape(self):
        assert tokenize(r'"a\"b"')[0].text == 'a"b'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_number(self):
        token = tokenize("1993")[0]
        assert token.type is T.NUMBER and token.text == "1993"


class TestComments:
    def test_block_comment_skipped(self):
        assert texts("a /* comment */ b") == ["a", "b"]

    def test_multiline_comment(self):
        assert texts("a /* line1\nline2 */ b") == ["a", "b"]

    def test_line_comment(self):
        assert texts("a // rest\nb") == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("WEEKS @ DAYS")

    def test_error_carries_position(self):
        try:
            tokenize("ok\n  @")
        except LexError as exc:
            assert exc.line == 2 and exc.column == 3
        else:
            pytest.fail("expected LexError")
