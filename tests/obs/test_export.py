"""JSON export of metrics and traces."""

import json

from repro.obs.export import export_json, metrics_to_dict, traces_to_dict
from repro.obs.instrument import Instrumentation


def _instrumented():
    inst = Instrumentation(tracing=True)
    inst.metrics.counter("c").inc(3)
    inst.metrics.histogram("h").observe(0.002)
    with inst.tracer.span("root", label="x"):
        with inst.tracer.span("child"):
            pass
    return inst


def test_metrics_to_dict():
    inst = _instrumented()
    data = metrics_to_dict(inst.metrics)
    assert data["kind"] == "metrics"
    assert data["metrics"]["c"] == 3
    assert data["metrics"]["h"]["count"] == 1


def test_traces_to_dict():
    inst = _instrumented()
    data = traces_to_dict(inst.recent_traces())
    assert data["kind"] == "traces"
    assert len(data["traces"]) == 1
    assert data["traces"][0]["name"] == "root"
    assert data["traces"][0]["children"][0]["name"] == "child"


def test_export_json_round_trips():
    inst = _instrumented()
    document = json.loads(export_json(inst))
    assert document["kind"] == "observability"
    assert document["tracing"] is True
    assert document["metrics"]["c"] == 3
    assert document["traces"][0]["name"] == "root"


def test_export_json_without_traces():
    inst = _instrumented()
    document = json.loads(export_json(inst, traces=False))
    assert "traces" not in document
