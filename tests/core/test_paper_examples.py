"""E1: every worked algebra example of section 3.1, asserted verbatim.

Day numbers are relative to Jan 1 1993 (= day 1), exactly as in the paper.
"""

import pytest

from repro.core import (
    CalendarSystem,
    Interval,
    SelectionPredicate,
    caloperate,
    foreach,
    select,
)


@pytest.fixture(scope="module")
def sys93():
    return CalendarSystem.starting("Jan 1 1993")


@pytest.fixture(scope="module")
def weeks(sys93):
    return sys93.weeks("Jan 1 1993", "Dec 31 1993")


@pytest.fixture(scope="module")
def year_1993(sys93):
    """The paper's Year-1993: the calendar of the months of 1993."""
    return sys93.months("Jan 1 1993", "Dec 31 1993")


JAN_1993 = Interval(1, 31)


def test_weeks_calendar_opening(weeks):
    """WEEKS = {(-4,3),(4,10),(11,17),(18,24),(25,31),(32,38),(39,45),...}"""
    assert weeks.to_pairs()[:7] == (
        (-4, 3), (4, 10), (11, 17), (18, 24), (25, 31), (32, 38), (39, 45))


def test_weeks_during_jan(weeks):
    """WEEKS : during : Jan-1993 = {(4,10),(11,17),(18,24),(25,31)}"""
    result = foreach("during", weeks, JAN_1993)
    assert result.to_pairs() == ((4, 10), (11, 17), (18, 24), (25, 31))


def test_year_1993_months(year_1993):
    """Year-1993 = {(1,31),(32,59),(60,90),(91,120),...}"""
    assert year_1993.to_pairs()[:4] == (
        (1, 31), (32, 59), (60, 90), (91, 120))


def test_weeks_during_year(weeks, year_1993):
    """WEEKS : during : Year-1993 — the order-2 result printed verbatim."""
    result = foreach("during", weeks, year_1993)
    assert result.order == 2
    pairs = result.to_pairs()
    assert pairs[0] == ((4, 10), (11, 17), (18, 24), (25, 31))
    assert pairs[1] == ((32, 38), (39, 45), (46, 52), (53, 59))
    assert pairs[2] == ((60, 66), (67, 73), (74, 80), (81, 87))
    assert pairs[3] == ((95, 101), (102, 108), (109, 115))


def test_weeks_strict_overlaps_jan(weeks):
    """WEEKS : overlaps : Jan-1993 = {(1,3),(4,10),...,(25,31)}"""
    result = foreach("overlaps", weeks, JAN_1993, strict=True)
    assert result.to_pairs() == (
        (1, 3), (4, 10), (11, 17), (18, 24), (25, 31))


def test_weeks_relaxed_overlaps_jan(weeks):
    """WEEKS . overlaps . Jan-1993 = {(-4,3),(4,10),...,(25,31)}"""
    result = foreach("overlaps", weeks, JAN_1993, strict=False)
    assert result.to_pairs() == (
        (-4, 3), (4, 10), (11, 17), (18, 24), (25, 31))


def test_third_week_in_jan(weeks):
    """[3]/WEEKS:overlaps:Jan-1993 = {(11,17)}"""
    overlapping = foreach("overlaps", weeks, JAN_1993, strict=True)
    assert select(overlapping,
                  SelectionPredicate.of(3)).to_pairs() == ((11, 17),)


def test_third_week_of_every_month(weeks, year_1993):
    """[3]/WEEKS:overlaps:Year-1993 = {(11,17),(46,52),(74,80),(102,108),...}"""
    by_month = foreach("overlaps", weeks, year_1993, strict=True)
    thirds = select(by_month, SelectionPredicate.of(3))
    assert thirds.order == 1
    assert thirds.to_pairs()[:4] == (
        (11, 17), (46, 52), (74, 80), (102, 108))


def test_overlaps_by_month_structure_matches_paper(weeks, year_1993):
    """The order-2 structure printed in the selection example."""
    by_month = foreach("overlaps", weeks, year_1993, strict=True)
    pairs = by_month.to_pairs()
    assert pairs[0] == ((1, 3), (4, 10), (11, 17), (18, 24), (25, 31))
    assert pairs[1] == ((32, 38), (39, 45), (46, 52), (53, 59))
    assert pairs[2] == ((60, 66), (67, 73), (74, 80), (81, 87), (88, 90))
    assert pairs[3] == ((91, 94), (95, 101), (102, 108), (109, 115),
                        (116, 120))


def test_caloperate_weeks(sys93):
    """caloperate(YEARS-days, *; 7) = {(1,7),(8,14),(15,21),...}"""
    days = sys93.year_days(1993)
    weeks = caloperate(days, (7,))
    assert weeks.to_pairs()[:3] == ((1, 7), (8, 14), (15, 21))


def test_caloperate_quarters(year_1993):
    """caloperate(MONTHS, *; 3) = {(1,90),(91,181),...}"""
    quarters = caloperate(year_1993, (3,))
    assert quarters.to_pairs()[:2] == ((1, 90), (91, 181))


def test_emp_days_walkthrough(sys93, year_1993):
    """The full EMP-DAYS walk-through of section 3.3 with its tiny
    HOLIDAYS = {(31,31),(90,90)} (Jan 31 and "Mar 30" as printed)."""
    from repro.core import Calendar

    days = sys93.days(1, 120)
    ldom = select(foreach("during", days, year_1993),
                  SelectionPredicate.of(-1))
    assert ldom.to_pairs()[:3] == ((31, 31), (59, 59), (90, 90))

    holidays = Calendar.from_intervals([(31, 31), (90, 90)])
    ldom_hol = foreach("intersects", ldom, holidays)
    assert ldom_hol.to_pairs() == ((31, 31), (90, 90))

    # AM_BUS_DAYS in the paper's stylised listing: every day except the
    # holidays (the printed listing shows ... (30,30) ... (88,88),(91,91)).
    bus = days - holidays - Calendar.from_intervals([(89, 89)])
    by_holiday = foreach("<", bus, ldom_hol)
    last_bus = select(by_holiday, SelectionPredicate.of(-1))
    # Note: the paper's "<" is u1 <= l2, so day 31 itself would qualify —
    # but it is a holiday and was removed from the business days; the
    # preceding business day is day 30 (and 88 for the Mar 30 holiday).
    assert last_bus.to_pairs() == ((30, 30), (88, 88))

    result = ldom - ldom_hol + last_bus
    assert result.to_pairs()[:4] == (
        (30, 30), (59, 59), (88, 88), (120, 120))
