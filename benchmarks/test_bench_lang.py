"""Language-pipeline throughput: lexer, parser, factorizer, compiler.

Not a paper table — operational numbers a downstream user cares about:
how fast the front half of the pipeline is, and what the per-evaluation
caches buy (expression cache, basic-calendar cache, stored plans).
"""

from __future__ import annotations

import time

import pytest

from repro.lang import factorize, parse_expression, parse_script, tokenize
from repro.lang.defs import basic_resolver
from repro.lang.planner import compile_expression

EXPRESSION = ("[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS + "
              "[n]/DAYS:during:MONTHS - HOLIDAYS")

SCRIPT = """
{LDOM_l = [n]/DAYS:during:MONTHS;
 LDOM_HOL = LDOM_l:intersects:HOLIDAYS;
 LAST_BUS = [n]/AM_BUS_DAYS:<:LDOM_HOL;
 if (LDOM_HOL) return (LDOM_l - LDOM_HOL + LAST_BUS);
 else return (LDOM_l);}
"""


class TestFrontEndThroughput:
    def test_tokenize(self, benchmark):
        tokens = benchmark(lambda: tokenize(SCRIPT))
        assert len(tokens) > 30

    def test_parse_expression(self, benchmark):
        expr = benchmark(lambda: parse_expression(EXPRESSION))
        assert expr is not None

    def test_parse_script(self, benchmark):
        script = benchmark(lambda: parse_script(SCRIPT))
        assert len(script.body) == 4

    def test_factorize(self, benchmark):
        expr = parse_expression(EXPRESSION)
        result = benchmark(lambda: factorize(expr, basic_resolver))
        assert result.expression is not None

    def test_compile(self, benchmark, registry):
        expr = factorize(parse_expression(
            "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS"),
            basic_resolver).expression
        plan = benchmark(lambda: compile_expression(
            expr, registry.system, basic_resolver,
            context_window=registry.default_window))
        assert len(plan) > 0


class TestCacheEffects:
    WINDOW = ("Jan 1 1993", "Dec 31 1993")

    def test_cold_expression_evaluation(self, benchmark, registry):
        counter = [0]

        def run():
            # A fresh text defeats the expression cache each round.
            counter[0] += 1
            return registry.eval_expression(
                f"[{1 + counter[0] % 5}]/DAYS:during:WEEKS:during:"
                "[1]/MONTHS:during:1993/YEARS", window=self.WINDOW)

        result = benchmark(run)
        assert len(result) >= 4

    def test_warm_expression_evaluation(self, benchmark, registry):
        text = ("[2]/DAYS:during:WEEKS:during:[1]/MONTHS:during:"
                "1993/YEARS")
        registry.eval_expression(text, window=self.WINDOW)  # warm up
        result = benchmark(lambda: registry.eval_expression(
            text, window=self.WINDOW))
        assert len(result) >= 4

    def test_stored_calendar_with_plan(self, benchmark, registry):
        if "BENCH_LANG_CAL" not in registry:
            registry.define(
                "BENCH_LANG_CAL",
                script="{return([2]/DAYS:during:WEEKS);}",
                granularity="DAYS")
        result = benchmark(lambda: registry.evaluate(
            "BENCH_LANG_CAL", window=self.WINDOW, use_plan=True))
        assert len(result) == 52


def test_report_pipeline_throughput(registry):
    """Statements/second through each pipeline stage."""
    print("\n=== Language pipeline throughput (per second)")
    stages = {
        "tokenize script": lambda: tokenize(SCRIPT),
        "parse script": lambda: parse_script(SCRIPT),
        "parse expression": lambda: parse_expression(EXPRESSION),
        "factorize expression": lambda: factorize(
            parse_expression(EXPRESSION), basic_resolver),
    }
    for label, fn in stages.items():
        n = 200
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        rate = n / (time.perf_counter() - t0)
        print(f"   {label:24s} {rate:10,.0f}/s")
    assert True
