"""Calendars: structured (order-n) collections of intervals.

Section 3.1 of the paper defines a *calendar* as a structured collection of
intervals whose *order* is the depth of the nesting:
``{(l1,u1), …, (ln,un)}`` is a calendar of order 1 and
``{S1, …, Sm}`` with each ``Si`` an order-1 calendar is a calendar of
order 2.

:class:`Calendar` is immutable.  Elements of an order-1 calendar are
:class:`~repro.core.interval.Interval` values kept in the order they were
supplied (calendars are *lists*, not sets — selection is positional);
elements of an order-k calendar (k > 1) are order-(k-1) calendars.

Optionally each element may carry a *label* (e.g. the YEARS calendar labels
its intervals with Gregorian year numbers) enabling the language's bare
label selection ``1993/YEARS``.

The set operations ``+`` (union), ``-`` (difference) and ``&``
(intersection) are defined on order-1 calendars with pointwise semantics;
``+`` keeps element boundaries where operands do not overlap (so that
positional selection remains meaningful), merging only genuinely
overlapping intervals.

Representation
--------------

Order-1 calendars built through :meth:`from_intervals` (and every
generated tiling, set-operation result, cache hit, …) are *array-backed*:
the endpoints live in an :class:`~repro.core.columnar.IntervalColumns`
pair of ``array('q')`` buffers and ``Interval`` objects are materialised
lazily, only when a caller crosses the public API boundary
(:attr:`elements`, :attr:`intervals`, iteration, indexing).  The hot
kernels (set operations, ``foreach`` dispatch, selection, caching) index
straight into the columns and never materialise.  The raw constructor
and ``REPRO_COLUMNAR=0`` keep the original object-tuple representation;
kernels dispatch per operand, so both representations interoperate.
"""

from __future__ import annotations

import bisect

from typing import Iterator, Sequence

from repro.core import columnar
from repro.core.columnar import IntervalColumns
from repro.core.errors import CalendarError, InvalidIntervalError
from repro.core.granularity import Granularity
from repro.core.interval import Interval, axis_add

__all__ = ["Calendar", "EMPTY"]

Label = int | str | None


def _coerce_interval(value: "Interval | tuple[int, int]") -> Interval:
    if isinstance(value, Interval):
        return value
    if isinstance(value, tuple) and len(value) == 2:
        return Interval(value[0], value[1])
    raise InvalidIntervalError(f"cannot interpret {value!r} as an interval")


def _rebuild(payload, order, granularity, labels):
    """Pickle/deepcopy reconstructor (memoryview slices don't pickle)."""
    if order == 1:
        return Calendar.from_intervals(payload, granularity, labels)
    return Calendar(tuple(payload), order, granularity, labels)


class Calendar:
    """An immutable structured collection of intervals.

    Construct order-1 calendars with :meth:`from_intervals` and deeper
    calendars with :meth:`from_calendars`; the raw constructor is mainly
    for internal use (and always builds the object-tuple representation).
    """

    def __init__(self, elements: tuple = (), order: int = 1,
                 granularity: Granularity | None = None,
                 labels: tuple | None = None) -> None:
        elements = tuple(elements)
        if order < 1:
            raise CalendarError(f"calendar order must be >= 1, got {order}")
        if order == 1:
            for el in elements:
                if not isinstance(el, Interval):
                    raise CalendarError(
                        f"order-1 calendar elements must be intervals, got {el!r}")
        else:
            for el in elements:
                if not isinstance(el, Calendar) or el.order != order - 1:
                    raise CalendarError(
                        f"order-{order} calendar elements must be "
                        f"order-{order - 1} calendars, got {el!r}")
        if labels is not None and len(labels) != len(elements):
            raise CalendarError("labels must parallel elements")
        self._mat = elements
        self._cols = None
        self.order = order
        self.granularity = granularity
        self.labels = labels

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_intervals(cls, intervals: Sequence["Interval | tuple[int, int]"],
                       granularity: Granularity | None = None,
                       labels: Sequence[Label] | None = None) -> "Calendar":
        """Build an order-1 calendar from intervals or ``(lo, hi)`` pairs.

        When the columnar representation is enabled this is the
        construction fast path: endpoints go straight into the column
        buffers (a single pass, generator-friendly) and no ``Interval``
        objects are created for tuple inputs.
        """
        label_tuple = tuple(labels) if labels is not None else None
        if not columnar.enabled():
            els = tuple(_coerce_interval(i) for i in intervals)
            return cls(els, 1, granularity, label_tuple)
        los: list[int] = []
        his: list[int] = []
        for value in intervals:
            if isinstance(value, Interval):
                los.append(value.lo)
                his.append(value.hi)
            elif isinstance(value, tuple) and len(value) == 2:
                lo, hi = value
                if not isinstance(lo, int) or not isinstance(hi, int) or \
                        isinstance(lo, bool) or isinstance(hi, bool):
                    raise InvalidIntervalError(
                        f"interval endpoints must be ints, got ({lo!r}, {hi!r})")
                if lo == 0 or hi == 0:
                    raise InvalidIntervalError(
                        f"interval endpoints may not be 0: ({lo}, {hi})")
                if lo > hi:
                    raise InvalidIntervalError(
                        f"interval lower bound exceeds upper bound: ({lo}, {hi})")
                los.append(lo)
                his.append(hi)
            else:
                raise InvalidIntervalError(
                    f"cannot interpret {value!r} as an interval")
        cols = IntervalColumns.from_lists(los, his)
        if cols is None:
            # Endpoints beyond int64: keep the object representation.
            els = tuple(Interval._of(lo, hi) for lo, hi in zip(los, his))
            return cls(els, 1, granularity, label_tuple)
        if label_tuple is not None and len(label_tuple) != len(cols):
            raise CalendarError("labels must parallel elements")
        return cls._from_columns(cols, granularity, label_tuple)

    @classmethod
    def _from_columns(cls, cols: IntervalColumns,
                      granularity: Granularity | None = None,
                      labels: tuple | None = None) -> "Calendar":
        """Trusted order-1 constructor over prebuilt columns (no checks)."""
        self = cls.__new__(cls)
        self._mat = None
        self._cols = cols
        self.order = 1
        self.granularity = granularity
        self.labels = labels
        return self

    @classmethod
    def from_calendars(cls, calendars: Sequence["Calendar"],
                       granularity: Granularity | None = None,
                       labels: Sequence[Label] | None = None) -> "Calendar":
        """Build an order-(k+1) calendar from order-k calendars."""
        cals = tuple(calendars)
        if not cals:
            return cls((), 2, granularity)
        sub_order = cals[0].order
        return cls(cals, sub_order + 1, granularity,
                   tuple(labels) if labels is not None else None)

    @classmethod
    def point(cls, t: int, granularity: Granularity | None = None) -> "Calendar":
        """An order-1 calendar holding the single instant ``t``."""
        return cls.from_intervals([(t, t)], granularity)

    @classmethod
    def interval(cls, lo: int, hi: int,
                 granularity: Granularity | None = None) -> "Calendar":
        """An order-1 calendar holding the single interval ``(lo, hi)``."""
        return cls.from_intervals([(lo, hi)], granularity)

    # -- representation --------------------------------------------------------

    @property
    def columns(self) -> IntervalColumns | None:
        """The backing endpoint columns, or ``None`` when object-backed."""
        return self._cols

    @property
    def elements(self) -> tuple:
        """The element tuple (lazily materialised for columnar calendars)."""
        mat = self._mat
        if mat is None:
            mat = self._materialise()
        return mat

    @property
    def intervals(self) -> tuple:
        """Alias of :attr:`elements` for order-1 calendars."""
        return self.elements

    def _materialise(self) -> tuple:
        cols = self._cols
        _of = Interval._of
        mat = tuple(_of(lo, hi) for lo, hi in zip(cols.los, cols.his))
        self._mat = mat
        if mat:
            columnar.MATERIALISATIONS.inc()
        return mat

    def __reduce__(self):
        if self.order == 1 and self._cols is not None:
            return (_rebuild, (self.to_pairs(), 1, self.granularity,
                               self.labels))
        return (_rebuild, (self.elements, self.order, self.granularity,
                           self.labels))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Calendar):
            return NotImplemented
        if self.order != other.order or \
                self.granularity != other.granularity:
            return False
        a, b = self._cols, other._cols
        if a is not None and b is not None:
            return a.equal(b)
        if self.order == 1:
            # Mixed representations compare by endpoint pairs, without
            # materialising the columnar side.
            return self.to_pairs() == other.to_pairs()
        return self.elements == other.elements

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        if self.order == 1:
            return hash((self.to_pairs(), self.order, self.granularity))
        return hash((self.elements, self.order, self.granularity))

    # -- basic inspection -----------------------------------------------------

    def __len__(self) -> int:
        cols = self._cols
        if cols is not None:
            return len(cols)
        return len(self._mat)

    def __bool__(self) -> bool:
        """Paper semantics: a calendar is *false* when it is empty (null)."""
        return len(self) > 0

    def __iter__(self) -> Iterator:
        cols = self._cols
        if cols is not None and self._mat is None:
            return self._iter_lazy()
        return iter(self.elements)

    def _iter_lazy(self) -> Iterator[Interval]:
        cols = self._cols
        _of = Interval._of
        for lo, hi in zip(cols.los, cols.his):
            yield _of(lo, hi)

    def __getitem__(self, index):
        cols = self._cols
        if cols is not None and self._mat is None and isinstance(index, int):
            return Interval._of(cols.los[index], cols.his[index])
        return self.elements[index]

    def is_empty(self) -> bool:
        """True when the calendar has no elements (the paper's null)."""
        return len(self) == 0

    def with_granularity(self, granularity: Granularity) -> "Calendar":
        """A copy carrying the given granularity (shares the columns)."""
        if self._cols is not None:
            return Calendar._from_columns(self._cols, granularity,
                                          self.labels)
        return Calendar(self.elements, self.order, granularity, self.labels)

    def with_labels(self, labels: Sequence[Label]) -> "Calendar":
        """A copy with per-element labels (for bare label selection)."""
        labels = tuple(labels)
        if self._cols is not None:
            if len(labels) != len(self):
                raise CalendarError("labels must parallel elements")
            return Calendar._from_columns(self._cols, self.granularity,
                                          labels)
        return Calendar(self.elements, self.order, self.granularity, labels)

    def label_of(self, index: int) -> Label:
        """The label of element ``index``, or None when unlabelled."""
        if self.labels is None:
            return None
        return self.labels[index]

    def find_label(self, label: Label) -> int | None:
        """Index of the element carrying ``label``, or ``None``."""
        if self.labels is None:
            return None
        try:
            return self.labels.index(label)
        except ValueError:
            return None

    # -- geometry -------------------------------------------------------------

    def iter_intervals(self) -> Iterator[Interval]:
        """Depth-first iteration over all leaf intervals."""
        if self.order == 1:
            yield from self
            return
        for el in self.elements:
            yield from el.iter_intervals()

    def iter_pairs(self) -> Iterator[tuple[int, int]]:
        """Depth-first ``(lo, hi)`` leaf pairs — no ``Interval`` objects."""
        if self.order == 1:
            cols = self._cols
            if cols is not None:
                yield from zip(cols.los, cols.his)
            else:
                for iv in self._mat:
                    yield (iv.lo, iv.hi)
            return
        for el in self.elements:
            yield from el.iter_pairs()

    def flatten(self) -> "Calendar":
        """Collapse to order 1, preserving depth-first leaf order."""
        if self.order == 1:
            return self
        return Calendar.from_intervals(self.iter_pairs(), self.granularity)

    def span(self) -> Interval | None:
        """Smallest interval covering the whole calendar, or ``None``."""
        if self.order == 1:
            cols = self._cols
            if cols is not None:
                if not len(cols):
                    return None
                los, his = cols.los, cols.his
                lo = los[0] if cols.lo_sorted else min(los)
                hi = his[-1] if cols.hi_sorted else max(his)
                return Interval._of(lo, hi)
        lo = hi = None
        for plo, phi in self.iter_pairs():
            lo = plo if lo is None else min(lo, plo)
            hi = phi if hi is None else max(hi, phi)
        if lo is None or hi is None:
            return None
        return Interval(lo, hi)

    def contains_point(self, t: int) -> bool:
        """True when some leaf interval contains the axis point ``t``."""
        if t == 0:
            return False
        if self.order == 1:
            cols = self._cols
            if cols is not None:
                if cols.hi_sorted:
                    i = bisect.bisect_left(cols.his, t)
                    return i < len(cols) and cols.los[i] <= t
                return any(lo <= t <= hi
                           for lo, hi in zip(cols.los, cols.his))
        return any(lo <= t <= hi for lo, hi in self.iter_pairs())

    def leaf_count(self) -> int:
        """Total number of leaf intervals at any depth."""
        if self.order == 1:
            return len(self)
        return sum(el.leaf_count() for el in self.elements)

    def drop_empty(self) -> "Calendar":
        """Recursively remove empty sub-calendars (the paper's ε exclusion)."""
        if self.order == 1:
            return self
        kept: list[Calendar] = []
        kept_labels: list[Label] = []
        for i, el in enumerate(self.elements):
            sub = el.drop_empty()
            if sub.is_empty():
                continue
            kept.append(sub)
            kept_labels.append(self.label_of(i))
        labels = tuple(kept_labels) if self.labels is not None else None
        return Calendar(tuple(kept), self.order, self.granularity, labels)

    # -- pointwise set operations (order 1) ------------------------------------

    def _require_order1(self, op: str, other: "Calendar | None" = None) -> None:
        if self.order != 1 or (other is not None and other.order != 1):
            raise CalendarError(f"{op} is defined on order-1 calendars only")

    def _lanes(self) -> IntervalColumns | None:
        """This calendar's endpoint columns, building them for an
        object-backed operand when needed (``None`` beyond int64)."""
        cols = self._cols
        if cols is not None:
            return cols
        mat = self._mat
        return IntervalColumns.from_lists(
            [iv.lo for iv in mat], [iv.hi for iv in mat])

    def _sweep_operand(self, other: "Calendar"):
        """Column lanes for a sweep-kernel set operation, or ``None`` when
        the operation must take the legacy object path (both operands
        object-backed, or endpoints beyond int64)."""
        if self._cols is None and other._cols is None:
            return None
        a = self._lanes()
        if a is None:
            return None
        b = other._lanes()
        if b is None:
            return None
        return a, b

    @staticmethod
    def _merge_overlapping(intervals: "list[Interval]") -> "list[Interval]":
        """Sort and merge overlapping intervals (adjacency is preserved)."""
        merged: list[Interval] = []
        for iv in sorted(intervals, key=lambda i: (i.lo, i.hi)):
            if merged and merged[-1].overlaps(iv):
                merged[-1] = merged[-1].union_hull(iv)
            else:
                merged.append(iv)
        return merged

    def union(self, other: "Calendar") -> "Calendar":
        """Pointwise union; merges only genuinely overlapping intervals."""
        self._require_order1("union", other)
        lanes = self._sweep_operand(other)
        if lanes is not None:
            out = columnar.union_sweep(*lanes)
            return Calendar._from_columns(out, self.granularity)
        merged = self._merge_overlapping([*self.elements, *other.elements])
        return Calendar.from_intervals(merged, self.granularity)

    @staticmethod
    def _overlap_window(other: "Calendar"):
        """Columnar overlap lookup over ``other``'s elements.

        When ``other`` is sorted by both endpoints (true for every
        generated tiling and every sorted point set), the elements that
        can overlap a probe interval form a contiguous slice found by two
        binary searches; unsorted operands fall back to the full range.
        Returns ``(elements, window(iv) -> (start, end))``.
        """
        from repro.core.algebra import _SortedView
        view = _SortedView.of(other)
        if view.hi_sorted:
            los, his = view.los, view.his
            return view.elements, lambda iv: (
                bisect.bisect_left(his, iv.lo),
                bisect.bisect_right(los, iv.hi))
        n = len(view.elements)
        return view.elements, lambda iv: (0, n)

    def difference(self, other: "Calendar") -> "Calendar":
        """Pointwise difference, splitting partially covered intervals."""
        self._require_order1("difference", other)
        lanes = self._sweep_operand(other)
        if lanes is not None:
            out = columnar.difference_sweep(*lanes)
            return Calendar._from_columns(out, self.granularity)
        cuts, window = self._overlap_window(other)
        result: list[Interval] = []
        for iv in self.elements:
            start, end = window(iv)
            pieces = [iv]
            for k in range(start, end):
                cut = cuts[k]
                pieces = [p for piece in pieces for p in piece.subtract(cut)]
                if not pieces:
                    break
            result.extend(pieces)
        return Calendar.from_intervals(self._merge_overlapping(result),
                                       self.granularity)

    def intersection(self, other: "Calendar") -> "Calendar":
        """Pointwise intersection."""
        self._require_order1("intersection", other)
        lanes = self._sweep_operand(other)
        if lanes is not None:
            out = columnar.intersection_sweep(*lanes)
            return Calendar._from_columns(out, self.granularity)
        others, window = self._overlap_window(other)
        result: list[Interval] = []
        for iv in self.elements:
            start, end = window(iv)
            for k in range(start, end):
                common = iv.intersect(others[k])
                if common is not None:
                    result.append(common)
        return Calendar.from_intervals(self._merge_overlapping(result),
                                       self.granularity)

    def shifted(self, delta: int) -> "Calendar":
        """A copy with every interval translated by ``delta`` ticks.

        Labels are dropped: a shifted unit no longer denotes the civil
        entity its label named.
        """
        self._require_order1("shift")
        cols = self._cols
        if cols is not None:
            out = columnar.shift_columns(cols, delta)
            if out is not None:
                return Calendar._from_columns(out, self.granularity)
        return Calendar.from_intervals(
            ((axis_add(lo, delta), axis_add(hi, delta))
             for lo, hi in self.iter_pairs()),
            self.granularity)

    def __add__(self, other: "Calendar") -> "Calendar":
        return self.union(other)

    def __sub__(self, other: "Calendar") -> "Calendar":
        return self.difference(other)

    def __and__(self, other: "Calendar") -> "Calendar":
        return self.intersection(other)

    # -- presentation -----------------------------------------------------------

    def __str__(self) -> str:
        if self.order == 1:
            inner = ",".join(f"({lo},{hi})" for lo, hi in self.iter_pairs())
        else:
            inner = ",".join(str(el) for el in self.elements)
        return "{" + inner + "}"

    def __repr__(self) -> str:
        gran = f", granularity={self.granularity}" if self.granularity else ""
        return f"Calendar(order={self.order}, {self}{gran})"

    def to_pairs(self):
        """Plain nested tuples mirroring the paper's notation (for tests)."""
        if self.order == 1:
            cols = self._cols
            if cols is not None:
                return cols.pairs()
            return tuple((iv.lo, iv.hi) for iv in self._mat)
        return tuple(el.to_pairs() for el in self.elements)


#: The empty order-1 calendar.
EMPTY = Calendar()
