"""Tests for the interactive shell (driven through Session.run_line)."""

import pytest

from repro.cli import Session


@pytest.fixture(scope="module")
def session():
    return Session(epoch="Jan 1 1987", holiday_years=(1987, 1999))


class TestExpressionInput:
    def test_expression_prints_dates(self, session):
        session.run_line("\\window Jan 1 1993 .. Dec 31 1993")
        out = session.run_line(
            "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS")
        assert out == "Jan 11 1993 .. Jan 17 1993"

    def test_instant_calendar_rendering(self, session):
        out = session.run_line("[2]/DAYS:during:[1]/WEEKS:during:"
                               "1993/YEARS")
        assert "Jan 5 1993" in out

    def test_long_results_elided(self, session):
        out = session.run_line("[2]/DAYS:during:WEEKS")
        assert "more)" in out

    def test_order2_rendering(self, session):
        out = session.run_line("WEEKS:during:[1-2]/MONTHS:during:"
                               "1993/YEARS")
        assert out.startswith("order-2 calendar")

    def test_parse_error_reported(self, session):
        out = session.run_line("WEEKS:during:")
        assert out.startswith("error:")

    def test_empty_line(self, session):
        assert session.run_line("   ") == ""


class TestQlInput:
    def test_ddl_and_dml(self, session):
        session.run_line("create table pets (name text)")
        session.run_line('append pets (name = "rex")')
        out = session.run_line("retrieve (p.name) from p in pets")
        assert "rex" in out

    def test_query_error_reported(self, session):
        out = session.run_line("retrieve (x.a) from x in missing")
        assert out.startswith("error:")


class TestCommands:
    def test_help(self, session):
        assert "backslash commands" in session.run_line("\\help")

    def test_calendars_listing(self, session):
        out = session.run_line("\\calendars")
        assert "Tuesdays" in out and "HOLIDAYS" in out

    def test_show_figure1(self, session):
        out = session.run_line("\\show Tuesdays")
        assert "Derivation-Script" in out

    def test_define_command(self, session):
        out = session.run_line(
            "\\define PAYDAY {return([n]/AM_BUS_DAYS:during:MONTHS);}")
        assert out == "defined calendar PAYDAY"
        assert "PAYDAY" in session.run_line("\\calendars")

    def test_window_usage_error(self, session):
        assert "usage" in session.run_line("\\window Jan 1 1993")

    def test_clock_and_advance(self, session):
        assert "tick" in session.run_line("\\clock")
        out = session.run_line("\\advance 10")
        assert "clock at" in out

    def test_advance_fires_temporal_rules(self, session):
        session.run_line("create table ticks (t abstime)")
        session.run_line(
            'define rule tick_rule on calendar "[2]/DAYS:during:WEEKS" '
            "do ( append ticks (t = now.t) )")
        out = session.run_line("\\advance 15")
        assert "temporal rule firing(s)" in out
        rows = session.run_line("retrieve (count()) from t in ticks")
        count = int(rows.splitlines()[-1].strip())
        assert count >= 2  # at least two Tuesdays in 15 days

    def test_rules_listing(self, session):
        out = session.run_line("\\rules")
        assert "tick_rule" in out

    def test_tables_listing(self, session):
        out = session.run_line("\\tables")
        assert "pg_class" in out and "pets" in out

    def test_unknown_command(self, session):
        assert "unknown command" in session.run_line("\\frobnicate")

    def test_quit_raises_eof(self, session):
        with pytest.raises(EOFError):
            session.run_line("\\quit")


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        session = Session(holiday_years=(1987, 1994))
        session.run_line("create table notes (txt text)")
        session.run_line('append notes (txt = "hello")')
        out = session.run_line(f"\\save {tmp_path / 'session.json'}")
        assert out.startswith("saved")
        out = session.run_line(f"\\load {tmp_path / 'session.json'}")
        assert out.startswith("loaded")
        rows = session.run_line("retrieve (n.txt) from n in notes")
        assert "hello" in rows


class TestMain:
    def test_main_with_commands(self, capsys):
        from repro.cli import main
        code = main(["-c", "\\clock"])
        assert code == 0
        assert "tick" in capsys.readouterr().out

    def test_main_help(self, capsys):
        from repro.cli import main
        assert main(["--help"]) == 0
        assert "backslash" in capsys.readouterr().out

    def test_main_bad_arg(self, capsys):
        from repro.cli import main
        assert main(["--bogus"]) == 2


class TestExplainCommand:
    def test_explain(self, session):
        session.run_line("create table exp_t (k int4)")
        session.run_line("create index on exp_t (k)")
        out = session.run_line(
            "\\explain retrieve (e.k) from e in exp_t where e.k = 1")
        assert "index probe" in out

    def test_explain_usage(self, session):
        assert "usage" in session.run_line("\\explain")


class TestWorkersCommand:
    def test_show_default_size(self):
        session = Session(holiday_years=(1987, 1994))
        out = session.run_line("\\workers")
        assert out == f"worker pool size: {session.pool.size}"

    def test_resize(self):
        session = Session(holiday_years=(1987, 1994))
        assert session.run_line("\\workers 4") == \
            "worker pool resized to 4"
        assert session.pool.size == 4
        assert session.run_line("\\workers") == "worker pool size: 4"

    def test_usage_on_bad_argument(self, session):
        assert "usage" in session.run_line("\\workers three")
        assert "usage" in session.run_line("\\workers 0")
        assert "usage" in session.run_line("\\workers -2")


class TestCacheContentionLine:
    def test_cache_reports_contention(self, session):
        session.run_line("[1]/MONTHS:during:1993/YEARS")
        out = session.run_line("\\cache")
        assert "contention:" in out
        assert "single-flight waits" in out
