"""Direct AST interpreter for calendar scripts.

This is the reference semantics of the calendar expression language: the
planner's compiled evaluation plans (:mod:`repro.lang.planner`) are
differential-tested against it.

Evaluation happens inside an :class:`EvalContext` that fixes the calendar
system, the *generation window* (the time interval within which basic
calendars are materialised — section 3.4's evaluation-plan input), the base
time unit, the name resolver, and the distinguished ``today`` instant used
by ``while`` rules.

A right operand that is a *singleton* order-1 calendar is treated as an
interval by ``foreach`` (the paper writes "Let Jan-1993 be the interval
{(1,31)}": named singleton calendars play the role of intervals, giving
order-1 results), while multi-element right operands yield order-2 results.
"""

from __future__ import annotations

import bisect

from dataclasses import dataclass, field
from typing import Callable

from repro.core.algebra import caloperate, foreach, label_select, select
from repro.core.basis import CalendarSystem
from repro.core.calendar import Calendar
from repro.core.matcache import MaterialisationCache, get_default_cache
from repro.core.errors import CalendarError
from repro.core.granularity import Granularity
from repro.core.interval import Interval
from repro.lang import ast
from repro.lang.defs import BasicDef, DerivedDef, ExplicitDef, Resolver
from repro.lang.errors import (
    EvaluationError,
    LoopLimitError,
    NameResolutionError,
)

__all__ = ["EvalContext", "Interpreter", "infer_unit", "ScriptResult"]

#: Result of running a script: a calendar, an alert string, or nothing.
ScriptResult = "Calendar | str | None"


def infer_unit(node: ast.Node, resolver: Resolver) -> Granularity:
    """The smallest time unit needed to express every calendar in ``node``.

    Implements the parser step of section 3.4 ("determine the smallest time
    unit in the expression").  Defaults to DAYS when nothing finer appears.
    """
    finest = Granularity.DAYS
    for sub in ast.walk(node):
        name: str | None = None
        if isinstance(sub, ast.Name):
            name = sub.ident
        elif isinstance(sub, ast.FunCall) and sub.name == "generate" and \
                sub.args and isinstance(sub.args[0], ast.Name):
            name = sub.args[0].ident
        if name is None:
            continue
        definition = resolver(name)
        gran: Granularity | None = None
        if isinstance(definition, BasicDef):
            gran = definition.granularity
        elif isinstance(definition, (DerivedDef, ExplicitDef)):
            gran = definition.granularity
        if gran is not None and gran < finest:
            finest = gran
    return finest


@dataclass
class EvalContext:
    """Everything an evaluation needs besides the AST itself."""

    system: CalendarSystem
    resolver: Resolver
    #: Generation window in ticks of ``unit`` (inclusive).
    window: tuple[int, int]
    unit: Granularity = Granularity.DAYS
    today: int | None = None
    env: dict[str, Calendar] = field(default_factory=dict)
    #: Extension functions callable from scripts: name -> f(ctx, args).
    functions: dict[str, Callable] = field(default_factory=dict)
    #: Called once per while-loop iteration; must return True to continue
    #: (e.g. advance ``today``).  None leaves loop progress to the body.
    while_hook: Callable[["EvalContext"], bool] | None = None
    max_loop_iterations: int = 100_000
    #: Cache of materialised basic calendars and derived-name results.
    cache: dict = field(default_factory=dict)
    #: Process-wide materialisation cache backing :meth:`materialise_basic`
    #: and explicit ``generate()`` calls; None uses the default instance.
    matcache: "MaterialisationCache | None" = None
    #: Statistics: how many basic-calendar materialisations were requested /
    #: served from cache, and total intervals produced (benchmark metrics).
    stats: dict = field(default_factory=lambda: {
        "generate_calls": 0, "generate_cache_hits": 0,
        "intervals_generated": 0})
    #: Active span tracer, or None when tracing is disabled — hot paths
    #: guard every span with a single ``if tracer is not None`` branch.
    tracer: object | None = None
    #: Metrics registry for step timings (only written when tracing).
    metrics: object | None = None
    #: Telemetry event pipeline, or None while telemetry is disabled —
    #: the same single-branch contract as ``tracer``.
    events: object | None = None

    def spawn_env(self) -> "EvalContext":
        """A child context with a fresh variable environment (shared cache)."""
        return EvalContext(
            system=self.system, resolver=self.resolver, window=self.window,
            unit=self.unit, today=self.today, env={},
            functions=self.functions, while_hook=self.while_hook,
            max_loop_iterations=self.max_loop_iterations, cache=self.cache,
            matcache=self.matcache, stats=self.stats,
            tracer=self.tracer, metrics=self.metrics, events=self.events)

    # -- materialisation -------------------------------------------------------

    #: Window padding (ticks) per evaluation unit: basic calendars are
    #: generated over an extended window so that coarse units partially
    #: overlapping the window boundary are complete in the finer calendars
    #: too — positional selection inside a truncated boundary week would
    #: otherwise pick the wrong day.  Day-or-coarser units pad by a year
    #: (completing everything up to YEARS); sub-day units pad by a month
    #: (completing weeks/months — for year-aligned sub-day expressions,
    #: evaluate with a correspondingly wider window).  DECADES/CENTURY
    #: boundary units are never completed.
    _WINDOW_PAD = {
        Granularity.SECONDS: 31 * 86_400,
        Granularity.MINUTES: 31 * 1_440,
        Granularity.HOURS: 31 * 24,
        Granularity.DAYS: 366,
        Granularity.WEEKS: 53,
        Granularity.MONTHS: 12,
        Granularity.YEARS: 1,
        Granularity.DECADES: 1,
        Granularity.CENTURY: 1,
    }

    def padded_window(self, window: tuple[int, int] | None = None
                      ) -> tuple[int, int]:
        """The generation window extended by one year of the unit."""
        return self.padded_tick_window(window or self.window)

    def padded_tick_window(self, window: tuple[int, int],
                           pad: int | None = None) -> tuple[int, int]:
        """``window`` extended by ``pad`` unit ticks.

        ``pad=None`` applies the legacy blanket (one year of the unit);
        an explicit pad — the planner's per-expression bound for sub-day
        units, or ``0`` for pre-padded dynamic pipeline windows — extends
        by exactly that many ticks.
        """
        lo, hi = window
        if pad is None:
            pad = self._WINDOW_PAD[self.unit]
        lo -= pad
        hi += pad
        return (lo if lo != 0 else -1, hi if hi != 0 else 1)

    def _materialisation_cache(self) -> MaterialisationCache:
        return self.matcache if self.matcache is not None \
            else get_default_cache()

    def materialise_basic(self, gran: Granularity,
                          window: tuple[int, int] | None = None,
                          mode: str = "cover",
                          pad: int | None = None) -> Calendar:
        """Materialise a basic calendar over a (padded) window.

        ``pad`` overrides the blanket window padding in unit ticks (see
        :meth:`padded_tick_window`); the default ``None`` keeps the
        legacy one-year blanket.

        Requests go through the process-wide
        :class:`~repro.core.matcache.MaterialisationCache` (window
        subsumption across evaluations); the per-context ``cache`` dict
        keeps exact-key repeats free and the per-context stats counting
        identical to a cache-cold run.
        """
        win = self.padded_tick_window(window or self.window, pad)
        key = ("basic", gran, self.unit, win, mode)
        self.stats["generate_calls"] += 1
        if key in self.cache:
            self.stats["generate_cache_hits"] += 1
            return self.cache[key]
        cal = self._materialisation_cache().generate(
            self.system, gran, self.unit, win, mode=mode)
        self.stats["intervals_generated"] += len(cal)
        self.cache[key] = cal
        return cal

    def generate_call(self, cal: "str | Granularity",
                      unit: "str | Granularity", window: tuple,
                      mode: str = "clip") -> Calendar:
        """An explicit ``generate(cal, unit, start, end, mode)`` call,
        served through the shared materialisation cache."""
        return self._materialisation_cache().generate(
            self.system, cal, unit, window, mode=mode)


class _ReturnSignal(Exception):
    def __init__(self, value) -> None:
        self.value = value


def clip_to_window(cal: Calendar, window: tuple[int, int]) -> Calendar:
    """Keep only elements overlapping ``window`` (recursively for order>1).

    Basic calendars are materialised over a *padded* window so that
    boundary units are complete; the final result of an evaluation is
    clipped back to the elements relevant to the window actually asked
    for.  Whole elements are kept (the paper's WEEKS calendar of 1993
    includes the week ``(-4,3)`` reaching into 1992), never truncated.
    """
    lo, hi = window
    win = Interval(lo if lo != 0 else -1, hi if hi != 0 else 1)
    if cal.order == 1:
        cols = cal.columns
        if cols is not None:
            # Sorted lanes clip with two bisects and a zero-copy slice;
            # unsorted lanes gather the overlapping positions.
            if cols.hi_sorted:
                start = bisect.bisect_left(cols.his, win.lo)
                end = bisect.bisect_right(cols.los, win.hi)
                if end < start:
                    end = start
                out = cols.slice(start, end)
                labels = (cal.labels[start:end]
                          if cal.labels is not None else None)
            else:
                los, his = cols.los, cols.his
                pos = [i for i in range(len(cols))
                       if los[i] <= win.hi and win.lo <= his[i]]
                out = cols.take(pos)
                labels = (tuple(cal.labels[i] for i in pos)
                          if cal.labels is not None else None)
            return Calendar._from_columns(out, cal.granularity, labels)
        kept = [i for i, iv in enumerate(cal.elements) if iv.overlaps(win)]
        labels = None
        if cal.labels is not None:
            labels = [cal.labels[i] for i in kept]
        return Calendar.from_intervals([cal.elements[i] for i in kept],
                                       cal.granularity, labels)
    subs: list[Calendar] = []
    labels_out: list = []
    for i, sub in enumerate(cal.elements):
        span = sub.span()
        if span is not None and span.overlaps(win):
            subs.append(sub)
            labels_out.append(cal.label_of(i))
    out = Calendar.from_calendars(subs, cal.granularity) if subs else \
        Calendar((), cal.order, cal.granularity)
    if cal.labels is not None and subs:
        out = out.with_labels(labels_out)
    return out


class Interpreter:
    """Evaluates calendar expressions and scripts against an EvalContext."""

    def __init__(self, context: EvalContext) -> None:
        self.context = context

    # -- public API --------------------------------------------------------------

    def evaluate(self, node: ast.Expr):
        """Evaluate an expression to a Calendar (or string literal).

        The result is clipped to the context window (see
        :func:`clip_to_window`); use :meth:`evaluate_raw` to keep
        padded-boundary elements.
        """
        tracer = self.context.tracer
        if tracer is not None:
            with tracer.span("interp.evaluate",
                             node=type(node).__name__):
                return self._finish(self._eval(node))
        return self._finish(self._eval(node))

    def evaluate_raw(self, node: ast.Expr):
        """Evaluate without the final window clip."""
        return self._eval(node)

    def execute(self, script: ast.Script):
        """Run a script; the value of its ``return`` (or None), clipped."""
        try:
            self._exec_body(script.body)
        except _ReturnSignal as signal:
            return self._finish(signal.value)
        return None

    def execute_raw(self, script: ast.Script):
        """Run a script without the final window clip.

        Used for *internal* evaluation of derived calendar definitions:
        a derived calendar referenced inside a larger expression must
        cover the same padded window as the basic calendars it is
        combined with, otherwise look-back operators could map
        padded-boundary artifacts back into the window.
        """
        try:
            self._exec_body(script.body)
        except _ReturnSignal as signal:
            return signal.value
        return None

    def _finish(self, value):
        if isinstance(value, Calendar):
            return clip_to_window(value, self.context.window)
        return value

    # -- statements ----------------------------------------------------------------

    def _exec_body(self, body) -> None:
        tracer = self.context.tracer
        if tracer is None:
            for stmt in body:
                self._exec(stmt)
            return
        for stmt in body:
            with tracer.span(f"interp.stmt.{type(stmt).__name__}"):
                self._exec(stmt)

    def _exec(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.context.env[stmt.name.lower()] = self._eval(stmt.expr)
        elif isinstance(stmt, ast.Return):
            raise _ReturnSignal(self._eval(stmt.expr))
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr)
        elif isinstance(stmt, ast.If):
            if self._truthy(self._eval(stmt.condition)):
                self._exec_body(stmt.then_body)
            else:
                self._exec_body(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt)
        else:
            raise EvaluationError(f"unknown statement {stmt!r}")

    def _exec_while(self, stmt: ast.While) -> None:
        iterations = 0
        while self._truthy(self._eval(stmt.condition)):
            iterations += 1
            if iterations > self.context.max_loop_iterations:
                raise LoopLimitError(
                    f"while loop exceeded "
                    f"{self.context.max_loop_iterations} iterations")
            self._exec_body(stmt.body)
            if self.context.while_hook is not None:
                if not self.context.while_hook(self.context):
                    break

    @staticmethod
    def _truthy(value) -> bool:
        if value is None:
            return False
        if isinstance(value, Calendar):
            return not value.is_empty()
        if isinstance(value, str):
            return bool(value)
        return bool(value)

    # -- expressions ------------------------------------------------------------------

    def _eval(self, node: ast.Expr):
        method = self._DISPATCH.get(type(node))
        if method is None:
            raise EvaluationError(f"cannot evaluate {node!r}")
        return method(self, node)

    def _eval_name(self, node: ast.Name) -> Calendar:
        key = node.ident.lower()
        if key in self.context.env:
            return self.context.env[key]
        definition = self.context.resolver(node.ident)
        if definition is None:
            raise NameResolutionError(f"unknown calendar {node.ident!r}")
        return self._eval_definition(node.ident, definition)

    def _eval_definition(self, name: str, definition) -> Calendar:
        if isinstance(definition, BasicDef):
            return self.context.materialise_basic(definition.granularity)
        if isinstance(definition, ExplicitDef):
            return definition.values
        if isinstance(definition, DerivedDef):
            cache_key = ("derived", name.lower(), self.context.window,
                         self.context.unit)
            if cache_key in self.context.cache:
                return self.context.cache[cache_key]
            child = self.context.spawn_env()
            result = Interpreter(child).execute_raw(definition.script)
            if not isinstance(result, Calendar):
                raise EvaluationError(
                    f"derivation script of {name!r} did not return a calendar")
            if definition.granularity is not None:
                result = result.with_granularity(definition.granularity)
            self.context.cache[cache_key] = result
            return result
        raise EvaluationError(f"unknown definition kind for {name!r}")

    def _eval_today(self, node: ast.Today) -> Calendar:
        if self.context.today is None:
            raise EvaluationError("'today' is not bound in this context")
        return Calendar.point(self.context.today, self.context.unit)

    def _eval_interval_lit(self, node: ast.IntervalLit) -> Calendar:
        return Calendar.interval(node.lo, node.hi, self.context.unit)

    def _eval_string(self, node: ast.StringLit) -> str:
        return node.value

    def _eval_number(self, node: ast.NumberLit):
        raise EvaluationError(
            f"bare number {node.value} is not a calendar expression "
            "(numbers are only valid as function arguments or labels)")

    def _eval_foreach(self, node: ast.ForEach) -> Calendar:
        left = self._require_calendar(self._eval(node.left), node.left)
        right = self._require_calendar(self._eval(node.right), node.right)
        if left.order != 1:
            left = left.flatten()
        reference: "Calendar | Interval"
        if right.order == 1 and len(right) == 1:
            reference = right[0]
        else:
            reference = right
        return foreach(node.op, left, reference, strict=node.strict)

    def _eval_select(self, node: ast.Select) -> Calendar:
        child = self._require_calendar(self._eval(node.child), node.child)
        return select(child, node.predicate)

    def _eval_label_select(self, node: ast.LabelSelect) -> Calendar:
        child = self._require_calendar(self._eval(node.child), node.child)
        return label_select(child, node.label)

    def _eval_setop(self, node: ast.SetOp) -> Calendar:
        left = self._require_calendar(self._eval(node.left), node.left)
        right = self._require_calendar(self._eval(node.right), node.right)
        if left.order != 1 or right.order != 1:
            raise EvaluationError(
                f"set operator {node.op!r} requires order-1 operands")
        if node.op == "+":
            return left.union(right)
        if node.op == "-":
            return left.difference(right)
        if node.op == "&":
            return left.intersection(right)
        raise EvaluationError(f"unknown set operator {node.op!r}")

    def _eval_funcall(self, node: ast.FunCall):
        if node.name == "generate":
            return self._call_generate(node)
        if node.name == "caloperate":
            return self._call_caloperate(node)
        if node.name in ("point", "date"):
            return self._call_point(node)
        if node.name == "flatten":
            if len(node.args) != 1 or not isinstance(node.args[0], ast.Expr):
                raise EvaluationError("flatten() takes one calendar argument")
            value = self._require_calendar(self._eval(node.args[0]),
                                           node.args[0])
            return value.flatten()
        if node.name == "shift":
            return self._call_shift(node)
        if node.name == "instants":
            if len(node.args) != 1 or not isinstance(node.args[0],
                                                     ast.Expr):
                raise EvaluationError(
                    "instants() takes one calendar argument")
            value = self._require_calendar(self._eval(node.args[0]),
                                           node.args[0])
            points = sorted({t for iv in value.iter_intervals()
                             for t in iv})
            return Calendar.from_intervals([(t, t) for t in points],
                                           value.granularity)
        if node.name == "hull":
            if len(node.args) != 1 or not isinstance(node.args[0],
                                                     ast.Expr):
                raise EvaluationError("hull() takes one calendar argument")
            value = self._require_calendar(self._eval(node.args[0]),
                                           node.args[0])
            span = value.span()
            if span is None:
                return Calendar.from_intervals([], value.granularity)
            return Calendar.from_intervals([span], value.granularity)
        custom = self.context.functions.get(node.name)
        if custom is not None:
            args = [self._eval(a) if isinstance(a, ast.Expr) else a
                    for a in node.args]
            return custom(self.context, args)
        raise EvaluationError(f"unknown function {node.name!r}")

    def _call_generate(self, node: ast.FunCall) -> Calendar:
        args = list(node.args)
        if len(args) not in (4, 5):
            raise EvaluationError(
                "generate(cal, unit, start, end[, mode]) takes 4 or 5 "
                f"arguments, got {len(args)}")
        cal_name = self._name_arg(args[0], "generate calendar")
        unit_name = self._name_arg(args[1], "generate unit")
        start = self._window_arg(args[2])
        end = self._window_arg(args[3])
        mode = "clip"
        if len(args) == 5:
            if not isinstance(args[4], ast.StringLit):
                raise EvaluationError("generate mode must be a string")
            mode = args[4].value
        return self.context.generate_call(cal_name, unit_name,
                                          (start, end), mode=mode)

    def _call_caloperate(self, node: ast.FunCall) -> Calendar:
        args = list(node.args)
        if len(args) < 3:
            raise EvaluationError(
                "caloperate(cal, end, count...) takes at least 3 arguments")
        source = self._require_calendar(self._eval(args[0]), args[0])
        if source.order != 1:
            source = source.flatten()
        end_arg = args[1]
        if end_arg == "*":
            end: int | None = None
        elif isinstance(end_arg, ast.NumberLit):
            end = end_arg.value
        elif isinstance(end_arg, ast.StringLit):
            end = self.context.system.day_of(end_arg.value)
        else:
            raise EvaluationError(
                "caloperate end must be *, a tick number, or a date string")
        counts: list[int] = []
        for arg in args[2:]:
            if not isinstance(arg, ast.NumberLit):
                raise EvaluationError("caloperate counts must be integers")
            counts.append(arg.value)
        return caloperate(source, tuple(counts), end)

    def _call_shift(self, node: ast.FunCall) -> Calendar:
        """shift(expr, n): translate every interval by n unit ticks."""
        if len(node.args) != 2 or not isinstance(node.args[0], ast.Expr) \
                or not isinstance(node.args[1], ast.NumberLit):
            raise EvaluationError(
                "shift(calendar, n) takes a calendar and an integer")
        value = self._require_calendar(self._eval(node.args[0]),
                                       node.args[0])
        delta = node.args[1].value
        if value.order != 1:
            value = value.flatten()
        return value.shifted(delta)

    def _call_point(self, node: ast.FunCall) -> Calendar:
        if len(node.args) != 1 or not isinstance(node.args[0], ast.StringLit):
            raise EvaluationError('point("date string") takes one string')
        if self.context.unit != Granularity.DAYS:
            raise EvaluationError(
                "point() literals require a DAYS evaluation unit")
        day = self.context.system.day_of(node.args[0].value)
        return Calendar.point(day, Granularity.DAYS)

    @staticmethod
    def _name_arg(arg, what: str) -> str:
        if isinstance(arg, ast.Name):
            return arg.ident
        if isinstance(arg, ast.StringLit):
            return arg.value
        raise EvaluationError(f"{what} must be a calendar name")

    def _window_arg(self, arg):
        if isinstance(arg, ast.StringLit):
            return arg.value
        if isinstance(arg, ast.NumberLit):
            return arg.value
        raise EvaluationError(
            "generate window bounds must be date strings or tick numbers")

    def _require_calendar(self, value, node) -> Calendar:
        if not isinstance(value, Calendar):
            raise EvaluationError(
                f"expected a calendar from {node}, got {type(value).__name__}")
        return value

    _DISPATCH = {
        ast.Name: _eval_name,
        ast.Today: _eval_today,
        ast.IntervalLit: _eval_interval_lit,
        ast.StringLit: _eval_string,
        ast.NumberLit: _eval_number,
        ast.ForEach: _eval_foreach,
        ast.Select: _eval_select,
        ast.LabelSelect: _eval_label_select,
        ast.SetOp: _eval_setop,
        ast.FunCall: _eval_funcall,
    }
