"""repro — Calendars and Temporal Rules in Next Generation Databases.

A full reproduction of Chandra, Segev & Stonebraker (ICDE 1994):

* :mod:`repro.core` — the zero-skipping time axis, Allen-style interval
  relations, order-n calendars, the foreach/selection algebra, basic
  calendars with ``generate``/``caloperate``, chronology and
  calendar-parameterised date arithmetic;
* :mod:`repro.lang` — the calendar expression language (lexer, parser,
  factorizer, planner with window narrowing, plan VM, script interpreter);
* :mod:`repro.catalog` — the CALENDARS catalog and standard definitions;
* :mod:`repro.db` — an in-memory extensible relational substrate
  (mini-POSTGRES): ADTs, operators, Postquel-like queries, indexes;
* :mod:`repro.rules` — event rules and temporal rules with RULE-INFO /
  RULE-TIME and the DBCRON daemon;
* :mod:`repro.timeseries` — regular time series over calendars and
  pattern selection;
* :mod:`repro.finance` — day-count conventions, business days, option
  expirations, bonds.

Quickstart — the :class:`Session` facade wires the whole stack (registry,
database, rules, clock, instrumentation) behind one constructor::

    from repro import Session

    session = Session("Jan 1 1987")
    cal = session.eval("[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS")
    # -> the third week in January 1993

    print(session.explain("AM_BUS_DAYS - HOLIDAYS").render())  # the plan
    profile = session.profile("[22]/DAYS:during:MONTHS")
    print(profile.render())          # per-step timing tree
    session.metrics()                # counters / latency histograms

The individual constructors keep working for piecemeal use::

    from repro import CalendarSystem, CalendarRegistry
    from repro.catalog import install_standard_calendars

    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"))
    install_standard_calendars(registry)
    cal = registry.eval_expression(
        "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS")

Every library error derives from :class:`repro.errors.ReproError`, whose
``context`` payload carries the failing script/query text.
"""

from repro.catalog import CalendarRegistry, install_standard_calendars
from repro.core import (
    Calendar,
    CalendarSystem,
    CivilDate,
    Granularity,
    Interval,
)
from repro.db import Database
from repro.errors import ReproError
from repro.rules import DBCron, RuleManager, SimulatedClock
from repro.session import Explanation, Profile, Session
from repro.timeseries import RegularTimeSeries

__version__ = "1.0.0"

__all__ = [
    "Interval", "Calendar", "CalendarSystem", "Granularity", "CivilDate",
    "CalendarRegistry", "install_standard_calendars",
    "Database", "RuleManager", "SimulatedClock", "DBCron",
    "RegularTimeSeries",
    "Session", "Explanation", "Profile", "ReproError",
    "__version__",
]
