"""Unit and daemon-integration tests for per-tenant admission control."""

import pytest

from repro.catalog import CalendarRegistry
from repro.core import CalendarSystem
from repro.db import Database
from repro.rules import (
    DBCron,
    RuleManager,
    SimulatedClock,
    TenantThrottle,
    ThrottledError,
    TokenBucket,
)


class TestTokenBucket:
    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 5)
        with pytest.raises(ValueError):
            TokenBucket(1, 0)

    def test_starts_full_and_spends_down(self):
        bucket = TokenBucket(rate=1, burst=3)
        assert [bucket.admit(1) for _ in range(4)] == \
            [True, True, True, False]

    def test_refills_per_elapsed_tick_capped_at_burst(self):
        bucket = TokenBucket(rate=1, burst=3)
        for _ in range(3):
            bucket.admit(1)
        assert not bucket.admit(1)       # empty at tick 1
        assert bucket.admit(2)           # +1 token at tick 2
        assert not bucket.admit(2)
        assert bucket.admit(100)         # long idle refills...
        assert bucket.admit(100)
        assert bucket.admit(100)
        assert not bucket.admit(100)     # ...but only up to burst

    def test_grant_is_partial_and_whole_tokens(self):
        bucket = TokenBucket(rate=2, burst=4)
        assert bucket.grant(1, 10) == 4  # starts full
        assert bucket.grant(1, 10) == 0  # same tick: no refill
        assert bucket.grant(2, 10) == 2  # one tick later: +rate

    def test_time_never_flows_backwards(self):
        bucket = TokenBucket(rate=1, burst=1)
        assert bucket.admit(10)
        # A stale now must not mint tokens or crash.
        assert not bucket.admit(5)
        assert bucket.admit(11)


class TestTenantThrottle:
    def test_unlimited_by_default(self):
        throttle = TenantThrottle()
        assert throttle.grant_fires("t", 1, 1000) == 1000
        assert throttle.admit_registration("t", 1)
        assert throttle.drops() == 0

    def test_fire_budget_sheds_the_excess(self):
        throttle = TenantThrottle(fires_per_tick=2, fire_burst=2)
        assert throttle.grant_fires("t", 5, 5) == 2
        stats = throttle.stats()["t"]
        assert stats["fired"] == 2
        assert stats["shed"] == 3
        assert throttle.drops() == 3

    def test_registration_budget_denies_the_excess(self):
        throttle = TenantThrottle(registrations_per_tick=1,
                                  registration_burst=2)
        grants = [throttle.admit_registration("t", 1) for _ in range(3)]
        assert grants == [True, True, False]
        assert throttle.stats()["t"]["denied"] == 1

    def test_tenants_have_independent_buckets(self):
        throttle = TenantThrottle(fires_per_tick=1, fire_burst=1)
        assert throttle.grant_fires("a", 1, 1) == 1
        assert throttle.grant_fires("b", 1, 1) == 1  # a's spend is a's

    def test_per_tenant_override(self):
        throttle = TenantThrottle(fires_per_tick=1, fire_burst=1)
        throttle.set_limits("vip")  # all None = unlimited
        assert throttle.grant_fires("vip", 1, 50) == 50
        assert throttle.grant_fires("free", 1, 50) == 1


# -- daemon integration -------------------------------------------------------


@pytest.fixture()
def stack():
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=3)
    db = Database(calendars=registry)
    manager = RuleManager(db)
    clock = SimulatedClock(now=1)
    return registry, db, manager, clock


class TestRegistrationThrottling:
    def test_over_budget_declaration_raises(self, stack):
        registry, _, manager, clock = stack
        registry.define("T5", values=[(5, 5)], granularity="DAYS")
        manager.throttle = TenantThrottle(registrations_per_tick=1,
                                          registration_burst=2)
        manager.clock = clock
        manager.declare_temporal("a", expression="T5", callback=lambda d, t:
                                 None, tenant="acme")
        manager.declare_temporal("b", expression="T5", callback=lambda d, t:
                                 None, tenant="acme")
        with pytest.raises(ThrottledError):
            manager.declare_temporal("c", expression="T5",
                                     callback=lambda d, t: None,
                                     tenant="acme")
        # The refused rule left nothing behind, and other tenants are
        # unaffected.
        assert "c" not in manager.temporal_rules
        manager.declare_temporal("d", expression="T5",
                                 callback=lambda d, t: None, tenant="beta")

    def test_budget_refills_as_the_clock_advances(self, stack):
        registry, _, manager, clock = stack
        registry.define("T9", values=[(9, 9)], granularity="DAYS")
        manager.throttle = TenantThrottle(registrations_per_tick=1,
                                          registration_burst=1)
        manager.clock = clock
        manager.declare_temporal("a", expression="T9",
                                 callback=lambda d, t: None)
        with pytest.raises(ThrottledError):
            manager.declare_temporal("b", expression="T9",
                                     callback=lambda d, t: None)
        clock.advance(1)  # one tick later there is budget again
        manager.declare_temporal("b", expression="T9",
                                 callback=lambda d, t: None)


class TestFireShedding:
    @pytest.mark.parametrize("scheduler", ["heap", "wheel"])
    def test_sheds_lowest_priority_first(self, stack, scheduler):
        registry, _, manager, clock = stack
        registry.define("T5", values=[(5, 5)], granularity="DAYS")
        throttle = TenantThrottle(fires_per_tick=1, fire_burst=1)
        cron = DBCron(manager, clock, period=7, scheduler=scheduler,
                      throttle=throttle)
        fired = []
        low = manager.declare_temporal(
            "low", expression="T5", tenant="acme", priority=0,
            callback=lambda d, t: fired.append("low"), after=1)
        high = manager.declare_temporal(
            "high", expression="T5", tenant="acme", priority=5,
            callback=lambda d, t: fired.append("high"), after=1)
        cron.run_until(20)
        assert fired == ["high"]
        assert high.shed_count == 0
        assert low.shed_count == 1
        assert cron.stats.sheds == 1
        assert cron.stats.fires == 1
        assert throttle.stats()["acme"] == {
            "fired": 1, "shed": 1, "registered": 0, "denied": 0}
        assert clock.now == 20  # shedding never stalls the clock

    def test_shed_rule_is_rescheduled_not_dropped(self, stack):
        # Shedding skips *one* occurrence: the rule stays registered and
        # competes again at its next trigger point.
        registry, _, manager, clock = stack
        registry.define("TWICE", values=[(5, 5), (9, 9)],
                        granularity="DAYS")
        registry.define("ONCE", values=[(5, 5)], granularity="DAYS")
        throttle = TenantThrottle(fires_per_tick=1, fire_burst=1)
        cron = DBCron(manager, clock, period=7, throttle=throttle)
        fired = []
        manager.declare_temporal(
            "steady", expression="TWICE", tenant="acme", priority=0,
            callback=lambda d, t: fired.append(("steady", t)), after=1)
        manager.declare_temporal(
            "vip", expression="ONCE", tenant="acme", priority=9,
            callback=lambda d, t: fired.append(("vip", t)), after=1)
        cron.run_until(20)
        # Tick 5: both due, budget 1 -> vip wins, steady shed to 9.
        # Tick 9: steady alone, refilled budget -> fires.
        assert fired == [("vip", 5), ("steady", 9)]
        assert manager.temporal_rules["steady"].shed_count == 1

    def test_other_tenants_unaffected_by_a_storm(self, stack):
        registry, _, manager, clock = stack
        registry.define("T5", values=[(5, 5)], granularity="DAYS")
        throttle = TenantThrottle(fires_per_tick=1, fire_burst=1)
        throttle.set_limits("paid")  # unlimited
        cron = DBCron(manager, clock, period=7, throttle=throttle)
        fired = []
        for i in range(5):
            manager.declare_temporal(
                f"noisy{i}", expression="T5", tenant="free",
                callback=(lambda n: lambda d, t: fired.append(n))(
                    f"noisy{i}"), after=1)
        manager.declare_temporal(
            "report", expression="T5", tenant="paid",
            callback=lambda d, t: fired.append("report"), after=1)
        cron.run_until(20)
        assert "report" in fired
        assert len([n for n in fired if n.startswith("noisy")]) == 1
        assert throttle.stats()["free"]["shed"] == 4

    def test_ties_shed_by_wave_position(self, stack):
        # Equal priority: later wave positions (later arms) shed first,
        # so the outcome is deterministic.
        registry, _, manager, clock = stack
        registry.define("T5", values=[(5, 5)], granularity="DAYS")
        throttle = TenantThrottle(fires_per_tick=2, fire_burst=2)
        cron = DBCron(manager, clock, period=7, throttle=throttle)
        fired = []
        for name in ("first", "second", "third"):
            manager.declare_temporal(
                name, expression="T5", tenant="acme",
                callback=(lambda n: lambda d, t: fired.append(n))(name),
                after=1)
        cron.run_until(10)
        assert fired == ["first", "second"]

    def test_no_throttle_means_no_shedding(self, stack):
        registry, _, manager, clock = stack
        registry.define("T5", values=[(5, 5)], granularity="DAYS")
        cron = DBCron(manager, clock, period=7)
        fired = []
        for i in range(10):
            manager.declare_temporal(
                f"r{i}", expression="T5",
                callback=lambda d, t: fired.append(t), after=1)
        cron.run_until(10)
        assert len(fired) == 10
        assert cron.stats.sheds == 0
