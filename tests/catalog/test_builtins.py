"""Unit tests for the builtin calendars, cross-checked against datetime."""

import datetime

import pytest

from repro.catalog import (
    WEEKDAY_NAMES,
    last_weekday_of_month,
    nth_weekday_of_month,
    us_federal_holidays,
)
from repro.core import CivilDate


class TestWeekdayCalendars:
    @pytest.mark.parametrize("index,name", enumerate(WEEKDAY_NAMES,
                                                     start=1))
    def test_each_weekday_calendar(self, registry, index, name):
        cal = registry.evaluate(name, window=("Jan 1 1993", "Mar 31 1993"))
        assert len(cal) >= 12
        for iv in cal.elements:
            assert registry.system.epoch.weekday_of(iv.lo) == index

    def test_figure1_tuesdays_matches_datetime(self, registry):
        cal = registry.evaluate("Tuesdays",
                                window=("Jan 1 1993", "Dec 31 1993"))
        expected = []
        d = datetime.date(1993, 1, 1)
        while d.year == 1993:
            if d.isoweekday() == 2:
                expected.append(d)
            d += datetime.timedelta(days=1)
        got = [registry.system.date_of(iv.lo) for iv in cal.elements]
        assert [(g.year, g.month, g.day) for g in got] == \
            [(e.year, e.month, e.day) for e in expected]


class TestDerivedStandards:
    def test_weekdays_excludes_weekends(self, registry):
        cal = registry.evaluate("Weekdays",
                                window=("Jan 1 1993", "Jan 31 1993"))
        assert all(registry.system.epoch.weekday_of(iv.lo) <= 5
                   for iv in cal.iter_intervals())

    def test_weekends(self, registry):
        cal = registry.evaluate("Weekends",
                                window=("Jan 1 1993", "Jan 31 1993"))
        assert all(registry.system.epoch.weekday_of(iv.lo) >= 6
                   for iv in cal.iter_intervals())

    def test_quarters(self, registry):
        cal = registry.evaluate("Quarters",
                                window=("Jan 1 1993", "Dec 31 1993"))
        first = cal.elements[0]
        assert str(registry.system.date_of(first.lo)) == "Jan 1 1993"
        assert str(registry.system.date_of(first.hi)) == "Mar 31 1993"

    def test_ldom(self, registry):
        cal = registry.evaluate("LDOM",
                                window=("Jan 1 1993", "Mar 31 1993"))
        dates = [str(registry.system.date_of(iv.lo))
                 for iv in cal.elements]
        assert dates == ["Jan 31 1993", "Feb 28 1993", "Mar 31 1993"]

    def test_am_bus_days_excludes_holidays_and_weekends(self, registry):
        cal = registry.evaluate("AM_BUS_DAYS",
                                window=("Jul 1 1993", "Jul 31 1993"))
        days = [registry.system.date_of(iv.lo).day
                for iv in cal.iter_intervals()]
        assert 5 not in days  # observed Independence Day (Jul 4 = Sunday)
        assert all(registry.system.epoch.weekday_of(iv.lo) <= 5
                   for iv in cal.iter_intervals())


class TestNthWeekday:
    def test_third_friday_nov_1993(self):
        assert nth_weekday_of_month(1993, 11, 5, 3) == \
            CivilDate(1993, 11, 19)

    def test_first_monday(self):
        assert nth_weekday_of_month(1993, 9, 1, 1) == CivilDate(1993, 9, 6)

    def test_last_monday_may(self):
        assert last_weekday_of_month(1993, 5, 1) == CivilDate(1993, 5, 31)

    def test_matches_datetime_oracle(self):
        for year in (1987, 1992, 1996, 2000):
            for month in (1, 2, 6, 12):
                for wday in (1, 3, 5, 7):
                    got = nth_weekday_of_month(year, month, wday, 1)
                    d = datetime.date(year, month, 1)
                    while d.isoweekday() != wday:
                        d += datetime.timedelta(days=1)
                    assert (got.year, got.month, got.day) == \
                        (d.year, d.month, d.day)


class TestUsHolidays:
    def test_1993_schedule(self):
        names = {(d.month, d.day) for d in us_federal_holidays(1993)}
        assert (1, 1) in names       # New Year's (Friday)
        assert (1, 18) in names      # MLK: 3rd Monday
        assert (5, 31) in names      # Memorial Day
        assert (7, 5) in names       # July 4 observed (Sunday -> Monday)
        assert (11, 25) in names     # Thanksgiving
        assert (12, 24) in names     # Christmas observed (Sat -> Friday)

    def test_unobserved_keeps_actual_dates(self):
        names = {(d.month, d.day) for d in us_federal_holidays(
            1993, observed=False)}
        assert (7, 4) in names
        assert (12, 25) in names

    def test_ten_holidays_most_years(self):
        assert len(us_federal_holidays(1995)) == 10

    def test_all_observed_fall_on_weekdays(self):
        for year in range(1987, 2007):
            for d in us_federal_holidays(year):
                assert datetime.date(d.year, d.month,
                                     d.day).isoweekday() <= 5
