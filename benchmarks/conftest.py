"""Shared benchmark fixtures: populated registries over long horizons.

A session-finish hook writes ``BENCH_core.json`` to the repository root
with every benchmark's timing summary (p50/p90, intervals/sec when the
benchmark reports interval counts) plus the process-wide
materialisation-cache counters (hit ratio included), so successive runs
can be diffed without re-parsing pytest-benchmark's own storage.

Two sources feed the ``benchmarks`` list:

* pytest-benchmark fixtures (``benchmark(...)``) — read from the plugin's
  session stats;
* :func:`record_benchmark` — self-timed benchmarks (the parallel
  throughput suite times ``eval_many`` batches with ``perf_counter``
  directly) register their samples here and land in the report even when
  the plugin runs with ``--benchmark-disable`` (the CI smoke mode).

Entries are **merged by name with the previous report**: a partial run
(one file, a smoke pass) updates its own entries and leaves the rest of
the recorded perf trajectory intact, instead of overwriting the file
with an empty list.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

import pytest

from repro.catalog import (
    CalendarRegistry,
    install_standard_calendars,
    install_us_holidays,
)
from repro.core import CalendarSystem
from repro.core.matcache import get_default_cache
from repro.db import Database

BENCH_REPORT = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: Rows registered by self-timed benchmarks this session (name -> row).
_MANUAL_ROWS: dict[str, dict] = {}


def build_registry(horizon_years: int = 30,
                   matcache=None) -> CalendarRegistry:
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=horizon_years,
                                matcache=matcache)
    install_standard_calendars(registry)
    install_us_holidays(registry, 1987, 1987 + horizon_years - 1)
    return registry


@pytest.fixture(scope="module")
def registry() -> CalendarRegistry:
    return build_registry()


@pytest.fixture(scope="module")
def bench_db(registry) -> Database:
    return Database(calendars=registry)


def _percentile(samples: list[float], q: float) -> float:
    """The q-quantile (0..1) of ``samples`` by nearest-rank."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def record_benchmark(name: str, samples: "list[float]",
                     intervals: int | None = None, **extra) -> dict:
    """Register a self-timed benchmark row for BENCH_core.json.

    ``samples`` are per-round wall times in seconds; ``intervals`` (when
    given) is the number of calendar intervals produced per round, from
    which ``intervals_per_s`` is derived.  Extra keyword pairs are kept
    verbatim (e.g. ``workers=4``, ``speedup=2.3``).
    """
    if not samples:
        raise ValueError(f"benchmark {name!r} recorded no samples")
    mean = statistics.fmean(samples)
    row = {
        "name": name,
        "mean_s": mean,
        "min_s": min(samples),
        "p50_s": _percentile(samples, 0.50),
        "p90_s": _percentile(samples, 0.90),
        "rounds": len(samples),
    }
    if intervals is not None and mean > 0:
        row["intervals_per_s"] = intervals / mean
    row.update(extra)
    _MANUAL_ROWS[name] = row
    return row


def _benchmark_rows(session) -> list[dict]:
    """Per-benchmark timing summaries, tolerant of plugin internals."""
    rows = []
    try:
        benchmarks = session.config._benchmarksession.benchmarks
    except AttributeError:
        return rows
    for bench in benchmarks:
        try:
            stats = bench.stats
            row = {"name": bench.fullname,
                   "mean_s": stats.mean,
                   "min_s": stats.min,
                   "p50_s": stats.median,
                   "p90_s": _percentile(list(stats.sorted_data), 0.90),
                   "rounds": stats.rounds}
            intervals = (bench.extra_info or {}).get("intervals")
            if intervals and stats.mean > 0:
                row["intervals_per_s"] = intervals / stats.mean
            rows.append(row)
        except (AttributeError, TypeError):
            continue
    return rows


def _previous_rows() -> dict[str, dict]:
    """The ``benchmarks`` entries of the existing report, keyed by name."""
    try:
        previous = json.loads(BENCH_REPORT.read_text())
    except (OSError, ValueError):
        return {}
    rows = previous.get("benchmarks")
    if not isinstance(rows, list):
        return {}
    return {row["name"]: row for row in rows
            if isinstance(row, dict) and "name" in row}


def pytest_sessionfinish(session, exitstatus):
    """Write BENCH_core.json: wall times + materialisation-cache stats.

    Rows from this run (plugin-collected and manually recorded) override
    same-named rows of the previous report; other previous rows are kept,
    so smoke passes that time nothing (``--benchmark-disable`` collects
    stats-less Metadata objects) no longer wipe the recorded trajectory.
    """
    merged = _previous_rows()
    for row in _benchmark_rows(session):
        merged[row["name"]] = row
    merged.update(_MANUAL_ROWS)
    cache_stats = get_default_cache().stats()
    report = {
        "benchmarks": sorted(merged.values(), key=lambda r: r["name"]),
        "matcache": cache_stats,
        "cache_hit_ratio": cache_stats["hit_ratio"],
    }
    try:
        BENCH_REPORT.write_text(json.dumps(report, indent=2) + "\n")
    except OSError:
        pass
