"""Compiled periodic sets agree with the interpreter oracle.

Two strategies:

* ``compilable_expressions`` leans on weekly and finite shapes (cheap
  to compile at the full budget tier) so most draws exercise the
  compiled arithmetic — ``contains`` / ``next_occurrence`` /
  ``iter_from`` are checked point-for-point against the membership set
  the eager interpreter produces;
* the broad ``cel_expressions`` fuzz (same grammar as
  ``test_lang_props``) checks the *clean fallback* property: for any
  parseable expression the compiler either returns a parity-correct
  set or ``None`` — it never raises and never returns a wrong answer.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from hypothesis import given, settings, strategies as st

from repro.catalog import (
    CalendarRegistry,
    install_standard_calendars,
    install_us_holidays,
)
from repro.core import CalendarSystem
from repro.core.matcache import MaterialisationCache

#: One registry for the whole module: compiles and oracle evaluations
#: are memoised in its cache, so repeated draws of the same expression
#: cost a dict lookup instead of a recompile.
_REGISTRY = None


def _registry() -> CalendarRegistry:
    global _REGISTRY
    if _REGISTRY is None:
        # periodic=True explicitly: the explicit argument beats the
        # REPRO_PERIODIC env var, so the parity properties still run
        # under CI's gated-off suite pass.
        _REGISTRY = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                     default_horizon_years=25,
                                     matcache=MaterialisationCache(),
                                     periodic=True)
        install_standard_calendars(_REGISTRY)
        install_us_holidays(_REGISTRY, 1987, 2006)
    return _REGISTRY


# Oracle window: wide enough to hold every patch the strategies can
# produce, probed only in its interior (one max-element-span margin on
# each side) so keep-whole-overlap clipping cannot disturb parity.
_ORACLE_WINDOW = ("Jan 1 1990", "Dec 31 1996")
_INTERIOR_MARGIN = 400


#: Single-day selectors yield order-1 groups and may be used bare;
#: multi-day selectors build order-2 calendars and must be flattened
#: before a set operator sees them (`&`/`+`/`-` need order-1 operands).
single_selectors = st.sampled_from(
    ["[1]/", "[2]/", "[3]/", "[4]/", "[5]/", "[6]/", "[7]/",
     "[n]/", "[-1]/"])
multi_selectors = st.sampled_from(["[1-3]/", "[2;5]/", "[1-5]/"])


@st.composite
def weekly_operand(draw):
    if draw(st.booleans()):
        return f"flatten({draw(multi_selectors)}DAYS:during:WEEKS)"
    base = f"{draw(single_selectors)}DAYS:during:WEEKS"
    if draw(st.booleans()):
        return f"flatten({base})"
    return base


@st.composite
def compilable_expressions(draw):
    base = draw(weekly_operand())
    form = draw(st.sampled_from(["plain", "year", "union", "minus"]))
    if form == "year":
        return f"({base}) & 1993/YEARS"
    if form == "union":
        return f"({base}) + ({draw(weekly_operand())})"
    if form == "minus":
        return f"({base}) - (({draw(weekly_operand())}) & 1993/YEARS)"
    return base


def _oracle_runs(registry, text):
    """Sorted covered runs of the eager evaluation over the window."""
    cal = registry.eval_expression(text, window=_ORACLE_WINDOW,
                                   optimize=False)
    flat = cal.flatten()
    return [(iv.lo, iv.hi) for iv in flat.elements]


def _covered(runs, tick) -> bool:
    index = bisect_right(runs, (tick, float("inf"))) - 1
    return index >= 0 and runs[index][1] >= tick


def _next_after(runs, tick):
    """The smallest covered axis tick strictly after ``tick`` (zero-skip)."""
    start = tick + 1
    if start == 0:
        start = 1
    index = bisect_left([hi for _, hi in runs], start)
    if index == len(runs):
        return None
    lo, _ = runs[index]
    nxt = max(lo, start)
    return 1 if nxt == 0 else nxt


def _interior(registry):
    lo = registry.system.day_of(_ORACLE_WINDOW[0]) + _INTERIOR_MARGIN
    hi = registry.system.day_of(_ORACLE_WINDOW[1]) - _INTERIOR_MARGIN
    return lo, hi


@settings(max_examples=60, deadline=None)
@given(compilable_expressions(), st.integers(min_value=0, max_value=1500))
def test_contains_and_next_match_oracle(text, offset):
    registry = _registry()
    pset = registry.periodic_set(text)
    assert pset is not None, f"{text!r} unexpectedly fell back"
    runs = _oracle_runs(registry, text)
    lo, hi = _interior(registry)
    tick = lo + offset
    assert tick < hi
    assert pset.contains(tick) == _covered(runs, tick), \
        f"contains({tick}) disagrees for {text!r}"
    expected = _next_after(runs, tick)
    got = pset.next_occurrence(tick)
    if expected is not None and expected <= hi:
        assert got == expected, \
            f"next_occurrence({tick}) disagrees for {text!r}"


@settings(max_examples=40, deadline=None)
@given(compilable_expressions(), st.integers(min_value=0, max_value=1500))
def test_iter_from_matches_oracle_prefix(text, offset):
    registry = _registry()
    pset = registry.periodic_set(text)
    assert pset is not None
    runs = _oracle_runs(registry, text)
    lo, hi = _interior(registry)
    tick = lo + offset

    expected, cursor = [], tick - 1
    while len(expected) < 8:
        cursor = _next_after(runs, cursor)
        if cursor is None or cursor > hi:
            break
        expected.append(cursor)
    got = []
    for occurrence in pset.iter_from(tick):
        if occurrence > hi or len(got) == len(expected):
            break
        got.append(occurrence)
    assert got == expected, f"iter_from({tick}) disagrees for {text!r}"


# -- clean fallback over the broad expression grammar --------------------------

cel_ops = st.sampled_from(["during", "overlaps", "meets", "<", "<="])
cel_names = st.sampled_from(["DAYS", "WEEKS", "MONTHS", "YEARS",
                             "HOLIDAYS", "AM_BUS_DAYS", "Jan-1993"])
cel_selectors = st.sampled_from(["", "[1]/", "[n]/", "[-3]/", "[2-4]/",
                                 "[1;3]/"])


@st.composite
def cel_expressions(draw):
    depth = draw(st.integers(min_value=1, max_value=4))
    parts = [f"{draw(cel_selectors)}{draw(cel_names)}"
             for _ in range(depth)]
    text = parts[0]
    for part in parts[1:]:
        sep = draw(st.sampled_from([":", "."]))
        op = draw(cel_ops)
        if sep == "." and op in ("<", "<="):
            op = "overlaps"
        text += f"{sep}{op}{sep}{part}"
    suffix = draw(st.sampled_from(["", " + HOLIDAYS", " - HOLIDAYS"]))
    return text + suffix


@settings(max_examples=80, deadline=None)
@given(cel_expressions(), st.integers(min_value=0, max_value=1500))
def test_fallback_is_clean_or_parity_holds(text, offset):
    """periodic_set never raises; when it compiles, membership agrees."""
    registry = _registry()
    try:
        pset = registry.periodic_set(text, full=False)
    except Exception as exc:  # noqa: BLE001 — the property under test
        raise AssertionError(
            f"periodic_set({text!r}) raised {exc!r}") from exc
    if pset is None:
        return  # clean fallback: the eager pipeline stays authoritative
    runs = _oracle_runs(registry, text)
    lo, hi = _interior(registry)
    tick = lo + offset
    assert pset.contains(tick) == _covered(runs, tick), \
        f"compiled membership disagrees for {text!r} at {tick}"
