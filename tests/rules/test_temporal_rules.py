"""Unit tests for temporal rules and the RULE tables (E8/E9 support)."""

import pytest

from repro.db import RuleError
from repro.rules import RULE_INFO, RULE_TIME, RuleManager, TemporalRule


@pytest.fixture()
def manager(db):
    return RuleManager(db)


class TestDefinition:
    def test_expression_parsed_and_factorized(self, manager, db):
        rule = manager.define_temporal_rule(
            "tuesdays", "[2]/DAYS:during:WEEKS",
            callback=lambda d, t: None)
        assert rule.expression is not None
        assert rule.plan is not None

    def test_requires_action(self, db):
        with pytest.raises(RuleError):
            TemporalRule.define("r", "[2]/DAYS:during:WEEKS",
                                db.calendars)

    def test_rule_info_row_written(self, manager, db):
        manager.define_temporal_rule("tuesdays", "[2]/DAYS:during:WEEKS",
                                     callback=lambda d, t: None)
        rows = db.execute(
            f'retrieve (r.rulename, r.expression, r.eval_plan) '
            f'from r in {RULE_INFO}')
        assert rows.column("rulename") == ["tuesdays"]
        assert "generate(DAYS" in rows.rows[0]["eval_plan"]

    def test_rule_time_row_written(self, manager, db):
        after = db.system.day_of("Jan 1 1993")
        manager.define_temporal_rule("tuesdays", "[2]/DAYS:during:WEEKS",
                                     callback=lambda d, t: None,
                                     after=after)
        next_fire = manager.tables.next_fire_of("tuesdays")
        assert str(db.system.date_of(next_fire)) == "Jan 5 1993"

    def test_duplicate_name_rejected(self, manager):
        manager.define_temporal_rule("r", "[2]/DAYS:during:WEEKS",
                                     callback=lambda d, t: None)
        with pytest.raises(RuleError):
            manager.define_temporal_rule("r", "[3]/DAYS:during:WEEKS",
                                         callback=lambda d, t: None)

    def test_drop_removes_catalog_rows(self, manager, db):
        manager.define_temporal_rule("gone", "[2]/DAYS:during:WEEKS",
                                     callback=lambda d, t: None)
        manager.drop_rule("gone")
        assert db.execute(
            f"retrieve (r.rulename) from r in {RULE_INFO}").rows == []
        assert db.execute(
            f"retrieve (r.rulename) from r in {RULE_TIME}").rows == []


class TestFiring:
    def test_fire_runs_callback_and_reschedules(self, manager, db):
        fired = []
        after = db.system.day_of("Jan 1 1993")
        manager.define_temporal_rule("tuesdays", "[2]/DAYS:during:WEEKS",
                                     callback=lambda d, t: fired.append(t),
                                     after=after)
        first = manager.tables.next_fire_of("tuesdays")
        next_fire = manager.fire_temporal("tuesdays", first)
        assert fired == [first]
        assert next_fire == first + 7
        assert manager.tables.next_fire_of("tuesdays") == next_fire

    def test_ql_action_with_now_binding(self, manager, db):
        db.create_table("log", [("t", "abstime"), ("label", "text")])
        after = db.system.day_of("Jan 1 1993")
        manager.define_temporal_rule(
            "logger", "[2]/DAYS:during:WEEKS",
            actions=['append log (t = now.t, label = now.text)'],
            after=after)
        first = manager.tables.next_fire_of("logger")
        manager.fire_temporal("logger", first)
        rows = db.execute("retrieve (l.t, l.label) from l in log")
        assert rows.rows[0]["t"] == first
        assert rows.rows[0]["label"] == "Jan 5 1993"

    def test_fire_unknown_rule_is_noop(self, manager):
        assert manager.fire_temporal("ghost", 1) is None

    def test_next_trigger_none_when_expired(self, manager, db):
        registry = db.calendars
        registry.define("once", values=[(50, 50)], granularity="DAYS")
        rule = manager.define_temporal_rule("one_shot", "ONCE",
                                            callback=lambda d, t: None,
                                            after=1)
        assert manager.tables.next_fire_of("one_shot") == 50
        manager.fire_temporal("one_shot", 50)
        assert manager.tables.next_fire_of("one_shot") is None


class TestRuleTables:
    def test_due_within_uses_order(self, manager, db):
        for i, name in enumerate(["a", "b", "c"]):
            db.calendars.define(f"cal_{name}",
                                values=[(100 + i, 100 + i)],
                                granularity="DAYS")
            manager.define_temporal_rule(name, f"CAL_{name}",
                                         callback=lambda d, t: None,
                                         after=1)
        due = manager.tables.due_within(now=99, horizon=2)
        assert [name for _, name in due] == ["a", "b"]

    def test_set_next_fire_insert_update_delete(self, manager, db):
        tables = manager.tables
        tables.set_next_fire("x", 10)
        assert tables.next_fire_of("x") == 10
        tables.set_next_fire("x", 20)
        assert tables.next_fire_of("x") == 20
        tables.set_next_fire("x", None)
        assert tables.next_fire_of("x") is None
