"""The root of the unified repro exception hierarchy.

Every error the package raises — calendar-system errors
(:mod:`repro.core.errors`), expression-language errors
(:mod:`repro.lang.errors`) and database-substrate errors
(:mod:`repro.db.errors`) — derives from :class:`ReproError`, so an
application embedding the whole system can catch everything with one
``except ReproError`` while still discriminating subsystems.

A :class:`ReproError` carries a ``context`` payload: a plain dict that
evaluation layers enrich as the exception propagates (the script text
being evaluated, the evaluation window, a line/column location when one
is known).  The payload is additive — an outer layer never overwrites a
key an inner layer already recorded, so the most specific information
wins.
"""

from __future__ import annotations

__all__ = ["ReproError"]


class ReproError(Exception):
    """Base class of every exception raised by the repro package.

    ``context`` holds structured diagnostic information (script text,
    evaluation window, span location …) added by the layer that raised
    the error and enriched by the layers it propagates through.
    """

    def __init__(self, *args, context: dict | None = None) -> None:
        super().__init__(*args)
        #: Structured diagnostic payload; see :meth:`add_context`.
        self.context: dict = dict(context) if context else {}

    def add_context(self, **entries) -> "ReproError":
        """Merge diagnostic entries without overwriting existing keys.

        Returns ``self`` so enrichment can be chained inline in an
        ``except`` clause before re-raising.
        """
        for key, value in entries.items():
            self.context.setdefault(key, value)
        return self

    def context_summary(self) -> str:
        """One-line rendering of the context payload (empty if none)."""
        if not self.context:
            return ""
        parts = []
        for key, value in sorted(self.context.items()):
            text = repr(value)
            if len(text) > 60:
                text = text[:57] + "..."
            parts.append(f"{key}={text}")
        return "; ".join(parts)
