"""Secondary indexes: ordered column indexes and interval indexes.

The paper lists "creation of indexes to optimize the performance of these
operators" among the extensible-DBMS features it uses.  Two index kinds
are provided:

* :class:`OrderedIndex` — a sorted (value, tid) list over one column,
  answering equality and range probes in O(log n); maintained
  incrementally by :class:`~repro.db.storage.Relation`.
* :class:`IntervalIndex` — a static sorted-interval index over an order-1
  calendar answering point-membership and next-point queries; used by the
  ``within`` operator and by DBCRON.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from repro.core.calendar import Calendar
from repro.core.interval import Interval
from repro.db.errors import SchemaError

__all__ = ["OrderedIndex", "IntervalIndex"]


class OrderedIndex:
    """A sorted index over one column of a relation."""

    def __init__(self, column: str) -> None:
        self.column = column
        self._keys: list = []
        self._tids: list[int] = []

    def insert(self, row: dict) -> None:
        """Index one tuple (None values are not indexed)."""
        value = row.get(self.column)
        if value is None:
            return
        pos = bisect.bisect_right(self._keys, value)
        self._keys.insert(pos, value)
        self._tids.insert(pos, row["_tid"])

    def remove(self, row: dict) -> None:
        """Drop one tuple's entry (matched by value and tid)."""
        value = row.get(self.column)
        if value is None:
            return
        pos = bisect.bisect_left(self._keys, value)
        while pos < len(self._keys) and self._keys[pos] == value:
            if self._tids[pos] == row["_tid"]:
                del self._keys[pos]
                del self._tids[pos]
                return
            pos += 1

    def rebuild(self, rows: Iterable[dict]) -> None:
        """Rebuild from scratch over the given tuples."""
        pairs = sorted((row[self.column], row["_tid"]) for row in rows
                       if row.get(self.column) is not None)
        self._keys = [p[0] for p in pairs]
        self._tids = [p[1] for p in pairs]

    def lookup_eq(self, value) -> list[int]:
        """tids of tuples whose column equals ``value``."""
        lo = bisect.bisect_left(self._keys, value)
        hi = bisect.bisect_right(self._keys, value)
        return self._tids[lo:hi]

    def lookup_range(self, lo=None, hi=None,
                     lo_inclusive: bool = True,
                     hi_inclusive: bool = True) -> list[int]:
        """tids of tuples within the (half-)open value range."""
        start = 0
        end = len(self._keys)
        if lo is not None:
            start = (bisect.bisect_left(self._keys, lo) if lo_inclusive
                     else bisect.bisect_right(self._keys, lo))
        if hi is not None:
            end = (bisect.bisect_right(self._keys, hi) if hi_inclusive
                   else bisect.bisect_left(self._keys, hi))
        return self._tids[start:end]

    def __len__(self) -> int:
        return len(self._keys)


class IntervalIndex:
    """A static point-membership index over an order-1 calendar.

    Intervals are flattened, sorted and (overlap-)merged at construction;
    probes are O(log n).
    """

    def __init__(self, calendar: Calendar) -> None:
        intervals = sorted(calendar.iter_intervals(),
                           key=lambda iv: (iv.lo, iv.hi))
        merged: list[Interval] = []
        for iv in intervals:
            if merged and merged[-1].overlaps(iv):
                merged[-1] = merged[-1].union_hull(iv)
            else:
                merged.append(iv)
        self._los = [iv.lo for iv in merged]
        self._his = [iv.hi for iv in merged]

    def __len__(self) -> int:
        return len(self._los)

    def contains(self, t: int) -> bool:
        """True when axis point ``t`` is covered by the calendar."""
        if t == 0:
            return False
        pos = bisect.bisect_right(self._los, t) - 1
        return pos >= 0 and self._his[pos] >= t

    def next_at_or_after(self, t: int) -> int | None:
        """Smallest covered point >= ``t``, or None."""
        if t == 0:
            t = 1
        pos = bisect.bisect_right(self._los, t) - 1
        if pos >= 0 and self._his[pos] >= t:
            return t
        pos += 1
        if pos < len(self._los):
            return self._los[pos]
        return None

    def iter_points(self) -> Iterator[int]:
        """All covered axis points in ascending order."""
        for lo, hi in zip(self._los, self._his):
            t = lo
            while t <= hi:
                if t != 0:
                    yield t
                t += 1
