"""DBCRON: the daemon that triggers temporal rules (section 4, Figure 4).

Modelled on the UNIX ``cron`` utility: every ``period`` time units DBCRON
*probes* the RULE_TIME table for rules that trigger within the next period
and loads them into a main-memory schedule (a binary heap).  As the clock
advances, due entries are popped and fired; each fired rule computes its
next trigger point (via the calendar pipeline), RULE_TIME is updated, and
— when the next point falls inside the current probe horizon — the entry
re-enters the heap immediately.

Independent due rules can fire **in parallel**: :meth:`DBCron.fire_due`
pops all entries sharing the earliest due fire tick as one *wave* and
dispatches the wave across a :class:`~repro.runtime.WorkerPool` (one
entry per rule per wave, so a single rule never races itself), then
repeats with the next tick.  Processing wave-by-wave preserves the
deterministic cross-tick firing order of the sequential daemon — a rule
due at tick 10 always completes before one due at tick 11 — while the
expensive per-rule ``next_trigger`` calendar evaluation overlaps across
rules.  With one worker (the default) the sequential code path runs,
bit-for-bit identical to the pre-pool daemon.

With periodic compilation on (``REPRO_PERIODIC``, default), the per-rule
``next_trigger`` path short-circuits through the rule expression's
compiled :class:`~repro.core.periodic.PeriodicSet`: rescheduling after a
fire is O(log offsets) modular arithmetic with **no window
materialisation**, which is what keeps probe waves cheap at large rule
counts.

Driven by a :class:`~repro.rules.clock.SimulatedClock` for determinism;
``run_until`` steps the clock probe-by-probe the way the real daemon
sleeps between wake-ups.
"""

from __future__ import annotations

import heapq
import threading

from dataclasses import dataclass
from time import perf_counter

from repro.core.errors import AxisError
from repro.core.interval import axis_add
from repro.db.database import Database
from repro.rules.clock import SimulatedClock
from repro.rules.manager import RuleManager
from repro.runtime import WorkerPool, get_default_pool

__all__ = ["DBCron"]


@dataclass
class _Stats:
    probes: int = 0
    fires: int = 0
    reschedules: int = 0
    max_heap_size: int = 0


class DBCron:
    """The temporal-rule daemon."""

    def __init__(self, manager: RuleManager, clock: SimulatedClock,
                 period: int = 7, pool: WorkerPool | None = None) -> None:
        if period < 1:
            raise AxisError("the probe period must be at least 1 tick")
        self.manager = manager
        self.db: Database = manager.db
        self.clock = clock
        self.period = period
        #: Worker pool for parallel wave firing (size 1 = sequential).
        self.pool = pool if pool is not None else get_default_pool()
        #: Main-memory schedule: (fire_tick, sequence, rulename).
        self._heap: list[tuple[int, int, str]] = []
        self._scheduled: dict[str, int] = {}
        self._sequence = 0
        #: Guards the heap/scheduled-set/sequence triple: schedule-change
        #: notifications arrive from pool workers mid-wave (a fired rule
        #: rescheduling itself inside the horizon).
        self._sched_lock = threading.RLock()
        self._horizon = clock.now  # end of the currently probed window
        self.stats = _Stats()
        manager.clock = clock
        manager.subscribe_schedule(self._on_schedule_change)
        clock.subscribe(self._on_clock)

    # -- probing -----------------------------------------------------------------

    def probe(self) -> int:
        """Load rules due within the next period into the schedule.

        Returns the number of heap entries loaded.  This is the periodic
        RULE_TIME scan of Figure 4.
        """
        now = self.clock.now
        self._horizon = axis_add(now, self.period)
        self.stats.probes += 1
        loaded = 0
        with self._sched_lock:
            for fire_tick, name in self.manager.tables.due_within(
                    now, self.period):
                if self._scheduled.get(name) == fire_tick:
                    continue
                self._push(fire_tick, name)
                loaded += 1
            heap_size = len(self._heap)
        self.stats.max_heap_size = max(self.stats.max_heap_size, heap_size)
        inst = self.db.instrumentation
        inst.metrics.counter("dbcron.probes").inc()
        inst.metrics.gauge("dbcron.heap_size").set(heap_size)
        if inst.pipeline is not None:
            inst.pipeline.emit("dbcron.probe", now=now, loaded=loaded,
                               heap=heap_size, horizon=self._horizon)
        return loaded

    def _push(self, fire_tick: int, name: str) -> None:
        with self._sched_lock:
            self._sequence += 1
            heapq.heappush(self._heap, (fire_tick, self._sequence, name))
            self._scheduled[name] = fire_tick

    def _on_schedule_change(self, name: str, next_fire: int | None) -> None:
        """A rule was declared/dropped/rescheduled while we are awake."""
        with self._sched_lock:
            if next_fire is None:
                self._scheduled.pop(name, None)
                return
            if next_fire <= self._horizon and \
                    self._scheduled.get(name) != next_fire:
                self._push(next_fire, name)

    # -- firing ------------------------------------------------------------------

    def _on_clock(self, now: int) -> None:
        self.fire_due()

    def _pop_wave(self, now: int) -> list[tuple[int, str]]:
        """Pop every non-stale entry sharing the earliest due fire tick.

        Entries are deduplicated through ``_scheduled``, so a wave holds
        at most one entry per rule — the invariant that makes firing a
        wave in parallel safe (no rule races itself).
        """
        wave: list[tuple[int, str]] = []
        with self._sched_lock:
            wave_tick = None
            while self._heap and self._heap[0][0] <= now:
                if wave_tick is not None and \
                        self._heap[0][0] != wave_tick:
                    break
                fire_tick, _, name = heapq.heappop(self._heap)
                if self._scheduled.get(name) != fire_tick:
                    continue  # stale (rule dropped or rescheduled)
                del self._scheduled[name]
                wave_tick = fire_tick
                wave.append((fire_tick, name))
        return wave

    def _fire_one(self, fire_tick: int, name: str, now: int,
                  parent_span) -> "tuple[int | None, float]":
        """Fire one rule; (next_fire, elapsed seconds).

        Runs on a pool worker during parallel waves; ``parent_span``
        (when tracing) adopts this worker's ``rule.fire`` span into the
        dispatching thread's trace tree.
        """
        tracer = self.db.instrumentation.tracer
        t0 = perf_counter()
        if tracer is not None and parent_span is not None:
            with tracer.child_span(parent_span, "rule.fire", rule=name,
                                   tick=fire_tick, drift=now - fire_tick):
                next_fire = self.manager.fire_temporal(name, fire_tick)
        elif tracer is not None:
            with tracer.span("rule.fire", rule=name, tick=fire_tick,
                             drift=now - fire_tick):
                next_fire = self.manager.fire_temporal(name, fire_tick)
        else:
            next_fire = self.manager.fire_temporal(name, fire_tick)
        return next_fire, perf_counter() - t0

    def fire_due(self) -> int:
        """Fire every scheduled entry whose time has come; count fired.

        Due entries are processed in *waves* — all entries sharing the
        earliest due fire tick — and each wave fires across the worker
        pool when it holds more than one rule and the pool has more than
        one worker; otherwise the rules fire sequentially on this thread.
        Records per-fire latency (``dbcron.fire_seconds``) and how far
        behind schedule the daemon is running (``dbcron.fire_drift_ticks``
        — the gap between the clock and the wave's fire tick); with
        tracing on, each fire gets a ``rule.fire`` span (parallel waves
        roll the per-worker spans up under one ``dbcron.fire_wave``).
        """
        now = self.clock.now
        inst = self.db.instrumentation
        fire_hist = inst.metrics.histogram("dbcron.fire_seconds")
        drift_gauge = inst.metrics.gauge("dbcron.fire_drift_ticks")
        fire_counter = inst.metrics.counter("dbcron.fires")
        fired = 0
        while True:
            wave = self._pop_wave(now)
            if not wave:
                break
            drift_gauge.set(now - wave[0][0])
            if inst.pipeline is not None:
                inst.pipeline.emit("dbcron.wave", tick=wave[0][0],
                                   rules=len(wave), drift=now - wave[0][0])
            if len(wave) > 1 and self.pool.size > 1:
                results = self._fire_wave_parallel(wave, now)
            else:
                results = [self._fire_one(tick, name, now, None)
                           for tick, name in wave]
            # Stats and metrics are updated on this thread, in wave
            # order, so sequential and parallel runs count identically.
            for (next_fire, elapsed), (tick, name) in zip(results, wave):
                fire_hist.observe(elapsed)
                fire_counter.inc()
                fired += 1
                self.stats.fires += 1
                if next_fire is not None:
                    self.stats.reschedules += 1
                    # _on_schedule_change pushed it back if due again.
                if inst.pipeline is not None:
                    inst.pipeline.emit("rule.fire", rule=name, tick=tick,
                                       duration_s=elapsed,
                                       next_fire=next_fire)
        return fired

    def _fire_wave_parallel(self, wave: list[tuple[int, str]],
                            now: int) -> list:
        """Dispatch one wave across the pool; per-entry results in order."""
        tracer = self.db.instrumentation.tracer
        if tracer is not None:
            with tracer.span("dbcron.fire_wave", tick=wave[0][0],
                             rules=len(wave)) as wave_span:
                return self.pool.map(
                    lambda item: self._fire_one(item[0], item[1], now,
                                                wave_span), wave)
        return self.pool.map(
            lambda item: self._fire_one(item[0], item[1], now, None), wave)

    # -- driving ------------------------------------------------------------------

    def run_until(self, tick: int) -> int:
        """Advance the clock to ``tick`` probe-by-probe; count fires.

        Mirrors the daemon loop: probe, sleep one period (advancing the
        clock fires due rules), repeat.
        """
        before = self.stats.fires
        self.probe()
        while self.clock.now < tick:
            step = min(self.period, tick - self.clock.now)
            self.clock.advance(step)
            self.probe()
        self.fire_due()
        return self.stats.fires - before
