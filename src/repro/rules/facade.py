"""``Session.rules`` — the unified rule surface of the stack.

The paper's two declaration forms — ``On Event where Condition do
Action`` and ``On Calendar-Expression do Action`` (section 4) — were
historically reachable only through two ad-hoc ``RuleManager.define_*``
methods with positional signatures.  This facade fronts both behind one
object with keyword-only arguments mirroring the paper's syntax::

    session.rules.on_event("audit", event="append", relation="emp",
                           where="new.hours > 20", do=[...])
    session.rules.on_calendar("payday", expression="LAST_BUS_DAYS",
                              do=[...], tenant="payroll", priority=5)
    session.rules.drop("audit")
    session.rules.stats()

Every rule carries a ``tenant`` (the admission-control and reporting
key) and a ``priority`` (higher survives longer when the daemon sheds
load).  The facade reads the manager and daemon through the session on
every call, so it stays valid across ``Session.attach_database``.

The old entry points (``define_event_rule`` / ``define_temporal_rule``)
still work but emit :class:`DeprecationWarning` — see docs/RULES.md for
the migration table.
"""

from __future__ import annotations

from typing import Callable, Sequence

__all__ = ["RulesFacade"]


class RulesFacade:
    """The rule API of one :class:`~repro.session.Session`."""

    def __init__(self, session) -> None:
        self._session = session

    @property
    def _manager(self):
        return self._session.manager

    @property
    def _cron(self):
        return self._session.cron

    # -- declaration ---------------------------------------------------------

    def on_event(self, name: str, *, event: str, relation: str,
                 where: "str | Callable | None" = None,
                 do: "Sequence[str] | None" = None,
                 callback: Callable | None = None,
                 valid_between: tuple | None = None,
                 tenant: str = "default", priority: int = 0):
        """Declare ``On Event [to relation] where Condition do Action``."""
        return self._manager.declare_event(
            name, event=event, relation=relation, condition=where,
            actions=do, callback=callback, valid_between=valid_between,
            tenant=tenant, priority=priority)

    def on_calendar(self, name: str, *, expression: str,
                    do: "Sequence[str] | None" = None,
                    callback: Callable | None = None,
                    after: int | None = None,
                    valid_between: tuple | None = None,
                    catchup: str = "all",
                    tenant: str = "default", priority: int = 0):
        """Declare ``On Calendar-Expression do Action``."""
        return self._manager.declare_temporal(
            name, expression=expression, actions=do, callback=callback,
            after=after, valid_between=valid_between, catchup=catchup,
            tenant=tenant, priority=priority)

    def drop(self, name: str) -> None:
        """Remove a rule of either kind (catalog rows included)."""
        self._manager.drop_rule(name)

    # -- introspection -------------------------------------------------------

    def get(self, name: str):
        """The live rule object, or None."""
        manager = self._manager
        return manager.event_rules.get(name) or \
            manager.temporal_rules.get(name)

    def names(self) -> list[str]:
        """All rule names, event rules first, each group sorted."""
        manager = self._manager
        return sorted(manager.event_rules) + sorted(manager.temporal_rules)

    def __contains__(self, name: str) -> bool:
        manager = self._manager
        return name in manager.event_rules or \
            name in manager.temporal_rules

    def __len__(self) -> int:
        manager = self._manager
        return len(manager.event_rules) + len(manager.temporal_rules)

    def stats(self) -> dict:
        """One dict for dashboards: rules, daemon, scheduler, throttle.

        Backs the CLI ``\\rules stats`` report and the telemetry
        server's ``/rules`` endpoint.
        """
        manager, cron = self._manager, self._cron
        out = {
            "event_rules": len(manager.event_rules),
            "temporal_rules": len(manager.temporal_rules),
            "clock": cron.clock.now,
            "daemon": {
                "scheduler": cron.scheduler,
                "period": cron.period,
                "probes": cron.stats.probes,
                "fires": cron.stats.fires,
                "reschedules": cron.stats.reschedules,
                "sheds": cron.stats.sheds,
                "max_schedule_size": cron.stats.max_heap_size,
            },
            "schedule": cron.sched.stats(),
        }
        if cron.throttle is not None:
            out["throttle"] = cron.throttle.stats()
        shed = {rule.name: rule.shed_count
                for rule in manager.temporal_rules.values()
                if rule.shed_count}
        if shed:
            out["shed_rules"] = shed
        return out
