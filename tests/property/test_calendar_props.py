"""Property-based tests for calendar set operations and structure."""

from hypothesis import given, strategies as st

from repro.core import Calendar, Interval

axis_point = st.integers(min_value=-200, max_value=200).filter(
    lambda t: t != 0)


@st.composite
def intervals(draw):
    a = draw(axis_point)
    b = draw(axis_point)
    return Interval(min(a, b), max(a, b))


@st.composite
def calendars(draw, max_size=8):
    ivs = draw(st.lists(intervals(), max_size=max_size))
    ivs.sort(key=lambda iv: (iv.lo, iv.hi))
    return Calendar.from_intervals(ivs)


def points(cal: Calendar) -> set:
    out = set()
    for iv in cal.iter_intervals():
        out |= set(iv)
    return out


class TestSetOpsArePointwise:
    @given(calendars(), calendars())
    def test_union(self, a, b):
        assert points(a.union(b)) == points(a) | points(b)

    @given(calendars(), calendars())
    def test_difference(self, a, b):
        assert points(a.difference(b)) == points(a) - points(b)

    @given(calendars(), calendars())
    def test_intersection(self, a, b):
        assert points(a.intersection(b)) == points(a) & points(b)

    @given(calendars(), calendars())
    def test_union_commutative_pointwise(self, a, b):
        assert points(a + b) == points(b + a)

    @given(calendars())
    def test_difference_with_self_empty(self, a):
        assert points(a - a) == set()

    @given(calendars(), calendars())
    def test_de_morgan_like(self, a, b):
        # (a - b) and (a & b) partition a.
        assert points(a - b) | points(a & b) == points(a)
        assert not points(a - b) & points(a & b)

    @given(calendars(), calendars())
    def test_result_elements_sorted_disjoint(self, a, b):
        for result in (a + b, a - b, a & b):
            elements = result.elements
            for i in range(len(elements) - 1):
                assert elements[i].hi < elements[i + 1].lo or \
                    not elements[i].overlaps(elements[i + 1])


class TestStructure:
    @given(calendars())
    def test_flatten_idempotent(self, a):
        assert a.flatten().to_pairs() == a.flatten().flatten().to_pairs()

    @given(st.lists(calendars(), min_size=1, max_size=4))
    def test_flatten_preserves_points(self, subs):
        nested = Calendar.from_calendars(subs)
        assert points(nested.flatten()) == points(nested)

    @given(calendars())
    def test_span_covers_all_points(self, a):
        span = a.span()
        if span is None:
            assert points(a) == set()
        else:
            assert points(a) <= set(span)

    @given(calendars(), axis_point)
    def test_contains_point_matches_points(self, a, t):
        assert a.contains_point(t) == (t in points(a))

    @given(st.lists(calendars(), min_size=1, max_size=4))
    def test_drop_empty_preserves_points(self, subs):
        nested = Calendar.from_calendars(subs)
        assert points(nested.drop_empty()) == points(nested)
