"""Representation-level columnar tests: overflow fallback, empty lanes,
zero-copy cache serves, and the materialisation counter surfaces.

The parity properties live in ``tests/property/test_columnar_props.py``;
this file pins the representation mechanics the properties cannot see —
which calendars carry columns, when the element tuple is (not) built,
and how values outside the int64 lanes degrade to the object path.
"""

import pytest

from repro.core import (
    Calendar,
    CalendarSystem,
    Interval,
    IntervalColumns,
    foreach,
)
from repro.core import columnar
from repro.core.columnar import Q_MAX, Q_MIN
from repro.core.interval import axis_add
from repro.core.matcache import MaterialisationCache


@pytest.fixture(autouse=True)
def force_columnar_builds():
    """These tests pin columnar mechanics, so force the representation on
    even under the REPRO_COLUMNAR=0 CI leg (the runtime toggle only
    affects calendars built while it is set)."""
    previous = columnar.enabled()
    columnar.set_enabled(True)
    yield
    columnar.set_enabled(previous)


class TestInt64OverflowFallback:
    """Endpoints outside the int64 lanes fall back to interval objects;
    Python integers themselves never overflow, so only the columnar
    representation (not the axis arithmetic) has a range limit."""

    def test_from_intervals_beyond_int64_uses_objects(self):
        big = Q_MAX + 10
        cal = Calendar.from_intervals([(1, 1), (big, big + 1)])
        assert cal.columns is None
        assert cal.to_pairs() == ((1, 1), (big, big + 1))

    def test_below_int64_min_uses_objects(self):
        small = Q_MIN - 10
        cal = Calendar.from_intervals([(small, small), (1, 2)])
        assert cal.columns is None
        assert cal.span() == Interval(small, 2)

    def test_fallback_interoperates_with_columnar_operand(self):
        big = Q_MAX + 10
        wide = Calendar.from_intervals([(1, 5), (big, big)])
        days = Calendar.from_intervals([(2, 3)])
        assert wide.columns is None and days.columns is not None
        assert (wide & days).to_pairs() == ((2, 3),)
        assert (days - wide).to_pairs() == ()
        assert (wide + days).to_pairs() == ((1, 5), (big, big))

    def test_shifted_overflow_falls_back(self):
        cal = Calendar.from_intervals([(Q_MAX - 1, Q_MAX - 1)])
        assert cal.columns is not None
        moved = cal.shifted(10)
        assert moved.columns is None
        assert moved.to_pairs() == ((Q_MAX + 9, Q_MAX + 9),)

    def test_axis_add_beyond_lanes_still_zero_skips(self):
        # axis_add works on arbitrary Python ints; crossing zero from a
        # point beyond the lane range must still skip tick 0.
        assert axis_add(-(Q_MAX + 5), 2 * (Q_MAX + 5)) == Q_MAX + 6


class TestEmptyCalendars:
    def test_empty_lanes_round_trip_without_materialising(self):
        empty = Calendar.from_intervals([])
        days = Calendar.from_intervals([(1, 2), (4, 5)])
        before = columnar.MATERIALISATIONS.value
        assert (empty & days).to_pairs() == ()
        assert (empty - days).to_pairs() == ()
        assert (days - empty).to_pairs() == ((1, 2), (4, 5))
        assert (empty + days).to_pairs() == ((1, 2), (4, 5))
        assert foreach("during", empty, Interval(1, 9)).to_pairs() == ()
        assert foreach("during", days, empty).to_pairs() == ()
        assert columnar.MATERIALISATIONS.value == before

    def test_empty_columns_flags(self):
        cols = IntervalColumns.empty()
        assert len(cols.los) == 0
        assert cols.lo_sorted and cols.hi_sorted and cols.disjoint


class TestLazyMaterialisation:
    def test_iteration_and_indexing_stay_lazy(self):
        cal = Calendar.from_intervals([(1, 2), (4, 5), (7, 9)])
        before = columnar.MATERIALISATIONS.value
        assert [iv.lo for iv in cal] == [1, 4, 7]
        assert cal[1] == Interval(4, 5)
        assert len(cal) == 3 and bool(cal)
        assert cal.span() == Interval(1, 9)
        assert columnar.MATERIALISATIONS.value == before

    def test_elements_access_bumps_counter_once(self):
        cal = Calendar.from_intervals([(1, 2), (4, 5)])
        before = columnar.MATERIALISATIONS.value
        assert len(cal.elements) == 2
        assert len(cal.elements) == 2  # memoised; no second bump
        assert columnar.MATERIALISATIONS.value == before + 1


class TestMatcacheZeroCopy:
    def test_cache_serve_stays_columnar(self):
        system = CalendarSystem.starting("Jan 1 1987")
        cache = MaterialisationCache()
        cache.generate(system, "WEEKS", "DAYS", (1, 1461), "cover")
        before = columnar.MATERIALISATIONS.value
        served = cache.generate(system, "WEEKS", "DAYS", (100, 400),
                                "clip")
        assert served.columns is not None
        assert columnar.MATERIALISATIONS.value == before
        want = system.generate("WEEKS", "DAYS", (100, 400), mode="clip")
        assert served.to_pairs() == want.to_pairs()


class TestCounterSurfaces:
    def test_session_metrics_exposes_counter(self):
        from repro import Session
        session = Session("Jan 1 1987", holiday_years=(1987, 1988))
        metrics = session.metrics()
        assert metrics["columnar.materialisations"] \
            == columnar.MATERIALISATIONS.value

    def test_cli_cache_line_includes_counter(self):
        from repro.cli import Session as Shell
        shell = Shell(epoch="Jan 1 1987", holiday_years=(1987, 1988))
        out = shell.run_line("\\cache")
        assert "columnar materialisations" in out


class TestFusedPipelineStaysColumnar:
    def test_fused_selection_pipeline_materialises_nothing(self):
        from repro import Session
        # periodic=False: the periodic backend would otherwise answer
        # this day-granularity expression without touching the plan VM.
        session = Session("Jan 1 1987", holiday_years=(1987, 1988),
                          periodic=False)
        before = columnar.MATERIALISATIONS.value
        cal = session.eval("[2]/DAYS:during:WEEKS",
                           window=("Jan 1 1993", "Dec 31 1993"))
        assert len(cal) == 52 or len(cal) == 53
        assert cal.columns is not None
        assert columnar.MATERIALISATIONS.value == before
