"""E7 cross-checks: option expirations against a dateutil oracle."""

import pytest
from dateutil import rrule

from repro.finance import (
    OptionContract,
    expiration_calendar,
    expiration_date,
    last_trading_day,
)


def third_fridays(year):
    """Oracle: dateutil's third-Friday recurrence."""
    return list(rrule.rrule(
        rrule.MONTHLY, dtstart=__import__("datetime").date(year, 1, 1),
        count=12, byweekday=rrule.FR(3)))


class TestExpirationDates:
    @pytest.mark.parametrize("year", [1990, 1993, 1996, 1999])
    def test_matches_dateutil_third_fridays(self, registry, year):
        holidays = {(d.month, d.day)
                    for d in __import__(
                        "repro.catalog", fromlist=["us_federal_holidays"]
                    ).us_federal_holidays(year)}
        for month, oracle in enumerate(third_fridays(year), start=1):
            got = registry.system.date_of(
                expiration_date(registry, year, month))
            if (oracle.month, oracle.day) in holidays:
                # Holiday Friday: our rule rolls to the preceding
                # business day, the oracle does not.
                assert (got.year, got.month) == (oracle.year, oracle.month)
                assert got.day < oracle.day
            else:
                assert (got.year, got.month, got.day) == \
                    (oracle.year, oracle.month, oracle.day)

    def test_november_1993_is_the_paper_example(self, registry):
        d = registry.system.date_of(expiration_date(registry, 1993, 11))
        assert str(d) == "Nov 19 1993"

    def test_expirations_are_business_days(self, registry):
        from repro.finance import BusinessCalendar
        bc = BusinessCalendar(registry,
                              window=("Jan 1 1993", "Dec 31 1993"))
        for month in range(1, 13):
            assert bc.is_business_day(
                expiration_date(registry, 1993, month))


class TestLastTradingDay:
    def test_seven_business_days_inclusive_of_month_end(self, registry):
        from repro.finance import BusinessCalendar
        bc = BusinessCalendar(registry,
                              window=("Jan 1 1993", "Dec 31 1993"))
        for month in (3, 6, 9):
            ltd = last_trading_day(registry, 1993, month)
            lo, hi = registry.system.epoch.days_of_month(1993, month)
            last_bus = bc.previous_business_day(hi, inclusive=True)
            # The paper's "<" includes equality, so temp1 itself is the
            # last element: counting is inclusive of the month-end day.
            assert bc.business_days_between(ltd, last_bus) == 7

    def test_before_month_end(self, registry):
        ltd = last_trading_day(registry, 1993, 11)
        _, hi = registry.system.epoch.days_of_month(1993, 11)
        assert ltd < hi


class TestExpirationCalendar:
    def test_monthly_cycle(self, registry):
        cal = expiration_calendar(registry, 1993)
        assert len(cal) == 12
        assert all(iv.is_instant() for iv in cal.elements)

    def test_quarterly_cycle(self, registry):
        cal = expiration_calendar(registry, 1993, months=(3, 6, 9, 12))
        assert len(cal) == 4
        months = {registry.system.date_of(iv.lo).month
                  for iv in cal.elements}
        assert months == {3, 6, 9, 12}

    def test_usable_as_defined_calendar(self, registry):
        cal = expiration_calendar(registry, 1993)
        registry.define("EXPIRATIONS_93", values=cal, granularity="DAYS")
        t0 = registry.system.day_of("Nov 1 1993")
        nxt = registry.next_occurrence("EXPIRATIONS_93", t0)
        assert str(registry.system.date_of(nxt)) == "Nov 19 1993"


class TestOptionContract:
    def test_contract_accessors(self, registry):
        contract = OptionContract("XYZ", 1993, 11, strike=50.0)
        assert str(registry.system.date_of(
            contract.expiration(registry))) == "Nov 19 1993"
        assert contract.last_trading_day(registry) <= \
            contract.expiration(registry) + 15
