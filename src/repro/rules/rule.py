"""Event rules: ``On Event where Condition do Action`` (section 4).

An :class:`EventRule` watches one storage event kind on one relation.  Its
condition is a Postquel expression over the ``NEW`` and ``CURRENT`` tuple
variables (or any Python callable), and its action is a list of Postquel
statements (executed with NEW/CURRENT bound) or a Python callable — the
same shape as the POSTGRES rule system the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.db.errors import RuleError
from repro.db.ql.ast import QlExpr, Statement
from repro.db.ql.parser import parse_ql_expression, parse_statement
from repro.db.storage import EVENT_KINDS
from repro.rules.events import Event

__all__ = ["EventRule"]


@dataclass
class EventRule:
    """A parsed, executable event rule."""

    name: str
    event: str
    relation: str
    condition: "QlExpr | Callable[[Event], bool] | None" = None
    actions: tuple = ()
    #: Python callable action (alternative to Postquel actions).
    callback: Callable | None = None
    enabled: bool = True
    #: Activation lifespan (inclusive axis ticks, checked against the
    #: rule manager's clock when one is attached).  None = always active.
    valid_between: tuple | None = None
    #: Owning tenant (admission-control and reporting key).
    tenant: str = "default"
    #: Shedding rank under overload: higher survives longer.
    priority: int = 0
    fire_count: int = field(default=0, init=False)

    @classmethod
    def define(cls, name: str, event: str, relation: str,
               condition: "str | Callable | None" = None,
               actions: "Sequence[str] | None" = None,
               callback: Callable | None = None) -> "EventRule":
        """Parse rule text into an executable rule.

        ``condition`` may be Postquel expression text (``"new.hours > 20"``)
        or a Python predicate over the event.  ``actions`` are Postquel
        statements; ``callback`` is a Python alternative.  At least one of
        ``actions``/``callback`` must be provided.
        """
        event = event.lower()
        if event not in EVENT_KINDS:
            raise RuleError(f"unknown event kind {event!r} "
                            f"(expected one of {EVENT_KINDS})")
        if not actions and callback is None:
            raise RuleError(f"rule {name!r} has no action")
        parsed_condition: "QlExpr | Callable | None" = None
        if isinstance(condition, str):
            parsed_condition = parse_ql_expression(condition)
        elif condition is not None:
            parsed_condition = condition
        parsed_actions: list[Statement] = [
            a if isinstance(a, Statement) else parse_statement(a)
            for a in (actions or ())]
        return cls(name=name, event=event, relation=relation.lower(),
                   condition=parsed_condition,
                   actions=tuple(parsed_actions), callback=callback)

    # -- evaluation -------------------------------------------------------------

    def matches(self, executor, event: Event, now: int | None = None
                ) -> bool:
        """True when the rule is active and its condition holds."""
        if not self.enabled:
            return False
        if self.valid_between is not None and now is not None:
            lo, hi = self.valid_between
            if not lo <= now <= hi:
                return False
        if self.condition is None:
            return True
        if callable(self.condition):
            return bool(self.condition(event))
        bindings = self._bindings(event)
        return executor._truthy(executor._eval(self.condition, bindings))

    def fire(self, database, event: Event) -> None:
        """Run the action(s) with NEW/CURRENT bound from the event."""
        self.fire_count += 1
        if self.callback is not None:
            self.callback(database, event)
        bindings = self._bindings(event)
        for action in self.actions:
            database._executor.execute(action, bindings)

    @staticmethod
    def _bindings(event: Event) -> dict:
        bindings: dict = {}
        if event.current is not None:
            bindings["current"] = event.current
            bindings["CURRENT"] = event.current
        if event.new is not None:
            bindings["new"] = event.new
            bindings["NEW"] = event.new
        return bindings
