"""The structured event pipeline and the slow-query log.

Metrics (PR 2) aggregate; this module *records*: every interesting
moment in the stack — an evaluation starting, a cache miss, a rule
firing, a pool dispatch — becomes one typed :class:`Event` pushed
through a :class:`TelemetryPipeline` into pluggable sinks (an in-memory
ring, a JSONL file, an arbitrary callback).  The POSTGRES rule system
kept statistics tables an operator could query from outside; the
pipeline is that posture for the whole reproduction, feeding the
``/metrics``-adjacent endpoints of :mod:`repro.obs.httpd` and the JSONL
files an operator can tail.

**Backpressure drops, never blocks.**  Emission sites sit on hot paths
(the materialisation cache's hit path emits under its stripe lock), so
:meth:`TelemetryPipeline.emit` takes its lock with a *non-blocking*
acquire: when another thread is mid-emit, the event is counted into
``dropped`` and discarded instead of waiting.  A sink that raises, or a
file sink whose disk write fails, likewise counts a drop.  The pipeline
lock is a **leaf lock** — fan-out never calls back into the stack — so
emitting while holding any other lock (matcache stripes, the DBCRON
schedule lock) cannot deadlock; see docs/IMPLEMENTATION_NOTES.md §8.

The **slow-query log** rides on the pipeline: evaluations whose wall
time reaches a configurable threshold capture their plan text, window,
cache-stats snapshot and (when tracing) span tree into a bounded ring,
surfaced by ``Session.slow_queries()``, the ``\\slowlog`` CLI command
and the ``/slowlog`` HTTP endpoint.
"""

from __future__ import annotations

import json
import threading
import time

from collections import deque
from dataclasses import dataclass, field

#: Module-level binding: one global lookup saved per emitted event.
_wall_clock = time.time

__all__ = [
    "Event", "RingSink", "FileSink", "CallbackSink", "TelemetryPipeline",
    "SlowQuery", "SlowQueryLog",
]


class Event:
    """One structured telemetry event.

    The JSONL schema is exactly the :meth:`to_dict` shape: ``ts`` (wall
    clock, seconds), ``seq`` (per-pipeline monotone sequence number),
    ``kind`` (dotted type name, e.g. ``eval.finish``), and ``fields``
    (the typed payload; values must be JSON-serialisable or coercible
    via ``str``).

    A hand-rolled ``__slots__`` value class rather than a (frozen)
    dataclass: one Event is constructed per :meth:`TelemetryPipeline.emit`
    on hot paths, and dataclass ``__init__``/``object.__setattr__``
    dispatch is measurable there (the <5% enabled-overhead budget of
    ``benchmarks/test_bench_obs.py``).
    """

    __slots__ = ("ts", "seq", "kind", "fields")

    def __init__(self, ts: float, seq: int, kind: str,
                 fields: dict) -> None:
        self.ts = ts
        self.seq = seq
        self.kind = kind
        self.fields = fields

    def __eq__(self, other) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.ts, self.seq, self.kind, self.fields) == \
            (other.ts, other.seq, other.kind, other.fields)

    def __repr__(self) -> str:
        return (f"Event(ts={self.ts!r}, seq={self.seq!r}, "
                f"kind={self.kind!r}, fields={self.fields!r})")

    def to_dict(self) -> dict:
        """The JSONL schema shape (see the class docstring)."""
        return {"ts": self.ts, "seq": self.seq, "kind": self.kind,
                "fields": dict(self.fields)}

    def to_json(self) -> str:
        """One JSONL line (no trailing newline)."""
        return json.dumps(self.to_dict(), default=str,
                          separators=(",", ":"))


class RingSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("the ring sink must hold at least 1 event")
        self._ring: deque = deque(maxlen=capacity)

    def accept(self, event: Event) -> None:
        """Buffer ``event``, evicting the oldest past capacity."""
        self._ring.append(event)

    def events(self) -> "list[Event]":
        """Buffered events, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        """Drop every buffered event."""
        self._ring.clear()


class FileSink:
    """Appends one JSONL line per event to ``path``.

    The file handle is opened lazily and kept open (line-buffered);
    write failures propagate to the pipeline, which counts them as
    drops.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None

    def accept(self, event: Event) -> None:
        """Append one JSONL line (opens the file on first write)."""
        if self._handle is None:
            self._handle = open(self.path, "a", buffering=1,
                                encoding="utf-8")
        self._handle.write(event.to_json() + "\n")

    def close(self) -> None:
        """Close the file handle (reopened lazily on the next write)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallbackSink:
    """Calls ``fn(event)`` for every event (exceptions count as drops)."""

    def __init__(self, fn) -> None:
        self.fn = fn

    def accept(self, event: Event) -> None:
        """Invoke the callback with ``event``."""
        self.fn(event)


class TelemetryPipeline:
    """Fans typed events out to sinks without ever blocking an emitter.

    A pipeline always carries one :class:`RingSink` (``ring_capacity``
    events) so ``/slowlog``-style consumers have something to read even
    before any sink is configured; further sinks attach via
    :meth:`add_sink`.  Thread-safe; see the module docstring for the
    drop-instead-of-block contract.
    """

    def __init__(self, ring_capacity: int = 1024) -> None:
        self.ring = RingSink(ring_capacity)
        self._sinks: list = [self.ring]
        self._lock = threading.Lock()
        self._drop_lock = threading.Lock()
        self._dropped = 0
        self._emitted = 0
        self._seq = 0

    # -- emission -------------------------------------------------------------

    def emit(self, kind: str, /, **fields) -> bool:
        """Record one event; False when it was dropped.

        Never raises and never blocks: lock contention and sink failures
        are both absorbed into the ``dropped`` counter.  ``kind`` is
        positional-only so an event may carry a *field* named ``kind``
        (e.g. ``query.execute``'s statement kind).
        """
        if not self._lock.acquire(False):
            self._count_drop()
            return False
        try:
            self._seq += 1
            event = Event(_wall_clock(), self._seq, kind, fields)
            delivered = False
            failed = 0
            for sink in self._sinks:
                try:
                    sink.accept(event)
                    delivered = True
                except Exception:
                    failed += 1
            self._emitted += 1
        finally:
            self._lock.release()
        if failed:
            self._count_drop(failed)
        return delivered

    def _count_drop(self, n: int = 1) -> None:
        with self._drop_lock:
            self._dropped += n

    # -- sinks ----------------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Attach a sink (RingSink/FileSink/CallbackSink or duck-typed)."""
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Detach a sink previously added (the built-in ring stays)."""
        with self._lock:
            if sink is not self.ring and sink in self._sinks:
                self._sinks.remove(sink)

    # -- introspection --------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events lost to contention or sink failure."""
        return self._dropped

    @property
    def emitted(self) -> int:
        """Events successfully fanned out (at least attempted)."""
        return self._emitted

    def events(self, kind: str | None = None) -> "list[Event]":
        """Ring-buffered events, oldest first, optionally one kind."""
        events = self.ring.events()
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def to_jsonl(self) -> str:
        """The ring buffer rendered as a JSONL document."""
        return "\n".join(e.to_json() for e in self.ring.events())

    def clear(self) -> None:
        """Drop the ring buffer (other sinks and counters are kept)."""
        with self._lock:
            self.ring.clear()

    def __repr__(self) -> str:
        return (f"TelemetryPipeline(emitted={self._emitted}, "
                f"dropped={self._dropped}, sinks={len(self._sinks)})")


@dataclass
class SlowQuery:
    """One evaluation that crossed the slow-query threshold."""

    #: Wall-clock time the record was captured (seconds since epoch).
    ts: float
    #: The script/expression/calendar-name text that was evaluated.
    source: str
    #: Measured wall time of the evaluation, seconds.
    duration_s: float
    #: The threshold in force when the record was captured.
    threshold_s: float
    #: Which entry point: "eval" | "eval_many" | "query".
    via: str = "eval"
    #: The evaluation window in day ticks, when known.
    window: tuple | None = None
    #: Compiled plan rendering (None when no plan / rendering failed).
    plan_text: str | None = None
    #: Materialisation-cache counters at capture time.
    cache_stats: dict = field(default_factory=dict)
    #: Span tree of the evaluation (None when tracing was off).
    trace: dict | None = None
    #: Error text when the slow evaluation also failed.
    error: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready dict for ``/slowlog`` and ``\\slowlog``."""
        return {
            "ts": self.ts,
            "source": self.source,
            "duration_s": self.duration_s,
            "threshold_s": self.threshold_s,
            "via": self.via,
            "window": list(self.window) if self.window else None,
            "plan_text": self.plan_text,
            "cache_stats": dict(self.cache_stats),
            "trace": self.trace,
            "error": self.error,
        }


class SlowQueryLog:
    """A bounded, thread-safe ring of :class:`SlowQuery` records.

    ``threshold_s`` is inclusive: an evaluation whose duration equals
    the threshold exactly is recorded (so ``threshold_s=0.0`` captures
    everything — the forced-low setting the acceptance tests use).
    ``threshold_s=None`` disables capture entirely.
    """

    def __init__(self, threshold_s: float | None,
                 capacity: int = 64,
                 pipeline: TelemetryPipeline | None = None) -> None:
        if capacity < 1:
            raise ValueError("the slow-query log needs capacity >= 1")
        if threshold_s is not None and threshold_s < 0:
            raise ValueError("the slow-query threshold must be >= 0")
        self.threshold_s = threshold_s
        self.pipeline = pipeline
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._captured = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_s is not None

    @property
    def captured(self) -> int:
        """Total records captured (the ring keeps only the newest)."""
        return self._captured

    def maybe_record(self, source: str, duration_s: float, *,
                     via: str = "eval", window: tuple | None = None,
                     plan_text=None, cache_stats: dict | None = None,
                     trace: dict | None = None,
                     error: str | None = None) -> SlowQuery | None:
        """Record when ``duration_s`` reaches the threshold.

        ``plan_text`` may be a string or a zero-argument callable —
        rendering a plan costs a compile, so it is only invoked for
        evaluations that actually crossed the line (and its failures are
        swallowed: a slow *malformed* script still gets a record).
        """
        threshold = self.threshold_s
        if threshold is None or duration_s < threshold:
            return None
        if callable(plan_text):
            try:
                plan_text = plan_text()
            except Exception:
                plan_text = None
        record = SlowQuery(ts=time.time(), source=source,
                           duration_s=duration_s, threshold_s=threshold,
                           via=via, window=window, plan_text=plan_text,
                           cache_stats=dict(cache_stats or {}),
                           trace=trace, error=error)
        with self._lock:
            self._ring.append(record)
            self._captured += 1
        if self.pipeline is not None:
            self.pipeline.emit("slowquery", source=source,
                               duration_s=duration_s,
                               threshold_s=threshold, via=via)
        return record

    def records(self) -> "list[SlowQuery]":
        """Captured records, oldest first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        """Drop every record (the captured total is kept)."""
        with self._lock:
            self._ring.clear()
