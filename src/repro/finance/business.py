"""Business-day logic over catalog calendars.

A :class:`BusinessCalendar` wraps a registry's business-day calendar
(by default ``AM_BUS_DAYS``, weekdays minus holidays, installed by
:func:`repro.catalog.builtins.install_us_holidays`) and provides the roll
conventions and business-day arithmetic that financial applications need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.registry import CalendarRegistry
from repro.core.arithmetic import (
    count_points_between,
    next_point,
    prev_point,
    shift_point,
)
from repro.core.calendar import Calendar
from repro.core.errors import CalendarError

__all__ = ["BusinessCalendar"]


@dataclass
class BusinessCalendar:
    """Business-day queries against a named calendar."""

    registry: CalendarRegistry
    calendar_name: str = "AM_BUS_DAYS"
    #: Evaluation window (day ticks); defaults to the registry default.
    window: tuple[int, int] | None = None
    #: (registry version, flattened calendar) — re-evaluated automatically
    #: whenever a define/drop bumps the registry version.
    _cache: "tuple[int, Calendar] | None" = field(default=None, init=False,
                                                 repr=False)

    def _calendar(self) -> Calendar:
        version = self.registry.version
        if self._cache is None or self._cache[0] != version:
            value = self.registry.evaluate(self.calendar_name,
                                           window=self.window)
            if not isinstance(value, Calendar):
                raise CalendarError(
                    f"{self.calendar_name!r} did not evaluate to a calendar")
            flat = value.flatten() if value.order != 1 else value
            self._cache = (version, flat)
        return self._cache[1]

    def invalidate(self) -> None:
        """Drop the cached calendar (after redefinitions).

        Redefinitions through :meth:`CalendarRegistry.define` /
        :meth:`~CalendarRegistry.drop` bump the registry version and are
        picked up automatically; this forces a refresh for out-of-band
        changes.
        """
        self._cache = None

    # -- queries --------------------------------------------------------------

    def is_business_day(self, t: int) -> bool:
        """True when axis day ``t`` is a business day."""
        return self._calendar().contains_point(t)

    def next_business_day(self, t: int, inclusive: bool = False) -> int:
        """First business day after (or at, if inclusive) ``t``."""
        value = next_point(self._calendar(), t, inclusive=inclusive)
        if value is None:
            raise CalendarError("no business day within the window after "
                                f"tick {t}")
        return value

    def previous_business_day(self, t: int,
                              inclusive: bool = False) -> int:
        """Last business day before (or at, if inclusive) ``t``."""
        value = prev_point(self._calendar(), t, inclusive=inclusive)
        if value is None:
            raise CalendarError("no business day within the window before "
                                f"tick {t}")
        return value

    def add_business_days(self, t: int, n: int) -> int:
        """Move ``n`` business days from ``t`` (negative moves back)."""
        value = shift_point(self._calendar(), t, n)
        if value is None:
            raise CalendarError(
                f"cannot move {n} business days from tick {t} inside the "
                "window")
        return value

    def business_days_between(self, a: int, b: int) -> int:
        """Business days in the inclusive span ``[a, b]``."""
        return count_points_between(self._calendar(), a, b)

    # -- roll conventions ----------------------------------------------------------

    def adjust(self, t: int, convention: str = "following") -> int:
        """Roll a date onto a business day.

        ``following`` / ``preceding`` / ``modified_following`` (roll
        forward unless that crosses a month boundary, then roll back).
        """
        if self.is_business_day(t):
            return t
        if convention == "following":
            return self.next_business_day(t)
        if convention == "preceding":
            return self.previous_business_day(t)
        if convention == "modified_following":
            candidate = self.next_business_day(t)
            if self.registry.system.date_of(candidate).month != \
                    self.registry.system.date_of(t).month:
                return self.previous_business_day(t)
            return candidate
        raise CalendarError(f"unknown roll convention {convention!r}")
