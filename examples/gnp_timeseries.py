"""Regular time series: valid-time maintenance without storing time points.

The paper (section 1): "it would be unnecessary to store the time points
associated with time-series observations, since they could be generated on
request" — e.g. the quarterly GNP series.  This example stores values only,
regenerates the time points from the QUARTERS calendar, and runs the
future-work pattern query ("two successive increases") of section 6a.

Run with::

    python examples/gnp_timeseries.py
"""

from repro import CalendarRegistry, CalendarSystem, Database
from repro.catalog import install_standard_calendars
from repro.core import caloperate
from repro.timeseries import RegularTimeSeries, increases, match_pattern


def main() -> None:
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=20)
    install_standard_calendars(registry)
    system = registry.system

    # The QUARTERS calendar generates every observation instant.
    months = system.months("Jan 1 1991", "Dec 31 1994")
    quarters = caloperate(months, (3,))

    gnp_values = [5880.2, 5962.0, 6033.7, 6092.5,      # 1991
                  6190.4, 6295.2, 6389.7, 6493.6,      # 1992
                  6544.5, 6622.7, 6688.3, 6813.8,      # 1993
                  6916.3]                              # 1994 Q1
    gnp = RegularTimeSeries(quarters, gnp_values, name="GNP")

    print("GNP observations (time points regenerated, never stored):")
    for t, value in gnp.items():
        print(f"   {system.date_of(t)}: {value:,.1f}")
    print()

    # Store into the database: only (seq, value) — no time column.
    db = Database(calendars=registry)
    gnp.to_relation(db, "gnp")
    print("Stored relation schema:",
          db.relation("gnp").schema)
    print("Row count:", len(db.relation("gnp")), "(values only)")
    loaded = RegularTimeSeries.from_relation(db, "gnp", quarters)
    assert loaded.timepoints() == gnp.timepoints()
    print("Reload regenerates identical valid time points:",
          loaded.timepoints() == gnp.timepoints())
    print()

    # Pattern selection (paper future work, section 6a).
    ups = increases(gnp)
    print("Quarters where GNP increased into the next quarter "
          "(S_t < Next(S_t)):")
    print("  ", ", ".join(str(system.date_of(t)) for t in ups))
    jumps = match_pattern(gnp, "s(t+1) - s(t) > 100")
    print("Quarters followed by a jump of more than $100bn:")
    print("  ", ", ".join(str(system.date_of(t)) for t in jumps))
    print()

    # Resampling: quarterly -> yearly averages.
    years = system.years("Jan 1 1991", "Dec 31 1994")
    yearly = gnp.resample(years, aggregate=lambda vs: sum(vs) / len(vs))
    print("Yearly average GNP (resampled onto the YEARS calendar):")
    for t, value in yearly.items():
        print(f"   {system.date_of(t).year}: {value:,.1f}")


if __name__ == "__main__":
    main()
