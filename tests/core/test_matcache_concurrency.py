"""Concurrency stress tests for the striped, single-flight matcache.

The key guarantees under concurrent access:

* **single-flight** — N threads missing the same (calendar, unit,
  window) key cost exactly one generation; the stats prove it (one
  miss, N-1 hits, no duplicate ``generated_intervals``);
* **stats invariants** — every request is accounted for exactly once:
  ``hits + misses + extensions + uncacheable == requests``;
* **correctness under contention** — whatever mix of slicing, extension
  and installation served a request, the result equals a fresh
  uncached ``CalendarSystem.generate``.

Run with ``PYTHONFAULTHANDLER=1`` in CI so a deadlock dumps stacks
instead of timing out silently.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import CalendarSystem
from repro.core.matcache import MaterialisationCache

SYSTEM = CalendarSystem.starting("Jan 1 1987")

THREADS = 8


def _hammer(n_threads: int, worker) -> list:
    """Run ``worker(thread_index)`` on n threads; re-raise first failure."""
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def run(index: int) -> None:
        try:
            barrier.wait()
            results[index] = worker(index)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


def _assert_request_invariant(stats: dict) -> None:
    accounted = (stats["hits"] + stats["misses"] + stats["extensions"]
                 + stats["uncacheable"])
    assert accounted == stats["requests"], stats


class TestSingleFlight:
    def test_identical_misses_generate_once(self):
        """100 iterations: 8 threads, one key — exactly one generation."""
        for _ in range(100):
            cache = MaterialisationCache()
            results = _hammer(
                THREADS,
                lambda i: cache.generate(SYSTEM, "WEEKS", "DAYS",
                                         (1, 400), "cover"))
            stats = cache.stats()
            assert stats["misses"] == 1, stats
            assert stats["extensions"] == 0, stats
            assert stats["hits"] == THREADS - 1, stats
            assert stats["single_flight_waits"] >= 0
            _assert_request_invariant(stats)
            # One generation's worth of intervals, not eight.
            fresh = SYSTEM.generate("WEEKS", "DAYS", (1, 400),
                                    mode="cover")
            assert stats["generated_intervals"] == len(fresh), stats
            first = results[0]
            assert all(r.to_pairs() == first.to_pairs() for r in results)

    def test_waiters_blocked_by_flight_are_counted(self):
        """A slow generation forces waiters onto the single-flight path."""

        class SlowSystem:
            """Proxy that stalls generate() until every thread arrived."""

            epoch = SYSTEM.epoch

            def __init__(self) -> None:
                self.gate = threading.Event()
                self.calls = 0
                self.calls_lock = threading.Lock()

            def day_window(self, lo, hi):
                return SYSTEM.day_window(lo, hi)

            def generate(self, cal, unit, window, mode="clip"):
                with self.calls_lock:
                    self.calls += 1
                self.gate.wait(timeout=5)
                return SYSTEM.generate(cal, unit, window, mode=mode)

        slow = SlowSystem()
        cache = MaterialisationCache()

        def worker(i):
            return cache.generate(slow, "MONTHS", "DAYS", (1, 500),
                                  "cover")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(THREADS)]
        for thread in threads:
            thread.start()
        # Hold the generation gate until every non-generating thread has
        # registered on the single-flight wait path (the counter is
        # incremented *before* blocking on the flight event).
        import time
        deadline = time.monotonic() + 5
        while cache.stats()["single_flight_waits"] < THREADS - 1:
            if time.monotonic() > deadline:  # pragma: no cover
                break
            time.sleep(0.001)
        slow.gate.set()
        for thread in threads:
            thread.join()
        assert slow.calls == 1
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["single_flight_waits"] >= THREADS - 1
        _assert_request_invariant(stats)

    def test_failed_generation_releases_waiters(self):
        """A generator that raises must not strand single-flight waiters."""

        class FlakySystem:
            epoch = SYSTEM.epoch

            def __init__(self) -> None:
                self.calls = 0
                self.lock = threading.Lock()

            def day_window(self, lo, hi):
                return SYSTEM.day_window(lo, hi)

            def generate(self, cal, unit, window, mode="clip"):
                with self.lock:
                    self.calls += 1
                    call = self.calls
                if call == 1:
                    raise RuntimeError("simulated generation failure")
                return SYSTEM.generate(cal, unit, window, mode=mode)

        flaky = FlakySystem()
        cache = MaterialisationCache()
        outcomes = _hammer(
            4, lambda i: _catch(lambda: cache.generate(
                flaky, "WEEKS", "DAYS", (1, 200), "cover")))
        failures = [o for o in outcomes if isinstance(o, Exception)]
        successes = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(failures) == 1
        assert len(successes) == 3
        fresh = SYSTEM.generate("WEEKS", "DAYS", (1, 200), mode="cover")
        assert all(s.to_pairs() == fresh.to_pairs() for s in successes)


def _catch(fn):
    try:
        return fn()
    except Exception as exc:
        return exc


class TestOverlappingWindowStress:
    def test_stress_overlapping_windows(self):
        """8 threads × random overlapping windows: invariants hold."""
        cache = MaterialisationCache()
        grans = ["DAYS", "WEEKS", "MONTHS"]
        requests_per_thread = 40

        def worker(index: int):
            rng = random.Random(1000 + index)
            out = []
            for _ in range(requests_per_thread):
                gran = rng.choice(grans)
                lo = rng.randint(1, 2000)
                hi = lo + rng.randint(0, 900)
                mode = rng.choice(["clip", "cover"])
                out.append(((gran, lo, hi, mode),
                            cache.generate(SYSTEM, gran, "DAYS",
                                           (lo, hi), mode)))
            return out

        results = _hammer(THREADS, worker)
        stats = cache.stats()
        assert stats["requests"] == THREADS * requests_per_thread
        assert stats["uncacheable"] == 0
        _assert_request_invariant(stats)
        # Spot-check served results against fresh generation.
        rng = random.Random(7)
        flat = [pair for per_thread in results for pair in per_thread]
        for (gran, lo, hi, mode), served in rng.sample(flat, 25):
            fresh = SYSTEM.generate(gran, "DAYS", (lo, hi), mode=mode)
            assert served.to_pairs() == fresh.to_pairs()
            assert served.labels == fresh.labels

    def test_stress_with_eviction_pressure(self):
        """A tiny cache under contention still serves correct results."""
        cache = MaterialisationCache(maxsize=2)
        grans = ["DAYS", "WEEKS", "MONTHS", "YEARS"]

        def worker(index: int):
            rng = random.Random(2000 + index)
            for _ in range(30):
                gran = rng.choice(grans)
                lo = rng.randint(1, 1500)
                hi = lo + rng.randint(0, 400)
                served = cache.generate(SYSTEM, gran, "DAYS", (lo, hi),
                                        "cover")
                fresh = SYSTEM.generate(gran, "DAYS", (lo, hi),
                                        mode="cover")
                assert served.to_pairs() == fresh.to_pairs()
            return True

        assert all(_hammer(THREADS, worker))
        stats = cache.stats()
        _assert_request_invariant(stats)
        assert stats["entries"] <= 2

    def test_memo_concurrent_access(self):
        """The generic memo stays consistent under parallel put/get."""
        cache = MaterialisationCache(memo_maxsize=64)

        def worker(index: int):
            rng = random.Random(3000 + index)
            for i in range(200):
                key = ("k", rng.randint(0, 100))
                value = cache.memo_get(key)
                if value is not None:
                    assert value == key[1]
                else:
                    cache.memo_put(key, key[1])
            return True

        assert all(_hammer(THREADS, worker))
        assert cache.stats()["memo_entries"] <= 64


class TestSortedViewConcurrency:
    def test_sorted_view_memo_single_winner(self):
        """Concurrent _SortedView.of calls agree on one attached view."""
        from repro.core.algebra import _SortedView

        cal = SYSTEM.generate("WEEKS", "DAYS", (1, 365), mode="cover")
        views = _hammer(THREADS, lambda i: _SortedView.of(cal))
        assert all(v is views[0] for v in views)
        assert cal.__dict__["_sorted_view"] is views[0]
