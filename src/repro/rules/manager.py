"""The rule manager: declaration, storage and firing of rules.

Wires :class:`~repro.rules.rule.EventRule` objects into the storage-layer
event hooks and :class:`~repro.rules.temporal.TemporalRule` objects into
the RULE-INFO/RULE-TIME tables probed by DBCRON.  A cascade-depth guard
stops runaway rule chains (a rule whose action triggers itself).
"""

from __future__ import annotations

import threading

from typing import Callable, Sequence

from repro.db.database import Database
from repro.db.errors import RuleError
from repro.rules.events import Event
from repro.rules.rule import EventRule
from repro.rules.tables import RuleTables
from repro.rules.temporal import TemporalRule

__all__ = ["RuleManager"]


class RuleManager:
    """Owns all rules of one database."""

    def __init__(self, database: Database,
                 max_cascade_depth: int = 16) -> None:
        self.db = database
        self.tables = RuleTables(database)
        self.event_rules: dict[str, EventRule] = {}
        self.temporal_rules: dict[str, TemporalRule] = {}
        self.max_cascade_depth = max_cascade_depth
        #: Cascade depth is tracked per *thread*: DBCRON may fire
        #: independent rules on pool workers concurrently, and each
        #: worker's rule chain is a separate cascade.
        self._local = threading.local()
        #: Serialises database-mutating rule work (``rule.fire``,
        #: RULE_TIME updates, schedule notifications) when rules fire on
        #: pool threads; re-entrant so a cascading rule on one thread is
        #: unaffected.  The expensive calendar-pipeline work
        #: (``next_trigger``) deliberately runs outside it.
        self._mutate_lock = threading.RLock()
        #: Set by DBCron; used as the default schedule start for rules
        #: declared without an explicit ``after``.
        self.clock = None
        #: Callbacks notified when a temporal rule is (re)scheduled.
        self._schedule_listeners: list[Callable[[str, int | None], None]] = []
        database.rule_manager = self

    @property
    def _depth(self) -> int:
        """This thread's cascade depth (see ``_local``)."""
        return getattr(self._local, "depth", 0)

    @_depth.setter
    def _depth(self, value: int) -> None:
        self._local.depth = value

    # -- event rules --------------------------------------------------------------

    def define_event_rule(self, name: str, event: str, relation: str,
                          condition: "str | Callable | None" = None,
                          actions: "Sequence[str] | None" = None,
                          callback: Callable | None = None,
                          valid_between: tuple | None = None) -> EventRule:
        """``On Event [to relation] where Condition do Action``."""
        if name in self.event_rules or name in self.temporal_rules:
            raise RuleError(f"rule {name!r} is already defined")
        rule = EventRule.define(name, event, relation, condition, actions,
                                callback)
        rule.valid_between = valid_between
        self.db.relation(relation)  # validate it exists
        self.event_rules[name] = rule
        hook = self._make_hook(rule)
        self.db.relation(relation).hooks[rule.event].append(hook)
        rule._hook = hook  # for removal
        return rule

    def _make_hook(self, rule: EventRule) -> Callable[[Event], None]:
        def hook(event: Event) -> None:
            if not rule.enabled:
                return
            if self._depth >= self.max_cascade_depth:
                raise RuleError(
                    f"rule cascade exceeded depth {self.max_cascade_depth} "
                    f"(at rule {rule.name!r})")
            now = self.clock.now if self.clock is not None else None
            if rule.matches(self.db._executor, event, now=now):
                self._depth += 1
                try:
                    rule.fire(self.db, event)
                finally:
                    self._depth -= 1
        return hook

    # -- temporal rules -------------------------------------------------------------

    def define_temporal_rule(self, name: str, calendar_expression: str,
                             actions: "Sequence[str] | None" = None,
                             callback: Callable | None = None,
                             after: int | None = None,
                             valid_between: tuple | None = None,
                             catchup: str = "all") -> TemporalRule:
        """``On Calendar-Expression do Action`` (section 4).

        The expression is parsed, factorized and compiled; the next trigger
        point after ``after`` (default: day 1) is computed and stored in
        RULE_TIME for DBCRON to probe.
        """
        if name in self.event_rules or name in self.temporal_rules:
            raise RuleError(f"rule {name!r} is already defined")
        rule = TemporalRule.define(name, calendar_expression,
                                   self.db.calendars,
                                   actions=actions, callback=callback,
                                   valid_between=valid_between,
                                   catchup=catchup)
        if after is not None:
            start = after
        elif self.clock is not None:
            start = self.clock.now
        else:
            start = 1
        next_fire = rule.next_trigger(self.db.calendars, start)
        self.temporal_rules[name] = rule
        self.tables.register(rule, next_fire)
        self._notify_schedule(name, next_fire)
        return rule

    def drop_rule(self, name: str) -> None:
        """Remove an event or temporal rule (and its catalog rows)."""
        if name in self.event_rules:
            rule = self.event_rules.pop(name)
            hooks = self.db.relation(rule.relation).hooks[rule.event]
            if getattr(rule, "_hook", None) in hooks:
                hooks.remove(rule._hook)
            return
        if name in self.temporal_rules:
            del self.temporal_rules[name]
            self.tables.unregister(name)
            self._notify_schedule(name, None)
            return
        raise RuleError(f"unknown rule {name!r}")

    # -- DBCRON interface --------------------------------------------------------------

    def subscribe_schedule(self,
                           listener: Callable[[str, int | None], None]
                           ) -> None:
        """Register a callback for (re)schedules: (rule, next_fire)."""
        self._schedule_listeners.append(listener)

    def _notify_schedule(self, name: str, next_fire: int | None) -> None:
        for listener in self._schedule_listeners:
            listener(name, next_fire)

    def fire_temporal(self, name: str, at_tick: int) -> int | None:
        """Fire a temporal rule and reschedule it; new next-fire or None.

        Safe to call from DBCRON pool workers for *distinct* rules: the
        calendar-pipeline work (``next_trigger``, the dominant cost) runs
        unlocked on the calling thread — the registry and matcache below
        it are thread-safe — while the database mutations (``rule.fire``,
        RULE_TIME update, schedule notification) are serialised by
        ``_mutate_lock``.
        """
        rule = self.temporal_rules.get(name)
        if rule is None or not rule.enabled:
            return None
        if rule.catchup == "latest" and self.clock is not None:
            # Skip forward to the most recent missed trigger point.
            now = self.clock.now
            candidate = rule.next_trigger(self.db.calendars, at_tick)
            while candidate is not None and candidate <= now:
                at_tick = candidate
                candidate = rule.next_trigger(self.db.calendars, at_tick)
        if self._depth >= self.max_cascade_depth:
            raise RuleError(
                f"rule cascade exceeded depth {self.max_cascade_depth} "
                f"(at rule {name!r})")
        self._depth += 1
        try:
            with self._mutate_lock:
                rule.fire(self.db, at_tick)
        finally:
            self._depth -= 1
        next_fire = rule.next_trigger(self.db.calendars, at_tick)
        with self._mutate_lock:
            self.tables.set_next_fire(name, next_fire)
            self._notify_schedule(name, next_fire)
        return next_fire
