"""Lexer for the calendar expression language.

One notable deviation from a conventional tokenizer: the paper spells
calendar names with embedded hyphens (``Jan-1993``, ``Expiration-Month``,
``Year-1993``) while also using ``-`` as the calendar difference operator
(``LDOM - LDOM_HOL``).  The lexer resolves the ambiguity by *gluing*: a
hyphen directly attached to an identifier on both sides (no whitespace)
extends the identifier; a hyphen with surrounding whitespace is the
subtraction operator.  The single identifier ``n`` (the "last element"
selector) never glues, so ``[n-2]``-style predicates still lex as three
tokens.
"""

from __future__ import annotations

from repro.lang.errors import LexError
from repro.lang.tokens import KEYWORDS, Token, TokenType

__all__ = ["tokenize"]

_SIMPLE = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ":": TokenType.COLON,
    ".": TokenType.DOT,
    "/": TokenType.SLASH,
    ";": TokenType.SEMI,
    ",": TokenType.COMMA,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "=": TokenType.ASSIGN,
    "*": TokenType.STAR,
    "&": TokenType.AMP,
}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_part(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``, returning a list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)
    preceded_by_space = True

    def advance(count: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            preceded_by_space = True
            advance()
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            start_line, start_col = line, col
            advance(2)
            while i < n and not (source[i] == "*" and i + 1 < n
                                 and source[i + 1] == "/"):
                advance()
            if i >= n:
                raise LexError("unterminated comment", start_line, start_col)
            advance(2)
            preceded_by_space = True
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                advance()
            preceded_by_space = True
            continue
        glued = not preceded_by_space
        preceded_by_space = False
        start_line, start_col = line, col
        if ch == '"':
            advance()
            chars: list[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\\" and i + 1 < n:
                    advance()
                    chars.append(source[i])
                else:
                    chars.append(source[i])
                advance()
            if i >= n:
                raise LexError("unterminated string", start_line, start_col)
            advance()
            tokens.append(Token(TokenType.STRING, "".join(chars),
                                start_line, start_col, glued))
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token(TokenType.NUMBER, text,
                                start_line, start_col, glued))
            continue
        if _is_ident_start(ch):
            j = i
            while j < n:
                if _is_ident_part(source[j]):
                    j += 1
                    continue
                # Glue an attached hyphen into the name (Jan-1993), except
                # after the bare selector "n".
                if (source[j] == "-" and j + 1 < n
                        and _is_ident_part(source[j + 1])
                        and source[i:j] != "n"):
                    j += 2
                    continue
                break
            text = source[i:j]
            advance(j - i)
            token_type = KEYWORDS.get(text, TokenType.IDENT)
            tokens.append(Token(token_type, text, start_line, start_col,
                                glued))
            continue
        if ch == "<":
            if i + 1 < n and source[i + 1] == "=":
                advance(2)
                tokens.append(Token(TokenType.LE, "<=", start_line,
                                    start_col, glued))
            else:
                advance()
                tokens.append(Token(TokenType.LT, "<", start_line,
                                    start_col, glued))
            continue
        if ch in _SIMPLE:
            advance()
            tokens.append(Token(_SIMPLE[ch], ch, start_line, start_col,
                                glued))
            continue
        raise LexError(f"unexpected character {ch!r}", start_line, start_col)
    tokens.append(Token(TokenType.EOF, "", line, col, False))
    return tokens
