"""Vectorized retrieve planning: the batch pipeline's front half.

The executor's historical binding loop enumerates every range-variable
combination through a Python nested-loop ``recurse`` with per-tuple dict
plumbing.  This module classifies a ``retrieve`` statement's predicate
into batch-executable pieces so :class:`~repro.db.executor.Executor` can
run it as a vectorized pipeline instead:

* **per-variable filters** — conjuncts referencing a single range
  variable, applied to that relation's candidate batch with a
  short-circuit selection vector; ``<col> within "<calendar>"``
  conjuncts become *batched calendar probes* (sort the valid-time lane
  once, one merge pass over the calendar's endpoint lanes);
* **join edges** — equi-conjuncts ``a.x = b.y`` become hash joins (or
  sort-merge joins fed by both relations' :class:`OrderedIndex` lanes),
  and ``overlaps(a.lo, a.hi, b.lo, b.hi)`` / ``during(...)`` conjuncts
  become Piatov-style endpoint sweeps
  (:func:`repro.core.columnar.interval_join_pairs`);
* **residue** — anything else on a single variable runs row-at-a-time
  over the surviving batch; a non-vectorizable *join-level* conjunct
  (e.g. ``a.k = b.k + 1``, or an ``or`` spanning two variables) rejects
  the whole plan so the statement takes the existing nested-loop path
  and its pushdown pruning.

Classification is purely syntactic over the QL AST plus two semantic
guards: an operator the user has overridden in the
:class:`~repro.db.types.OperatorRegistry` is never vectorized (the
batch kernels bake in the built-in semantics), and ``overlaps`` /
``during`` only sweep when they still resolve to the database's own
builtin implementations.

``REPRO_VECTOR_DB=0`` (or :func:`set_enabled`) restores the row-at-a-
time engine everywhere — the same gate discipline as
``REPRO_COLUMNAR`` / ``REPRO_PERIODIC``.
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field

from repro.db.ql.ast import (
    BinOp,
    ColumnRef,
    Const,
    FuncCall,
    Retrieve,
)

__all__ = [
    "enabled",
    "set_enabled",
    "plan_retrieve",
    "VectorPlan",
    "WithinFilter",
    "ScalarFilter",
    "EquiEdge",
    "IntervalEdge",
    "STRAT_HASH",
    "STRAT_MERGE",
    "STRAT_SWEEP",
    "STRAT_CALENDAR",
    "STRAT_SEQUENTIAL",
]

#: Strategy labels — shared by EXPLAIN output and the
#: ``db.join.strategy`` counter family.
STRAT_HASH = "hash join"
STRAT_MERGE = "merge join"
STRAT_SWEEP = "endpoint sweep"
STRAT_CALENDAR = "batched calendar sweep"
STRAT_SEQUENTIAL = "sequential fallback"

#: The two builtin interval-predicate functions the sweep understands.
SWEEP_FUNCTIONS = ("overlaps", "during")


def _env_enabled() -> bool:
    return os.environ.get("REPRO_VECTOR_DB", "1").lower() not in (
        "0", "off", "false", "no")


_ENABLED = _env_enabled()


def enabled() -> bool:
    """True when retrieve statements should try the batch pipeline."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Toggle the vectorized engine; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


@dataclass(frozen=True)
class WithinFilter:
    """``var.column within "<calendar>"`` — a batched calendar probe."""

    var: str
    column: str
    calendar_ref: str
    term: object

    strategy = STRAT_CALENDAR


@dataclass(frozen=True)
class ScalarFilter:
    """A single-variable conjunct evaluated row-at-a-time over the
    candidate batch (the selection-vector residue)."""

    var: str
    term: object

    strategy = STRAT_SEQUENTIAL


@dataclass(frozen=True)
class EquiEdge:
    """``left_var.left_col = right_var.right_col`` — hash / merge join."""

    left_var: str
    left_col: str
    right_var: str
    right_col: str
    term: object

    def vars(self) -> tuple[str, str]:
        """The two range variables this edge connects."""
        return (self.left_var, self.right_var)


@dataclass(frozen=True)
class IntervalEdge:
    """``op(a.lo, a.hi, b.lo, b.hi)`` — endpoint-sweep interval join.

    ``op`` is ``overlaps`` or ``during`` (left interval during right).
    """

    op: str
    left_var: str
    left_lo: str
    left_hi: str
    right_var: str
    right_lo: str
    right_hi: str
    term: object

    strategy = STRAT_SWEEP

    def vars(self) -> tuple[str, str]:
        """The two range variables this edge connects."""
        return (self.left_var, self.right_var)


@dataclass
class VectorPlan:
    """A classified retrieve predicate, ready for batch execution."""

    #: Range-variable names in from-clause order.
    order: tuple[str, ...]
    #: Conjuncts referencing no range variable (parameter-only).
    const_terms: list = field(default_factory=list)
    #: var -> filters in original conjunct order.
    filters: dict = field(default_factory=dict)
    #: Join edges in original conjunct order.
    edges: list = field(default_factory=list)

    def filters_of(self, var: str) -> list:
        """One variable's filters, in original conjunct order."""
        return self.filters.get(var, [])

    def conjunct_strategies(self) -> list[tuple[object, str]]:
        """``(term, strategy)`` pairs in classification order — the raw
        material of the EXPLAIN strategy lines (equi edges report
        :data:`STRAT_HASH`; the executor upgrades index-fed first joins
        to :data:`STRAT_MERGE`)."""
        out: list[tuple[object, str]] = []
        for term in self.const_terms:
            out.append((term, STRAT_SEQUENTIAL))
        for var in self.order:
            for f in self.filters_of(var):
                out.append((f.term, f.strategy))
        for edge in self.edges:
            strategy = STRAT_HASH if isinstance(edge, EquiEdge) \
                else STRAT_SWEEP
            out.append((edge.term, strategy))
        return out


def _conjuncts(expr) -> list:
    if expr is None:
        return []
    if isinstance(expr, BinOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _referenced_vars(expr, out: set) -> None:
    if isinstance(expr, ColumnRef):
        out.add(expr.var)
    elif isinstance(expr, BinOp):
        _referenced_vars(expr.left, out)
        _referenced_vars(expr.right, out)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            _referenced_vars(arg, out)
    elif hasattr(expr, "operand"):  # UnOp
        _referenced_vars(expr.operand, out)


def _classify_pair(term, overridden_ops: set, db) -> "object | None":
    """An :class:`EquiEdge` / :class:`IntervalEdge` for a two-variable
    conjunct, or ``None`` when it cannot be joined vectorized."""
    if isinstance(term, BinOp) and term.op == "=" and \
            "=" not in overridden_ops:
        left, right = term.left, term.right
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef) \
                and left.column and right.column and left.var != right.var:
            return EquiEdge(left.var, left.column, right.var, right.column,
                            term)
    if isinstance(term, FuncCall) and term.name in SWEEP_FUNCTIONS:
        if db.functions.resolve(term.name) is not \
                db.builtin_interval_predicates.get(term.name):
            return None
        args = term.args
        if len(args) == 4 and all(
                isinstance(a, ColumnRef) and a.column for a in args):
            avar, bvar = args[0].var, args[2].var
            if args[1].var == avar and args[3].var == bvar and avar != bvar:
                return IntervalEdge(term.name, avar, args[0].column,
                                    args[1].column, bvar, args[2].column,
                                    args[3].column, term)
    return None


def _classify_single(term, var: str, overridden_ops: set) -> object:
    """The filter object for a one-variable conjunct."""
    if isinstance(term, BinOp) and term.op == "within" and \
            "within" not in overridden_ops:
        left, right = term.left, term.right
        if isinstance(left, ColumnRef) and left.var == var and \
                left.column and isinstance(right, Const) and \
                isinstance(right.value, str):
            return WithinFilter(var, left.column, right.value, term)
    return ScalarFilter(var, term)


def plan_retrieve(stmt: Retrieve, db,
                  extra_keys: "set[str]"
                  ) -> tuple["VectorPlan | None", "str | None"]:
    """Classify a retrieve for batch execution.

    Returns ``(plan, None)`` when every conjunct landed in a batch-
    executable bucket, or ``(None, reason)`` when the statement must
    take the row-at-a-time path.  ``extra_keys`` are externally bound
    parameter names (treated as constants, exactly like the binding
    loop's pushdown does).
    """
    if not enabled():
        return None, "REPRO_VECTOR_DB=0"
    if not stmt.range_vars:
        return None, "no range variables"
    for rv in stmt.range_vars:
        if rv.as_of is not None:
            return None, (f"as of historical scan on {rv.var} "
                          "forces the sequential path")
    names = [rv.var for rv in stmt.range_vars]
    if len(set(names)) != len(names):
        return None, "duplicate range variable"
    if set(names) & extra_keys:
        return None, "range variable shadows a bound parameter"
    known = set(names)
    overridden = set(db.operators.names())
    plan = VectorPlan(order=tuple(names))
    for term in _conjuncts(stmt.where):
        refs: set = set()
        _referenced_vars(term, refs)
        refs -= extra_keys
        if not refs <= known:
            unbound = sorted(refs - known)
            return None, f"unbound variable {unbound[0]!r}"
        if not refs:
            plan.const_terms.append(term)
            continue
        if len(refs) == 1:
            var = next(iter(refs))
            plan.filters.setdefault(var, []).append(
                _classify_single(term, var, overridden))
            continue
        if len(refs) == 2:
            edge = _classify_pair(term, overridden, db)
            if edge is not None:
                plan.edges.append(edge)
                continue
        return None, f"non-vectorizable join conjunct {term}"
    return plan, None
