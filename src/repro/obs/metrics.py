"""Process metrics: counters, gauges and monotonic-timing histograms.

A :class:`MetricsRegistry` owns named instruments.  Instruments are
created on first use (``registry.counter("matcache.hits")``) and the same
object is returned for the same name thereafter, so call sites can bind
an instrument once and update it lock-cheap in hot loops.  Three kinds:

* :class:`Counter` — a monotonically increasing integer (events, items);
* :class:`Gauge` — a point-in-time value that moves both ways (drift,
  heap depth);
* :class:`Histogram` — a distribution over fixed exponential buckets,
  tuned for wall-clock timings measured with
  :func:`time.perf_counter` (1µs … 10s).

Every instrument is thread-safe; snapshots (:meth:`MetricsRegistry.
snapshot`) are consistent per instrument, not across instruments — good
enough for observability, cheap enough for hot paths.
"""

from __future__ import annotations

import bisect
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BOUNDS"]

#: Upper bounds (seconds) of the default latency buckets: a 1-2.5-5
#: series from 1µs to 10s; one implicit overflow bucket above the last.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (1.0, 2.5, 5.0)
) + (10.0,)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "description", "_value", "_lock")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (negative amounts are rejected)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def reset(self) -> None:
        """Zero the counter (stats-reset support, not for normal use)."""
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "description", "_value", "_lock")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        """Move the gauge by ``delta`` (either direction)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        """The current gauge value."""
        return self._value

    def reset(self) -> None:
        """Zero the gauge."""
        with self._lock:
            self._value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """A fixed-bucket histogram for monotonic (perf_counter) timings.

    Buckets are defined by their inclusive upper bounds plus an implicit
    overflow bucket; the defaults cover 1µs–10s on a 1-2.5-5 series.
    Tracks count, sum, min and max exactly; quantiles are estimated from
    the bucket boundaries (an upper bound — good enough to find a hot
    kernel, not for SLA maths).
    """

    __slots__ = ("name", "description", "bounds", "_counts", "_count",
                 "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, description: str = "",
                 bounds: "tuple[float, ...] | None" = None) -> None:
        self.name = name
        self.description = description
        self.bounds = tuple(bounds) if bounds is not None \
            else DEFAULT_LATENCY_BOUNDS
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError(
                f"histogram {name!r} bucket bounds must be sorted and "
                "non-empty")
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all recorded samples."""
        return self._sum

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (0..1); None when empty.

        Returns the upper bound of the bucket holding the quantile
        (clamped to the observed max), an intentionally conservative
        estimate.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            if self._count == 0:
                return None
            rank = q * self._count
            seen = 0
            for i, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= rank and bucket_count:
                    bound = self.bounds[i] if i < len(self.bounds) \
                        else self._max
                    return min(bound, self._max)
            return self._max

    def percentile(self, q: float) -> float | None:
        """Interpolated ``q``-percentile (0..1); None when empty.

        Unlike :meth:`quantile` (which returns the holding bucket's
        upper bound), this interpolates linearly *within* the bucket by
        the rank's position among its samples, clamped to the observed
        min/max — a smoother estimate for ``\\metrics``-style display.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile {q} outside [0, 1]")
        with self._lock:
            if self._count == 0:
                return None
            counts = list(self._counts)
            count, lo, hi = self._count, self._min, self._max
        rank = q * count
        seen = 0
        for i, bucket_count in enumerate(counts):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else hi
                fraction = (rank - seen) / bucket_count
                value = lower + (upper - lower) * max(0.0, fraction)
                return min(max(value, lo), hi)
            seen += bucket_count
        return hi

    def cumulative_buckets(self) -> "list[tuple[float, int]]":
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style.

        The final pair carries ``float('inf')`` and equals the total
        sample count — the ``le="+Inf"`` bucket of the text exposition.
        """
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, counts):
            cumulative += bucket_count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + counts[-1]))
        return out

    def summary(self) -> dict:
        """Count/sum/mean/min/max plus p50/p90/p99 estimates."""
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        out = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else None,
            "min": lo,
            "max": hi,
        }
        for label, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            out[label] = self.quantile(q)
        return out

    def reset(self) -> None:
        """Drop every recorded sample."""
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self._count})"


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter."""

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}")
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get_or_create(
            name, Counter, lambda: Counter(name, description))

    def gauge(self, name: str, description: str = "") -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get_or_create(
            name, Gauge, lambda: Gauge(name, description))

    def histogram(self, name: str, description: str = "",
                  bounds: "tuple[float, ...] | None" = None) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, description, bounds))

    def names(self) -> list[str]:
        """Sorted names of every registered instrument."""
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str):
        """The instrument under ``name``, or None."""
        with self._lock:
            return self._instruments.get(name)

    def snapshot(self) -> dict:
        """A plain-dict snapshot of every instrument, keyed by name.

        Counters and gauges map to their value; histograms to their
        :meth:`Histogram.summary` dict.
        """
        with self._lock:
            instruments = list(self._instruments.items())
        out: dict = {}
        for name, instrument in sorted(instruments):
            if isinstance(instrument, Histogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        return out

    def reset(self) -> None:
        """Reset every instrument (counters/gauges to 0, histograms empty)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()
