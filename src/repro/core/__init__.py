"""Core calendar model: intervals, calendars, algebra, chronology.

This package implements section 3.1-3.2 of the paper: the zero-skipping
time axis, Allen-style interval relations, order-n calendars, the
foreach/selection algebra, the basic calendars with ``generate`` and
``caloperate``, and calendar-parameterised date arithmetic.
"""

from repro.core.algebra import (
    LAST,
    SelectionPredicate,
    caloperate,
    foreach,
    label_select,
    select,
)
from repro.core.arithmetic import (
    GregorianScheme,
    Thirty360Scheme,
    count_points_between,
    next_point,
    point_index,
    prev_point,
    shift_point,
)
from repro.core.basis import BASIC_CALENDARS, CalendarSystem
from repro.core.calendar import EMPTY, Calendar
from repro.core.columnar import IntervalColumns
from repro.core.chrono import CivilDate, Epoch, parse_date, weekday
from repro.core.errors import (
    AxisError,
    CalendarError,
    ChronologyError,
    GranularityError,
    InvalidIntervalError,
    LifespanError,
    OperatorError,
    SelectionError,
)
from repro.core.granularity import Granularity
from repro.core.matcache import (
    MaterialisationCache,
    get_default_cache,
    set_default_cache,
)
from repro.core.interval import (
    LISTOPS,
    Interval,
    Listop,
    axis_add,
    axis_diff,
    axis_distance,
    axis_next,
    axis_points,
    axis_prev,
    get_listop,
    register_listop,
)

__all__ = [
    "Interval", "Calendar", "EMPTY", "IntervalColumns",
    "CalendarSystem", "BASIC_CALENDARS",
    "Granularity", "CivilDate", "Epoch", "parse_date", "weekday",
    "MaterialisationCache", "get_default_cache", "set_default_cache",
    "foreach", "select", "label_select", "caloperate",
    "SelectionPredicate", "LAST",
    "next_point", "prev_point", "shift_point", "point_index",
    "count_points_between", "GregorianScheme", "Thirty360Scheme",
    "axis_add", "axis_diff", "axis_distance", "axis_next", "axis_prev",
    "axis_points", "register_listop", "get_listop", "Listop", "LISTOPS",
    "CalendarError", "InvalidIntervalError", "AxisError", "GranularityError",
    "ChronologyError", "SelectionError", "OperatorError", "LifespanError",
]
