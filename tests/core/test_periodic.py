"""Periodic-set compilation: the compiled form, its gate, and its wiring.

The parity of compiled answers against the interpreter oracle across
random expressions lives in ``tests/property/test_periodic_props.py``;
this file covers the deterministic surface: PeriodicSet arithmetic on
the zero-skip axis, compilation outcomes (including every documented
fallback class), the ``Session(periodic=)`` / ``REPRO_PERIODIC`` gate,
the no-materialisation guarantee for scheduling, and the ``explain``
backend annotation.
"""

from __future__ import annotations

import pytest

from repro.core.granularity import Granularity
from repro.core.periodic import (
    GREGORIAN_PERIOD_DAYS,
    PeriodicSet,
    compile_expression_periodic,
)


@pytest.fixture(autouse=True)
def _default_gate(monkeypatch):
    """This module tests the periodic machinery itself, including its
    default-on gate; run it with the environment override cleared so a
    ``REPRO_PERIODIC=0`` suite pass (CI's gated-off job) still
    exercises the compiled path here.  The gate tests below set the
    env var explicitly where the override is the thing under test."""
    monkeypatch.delenv("REPRO_PERIODIC", raising=False)


@pytest.fixture()
def tuesdays() -> PeriodicSet:
    """Hand-built weekly set: linear day 4 of each week (Tuesdays).

    Linear day 0 is Thursday Jan 1 1987 (axis tick 1), so the first
    Tuesday is linear day 5 (axis tick 6).  Offsets are runs of linear
    days within the period: ``(5, 5)`` is the single-day run.
    """
    return PeriodicSet(period=7, offsets=((5, 5),),
                       granularity=Granularity.DAYS,
                       source="[2]/DAYS:during:WEEKS")


class TestPeriodicSetArithmetic:
    def test_contains_is_period_modular(self, tuesdays):
        assert tuesdays.contains(6)
        assert tuesdays.contains(6 + 7)
        assert tuesdays.contains(6 + 70_000 * 7)
        assert not tuesdays.contains(5)
        assert not tuesdays.contains(7)

    def test_next_occurrence_strictly_after(self, tuesdays):
        assert tuesdays.next_occurrence(5) == 6
        assert tuesdays.next_occurrence(6) == 13
        assert tuesdays.next_occurrence(12) == 13

    def test_prev_occurrence_strictly_before(self, tuesdays):
        assert tuesdays.prev_occurrence(13) == 6
        assert tuesdays.prev_occurrence(7) == 6

    def test_zero_skip_axis_has_no_tick_zero(self, tuesdays):
        """The axis jumps -1 -> 1; no occurrence may be reported at 0."""
        walker = tuesdays.next_occurrence(-400)
        seen = []
        while walker is not None and walker < 40:
            seen.append(walker)
            walker = tuesdays.next_occurrence(walker)
        assert 0 not in seen
        assert seen == sorted(seen)
        # consecutive Tuesdays are 7 axis days apart — which spans the
        # -1 -> 1 jump without a phantom extra day.
        gaps = {b - a for a, b in zip(seen, seen[1:])}
        assert gaps <= {7, 8}  # 8 only across the missing tick 0

    def test_negative_ticks_round_trip(self, tuesdays):
        t = tuesdays.next_occurrence(-1000)
        assert tuesdays.contains(t)
        assert tuesdays.next_occurrence(tuesdays.prev_occurrence(t)) == t
        assert tuesdays.prev_occurrence(tuesdays.next_occurrence(t)) == t

    def test_iter_from_matches_next_chain(self, tuesdays):
        ticks = []
        for tick in tuesdays.iter_from(-30):
            ticks.append(tick)
            if len(ticks) == 10:
                break
        chain, cursor = [], tuesdays.next_occurrence(-31)
        while len(chain) < 10:
            chain.append(cursor)
            cursor = tuesdays.next_occurrence(cursor)
        assert ticks == chain


class TestCompilationOutcomes:
    def test_weekly_selection_compiles_to_period_7(self, registry):
        pset = registry.periodic_set("[2]/DAYS:during:WEEKS")
        assert pset is not None
        assert pset.period == 7
        assert len(pset.offsets) == 1

    def test_weekday_union_compiles(self, registry):
        pset = registry.periodic_set("flatten([1-5]/DAYS:during:WEEKS)")
        assert pset is not None
        assert pset.period == 7
        # contiguous weekdays merge into runs; 5 covered days per week
        assert sum(hi - lo + 1 for lo, hi in pset.offsets) == 5

    def test_finite_expression_compiles_to_pure_patch(self, registry):
        pset = registry.periodic_set(
            "DAYS:during:[1]/MONTHS:during:1993/YEARS")
        assert pset is not None
        assert pset.period == 0
        assert len(pset.patch_elements) == 31
        assert pset.exact_elements

    def test_month_shape_needs_the_gregorian_period(self, registry):
        pset = registry.periodic_set("[1]/DAYS:during:MONTHS")
        assert pset is not None
        assert pset.period == GREGORIAN_PERIOD_DAYS
        assert len(pset.offsets) == 4800  # 12 months x 400 years

    def test_today_falls_back(self, registry):
        assert registry.periodic_set("today:during:WEEKS") is None

    def test_unbounded_lookback_falls_back(self, registry):
        assert registry.periodic_set("DAYS:<:WEEKS") is None

    def test_clipped_lifespan_calendar_falls_back(self, registry):
        """HOLIDAYS carries an install lifespan; evaluate() clips by it,
        so the compiled form (which cannot see the clip) must refuse."""
        assert registry.periodic_set("HOLIDAYS") is None

    def test_fallback_is_memoised_and_reported(self, registry):
        registry.periodic_set("today:during:WEEKS")
        fallbacks = registry.instrumentation.metrics.counter(
            "periodic.fallback").value
        registry.periodic_set("today:during:WEEKS")
        assert registry.instrumentation.metrics.counter(
            "periodic.fallback").value == fallbacks

    def test_compiled_metric_counts(self, registry):
        before = registry.instrumentation.metrics.counter(
            "periodic.compiled").value
        registry.periodic_set("[3]/DAYS:during:WEEKS")
        assert registry.instrumentation.metrics.counter(
            "periodic.compiled").value == before + 1

    def test_peek_never_compiles(self, registry):
        metrics = registry.instrumentation.metrics
        compiled = metrics.counter("periodic.compiled").value
        fallback = metrics.counter("periodic.fallback").value
        assert registry.periodic_set("[4]/DAYS:during:WEEKS",
                                     peek=True) is None
        assert metrics.counter("periodic.compiled").value == compiled
        assert metrics.counter("periodic.fallback").value == fallback
        # ...and a peek after a real compile serves the memoised form
        pset = registry.periodic_set("[4]/DAYS:during:WEEKS")
        assert registry.periodic_set("[4]/DAYS:during:WEEKS",
                                     peek=True) is pset

    def test_direct_compiler_reports_reasons(self, registry):
        from repro.lang.factorizer import factorize
        from repro.lang.parser import parse_expression

        factored = factorize(parse_expression("today:during:WEEKS"),
                             registry.resolver).expression
        reasons = []
        pset = compile_expression_periodic(
            factored, system=registry.system, resolver=registry.resolver,
            evaluate=lambda win: registry.eval_expression(
                "today:during:WEEKS", window=win, optimize=False),
            reason_out=reasons)
        assert pset is None
        assert reasons


class TestGate:
    def test_env_gate_defaults_on(self, registry):
        assert registry.periodic

    def test_env_gate_off(self, monkeypatch, system87):
        from repro.catalog import CalendarRegistry

        monkeypatch.setenv("REPRO_PERIODIC", "0")
        assert not CalendarRegistry(system87).periodic

    def test_explicit_argument_beats_env(self, monkeypatch, system87):
        from repro.catalog import CalendarRegistry

        monkeypatch.setenv("REPRO_PERIODIC", "0")
        assert CalendarRegistry(system87, periodic=True).periodic

    def test_gated_off_registry_never_compiles(self, registry):
        registry.periodic = False
        assert registry.periodic_set("[2]/DAYS:during:WEEKS") is None

    def test_session_gate_reaches_database(self):
        from repro.session import Session

        session = Session(periodic=False, holiday_years=(1987, 1996))
        assert not session.registry.periodic
        assert not session.db.calendars.periodic
        assert session.db.resolve_periodic("Mondays") is None

    def test_gated_off_results_agree(self, registry, system87):
        from repro.catalog import (
            CalendarRegistry,
            install_standard_calendars,
            install_us_holidays,
        )

        plain = CalendarRegistry(system87, default_horizon_years=25,
                                 periodic=False)
        install_standard_calendars(plain)
        install_us_holidays(plain, 1987, 2006)
        window = ("Jan 1 1993", "Dec 31 1993")
        for text in ("[2]/DAYS:during:WEEKS", "Weekdays",
                     "DAYS:during:[1]/MONTHS:during:1993/YEARS"):
            registry.eval_expression(text, window=window)  # warm compile
            assert registry.eval_expression(
                text, window=window).flatten() == plain.eval_expression(
                    text, window=window).flatten()
            assert registry.next_occurrence(text, 2200) == \
                plain.next_occurrence(text, 2200)


class TestNoMaterialisation:
    """The acceptance criterion: scheduling on a compiled rule never
    generates a window — observed through the matcache request counter,
    which ticks on every MaterialisationCache.generate call."""

    def test_next_occurrence_does_not_generate(self, registry):
        registry.periodic_set("[2]/DAYS:during:WEEKS")  # compile now
        before = registry.matcache.stats()["requests"]
        for after in (2000, 2100, 2345, -5, 9000):
            assert registry.next_occurrence(
                "[2]/DAYS:during:WEEKS", after) is not None
        assert registry.matcache.stats()["requests"] == before

    def test_rule_next_trigger_does_not_generate(self, ruled_db):
        db, manager, clock, cron = ruled_db
        registry = db.calendars
        manager.define_temporal_rule(
            "weekly", "[2]/DAYS:during:WEEKS",
            callback=lambda database, tick: None)
        rule = manager.temporal_rules["weekly"]
        assert rule.periodic is not None
        before = registry.matcache.stats()["requests"]
        after = clock.now
        for _ in range(25):
            after = rule.next_trigger(registry, after)
            assert after is not None
        assert registry.matcache.stats()["requests"] == before

    def test_materialising_rule_still_generates(self, ruled_db):
        """Control: with the gate off the same walk does hit the cache."""
        db, manager, clock, cron = ruled_db
        registry = db.calendars
        registry.periodic = False
        manager.define_temporal_rule(
            "weekly", "[2]/DAYS:during:WEEKS",
            callback=lambda database, tick: None)
        rule = manager.temporal_rules["weekly"]
        assert rule.periodic is None
        before = registry.matcache.stats()["requests"]
        # an `after` outside the schedule blocks warmed at declaration
        rule.next_trigger(registry, clock.now + 5_000)
        assert registry.matcache.stats()["requests"] > before


class TestExplainBackend:
    def _session(self):
        from repro.session import Session

        return Session(holiday_years=(1987, 1996))

    def test_backend_periodic_after_warm_eval(self):
        session = self._session()
        text = "[2]/DAYS:during:WEEKS"
        window = ("Jan 1 1993", "Dec 31 1993")
        for _ in range(2):  # first eval warms the compile memo
            session.eval(text, window=window)
        explanation = session.explain(text, window=window)
        assert explanation.backend.startswith("periodic")
        assert "backend" in explanation.render()
        from repro.lang.plan import PeriodicStep
        assert any(isinstance(step, PeriodicStep)
                   for step in explanation.opt_plan.steps)

    def test_backend_chain_for_non_compilable(self):
        session = self._session()
        text = "DAYS:<:WEEKS"
        window = ("Jan 1 1993", "Mar 31 1993")
        for _ in range(2):
            session.eval(text, window=window)
        explanation = session.explain(text, window=window)
        assert explanation.backend == "materialising chain"

    def test_explain_before_any_eval_stays_side_effect_free(self):
        session = self._session()
        metrics = session.registry.instrumentation.metrics
        compiled = metrics.counter("periodic.compiled").value
        fallback = metrics.counter("periodic.fallback").value
        explanation = session.explain("[2]/DAYS:during:WEEKS",
                                      window=("Jan 1 1993", "Dec 31 1993"))
        assert explanation.backend == "materialising chain"
        assert metrics.counter("periodic.compiled").value == compiled
        assert metrics.counter("periodic.fallback").value == fallback

    def test_plan_substitution_result_parity(self):
        session = self._session()
        text = "flatten([1-5]/DAYS:during:WEEKS)"
        window = ("Dec 28 1992", "Jan 4 1993")  # year-straddling window
        first = session.eval(text, window=window).flatten()
        again = session.eval(text, window=window).flatten()
        assert first == again
        gated = self._session_off()
        assert gated.eval(text, window=window).flatten() == first

    def _session_off(self):
        from repro.session import Session

        return Session(periodic=False, holiday_years=(1987, 1996))
