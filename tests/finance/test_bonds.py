"""Unit tests for bond arithmetic (E11: 30/360 vs civil dates)."""

import pytest

from repro.core import CalendarError, CivilDate
from repro.finance import (
    Actual365Fixed,
    Bond,
    PAPER_BOND_CONVENTION,
    Thirty360,
    discount_yield,
    simple_yield,
)


@pytest.fixture()
def bond():
    return Bond(face=100.0, coupon_rate=0.08,
                maturity=CivilDate(1998, 11, 15), frequency=2)


class TestSchedule:
    def test_coupon_dates_semiannual(self, bond):
        dates = bond.coupon_dates(CivilDate(1997, 1, 1))
        assert dates == [CivilDate(1997, 5, 15), CivilDate(1997, 11, 15),
                         CivilDate(1998, 5, 15), CivilDate(1998, 11, 15)]

    def test_previous_coupon_date(self, bond):
        assert bond.previous_coupon_date(CivilDate(1993, 7, 1)) == \
            CivilDate(1993, 5, 15)

    def test_coupon_amount(self, bond):
        assert bond.coupon_amount() == pytest.approx(4.0)

    def test_quarterly_frequency(self):
        bond = Bond(face=100.0, coupon_rate=0.08,
                    maturity=CivilDate(1994, 12, 31), frequency=4)
        dates = bond.coupon_dates(CivilDate(1994, 1, 1))
        assert len(dates) == 4

    def test_bad_frequency(self):
        with pytest.raises(CalendarError):
            Bond(face=100.0, coupon_rate=0.08,
                 maturity=CivilDate(1998, 1, 1), frequency=3)


class TestAccruedInterest:
    def test_thirty360_accrual(self, bond):
        # May 15 -> Jul 1 is 46 days under 30/360; period is 180.
        accrued = bond.accrued_interest(CivilDate(1993, 7, 1), Thirty360())
        assert accrued == pytest.approx(4.0 * 46 / 180)

    def test_actual_accrual_differs(self, bond):
        a30 = bond.accrued_interest(CivilDate(1993, 7, 1), Thirty360())
        act = bond.accrued_interest(CivilDate(1993, 7, 1),
                                    Actual365Fixed())
        assert a30 != act

    def test_zero_at_coupon_date(self, bond):
        accrued = bond.accrued_interest(CivilDate(1993, 5, 15))
        assert accrued == pytest.approx(0.0)


class TestPriceYield:
    def test_price_decreases_with_yield(self, bond):
        settle = CivilDate(1993, 7, 1)
        p_low = bond.price(settle, 0.05)
        p_high = bond.price(settle, 0.12)
        assert p_low > p_high

    def test_price_yield_roundtrip(self, bond):
        settle = CivilDate(1993, 7, 1)
        for target_yield in (0.04, 0.08, 0.11):
            price = bond.price(settle, target_yield)
            solved = bond.yield_to_maturity(settle, price)
            assert solved == pytest.approx(target_yield, abs=1e-8)

    def test_unsolvable_price_rejected(self, bond):
        with pytest.raises(CalendarError):
            bond.yield_to_maturity(CivilDate(1993, 7, 1), 1e6)

    def test_convention_changes_price(self, bond):
        settle = CivilDate(1993, 7, 1)
        p30 = bond.price(settle, 0.08, Thirty360())
        pact = bond.price(settle, 0.08, Actual365Fixed())
        assert p30 != pact


class TestDiscountYields:
    SETTLE = CivilDate(1993, 1, 15)
    MATURITY = CivilDate(1993, 7, 15)

    def test_paper_convention_vs_actual(self):
        """E11: the same instrument yields differently under the paper's
        30/360-months-365-year calendar vs the civil calendar."""
        y_paper = discount_yield(100, 98, self.SETTLE, self.MATURITY,
                                 PAPER_BOND_CONVENTION)
        y_act = discount_yield(100, 98, self.SETTLE, self.MATURITY,
                               Actual365Fixed())
        assert y_paper != y_act
        # 180 convention-days vs 181 civil days over a 365-day year.
        assert y_paper == pytest.approx(0.02 * 365 / 180)
        assert y_act == pytest.approx(0.02 * 365 / 181)

    def test_simple_yield_on_price(self):
        y = simple_yield(100, 98, self.SETTLE, self.MATURITY,
                         PAPER_BOND_CONVENTION)
        assert y == pytest.approx((2 / 98) * 365 / 180)

    def test_inverted_dates_rejected(self):
        with pytest.raises(CalendarError):
            discount_yield(100, 98, self.MATURITY, self.SETTLE)
