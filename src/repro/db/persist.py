"""JSON persistence for databases, calendars and rules.

An in-memory substrate still needs durability: :func:`save_database`
serialises a whole :class:`~repro.db.database.Database` — calendar system
epoch, CALENDARS catalog (derivation scripts and explicit values),
relations (schemas, rows, indexes) and rules (as Postquel text) — and
:func:`load_database` reconstructs it, recompiling every derivation
script and rule through the normal pipeline.

Cell values may be ints, floats, strings, booleans, None,
:class:`~repro.core.chrono.CivilDate` and order-1
:class:`~repro.core.calendar.Calendar` values (tagged encodings).
Rules defined with Python callbacks cannot be serialised; they are
reported in the save result so callers can re-attach them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.catalog.registry import CalendarRegistry
from repro.core.basis import CalendarSystem
from repro.core.calendar import Calendar
from repro.core.chrono import CivilDate
from repro.db.database import Database
from repro.db.errors import DatabaseError
from repro.db.ql.printer import render_statement

__all__ = ["save_database", "load_database", "dump_database",
           "restore_database", "SaveReport"]

_FORMAT_VERSION = 1
_SYSTEM_RELATIONS = ("pg_class", "pg_attribute")


@dataclass
class SaveReport:
    """What was persisted and what could not be."""

    relations: int = 0
    calendars: int = 0
    event_rules: int = 0
    temporal_rules: int = 0
    skipped_rules: list = field(default_factory=list)


def _encode_value(value):
    if isinstance(value, CivilDate):
        return {"__date__": [value.year, value.month, value.day]}
    if isinstance(value, Calendar):
        if value.order != 1:
            raise DatabaseError(
                "only order-1 calendar cells can be persisted")
        return {"__calendar__": list(map(list, value.to_pairs()))}
    if isinstance(value, float) and not math.isfinite(value):
        return {"__float__": repr(value)}
    return value


def _decode_value(value):
    if isinstance(value, dict):
        if "__date__" in value:
            return CivilDate(*value["__date__"])
        if "__calendar__" in value:
            return Calendar.from_intervals(
                [tuple(p) for p in value["__calendar__"]])
        if "__float__" in value:
            return float(value["__float__"])
    return value


def _encode_lifespan(lifespan):
    lo, hi = lifespan
    return [None if lo == -math.inf else lo,
            None if hi == math.inf else hi]


def _decode_lifespan(encoded):
    if encoded is None:
        return None
    lo, hi = encoded
    return (-math.inf if lo is None else lo,
            math.inf if hi is None else hi)


def dump_database(db: Database) -> tuple[dict, SaveReport]:
    """Serialise ``db`` to a JSON-compatible dict."""
    report = SaveReport()
    epoch = db.system.epoch.date
    payload: dict = {
        "format": _FORMAT_VERSION,
        "epoch": [epoch.year, epoch.month, epoch.day],
        "default_window": list(db.calendars.default_window),
        "calendars": [],
        "relations": [],
        "series": [],
        "event_rules": [],
        "temporal_rules": [],
    }
    for name, series in sorted(getattr(db.calendars,
                                       "_registered_series", {}).items()):
        payload["series"].append({
            "name": name,
            "calendar": list(map(list, series.calendar.to_pairs())),
            "values": list(series.values),
            "anchor": series.anchor,
        })
    for record in db.calendars.table:
        payload["calendars"].append({
            "name": record.name,
            "script": record.derivation_script,
            "values": (list(map(list, record.values.to_pairs()))
                       if record.values is not None else None),
            "granularity": (record.granularity.name
                            if record.granularity else None),
            "lifespan": _encode_lifespan(record.lifespan),
        })
        report.calendars += 1
    for name in db.relation_names():
        if name in _SYSTEM_RELATIONS or name in ("rule_info", "rule_time"):
            continue
        relation = db.relation(name)
        schema = relation.schema
        payload["relations"].append({
            "name": name,
            "columns": [[c.name, c.type_name] for c in schema.columns],
            "key": list(schema.key),
            "valid_time_column": schema.valid_time_column,
            "indexes": sorted(relation.indexes),
            "rows": [
                {k: _encode_value(v) for k, v in row.items()
                 if k != "_tid"}
                for row in relation.scan()],
        })
        report.relations += 1
    manager = db.rule_manager
    if manager is not None:
        for name, rule in manager.event_rules.items():
            if rule.callback is not None or callable(rule.condition):
                report.skipped_rules.append(name)
                continue
            payload["event_rules"].append({
                "name": name,
                "event": rule.event,
                "relation": rule.relation,
                "condition": (str(rule.condition)
                              if rule.condition is not None else None),
                "actions": [render_statement(a) for a in rule.actions],
                "enabled": rule.enabled,
                "tenant": rule.tenant,
                "priority": rule.priority,
            })
            report.event_rules += 1
        for name, rule in manager.temporal_rules.items():
            if rule.callback is not None:
                report.skipped_rules.append(name)
                continue
            payload["temporal_rules"].append({
                "name": name,
                "expression": rule.expression_text,
                "actions": [render_statement(a) for a in rule.actions],
                "enabled": rule.enabled,
                "next_fire": manager.tables.next_fire_of(name),
                "catchup": rule.catchup,
                "tenant": rule.tenant,
                "priority": rule.priority,
            })
            report.temporal_rules += 1
    return payload, report


def restore_database(payload: dict) -> Database:
    """Rebuild a database from :func:`dump_database` output.

    Derivation scripts and rules go through the normal parse/factorize/
    compile pipeline; a rule manager is attached when the payload holds
    any rules.
    """
    if payload.get("format") != _FORMAT_VERSION:
        raise DatabaseError(
            f"unsupported persistence format {payload.get('format')!r}")
    system = CalendarSystem.starting(CivilDate(*payload["epoch"]))
    registry = CalendarRegistry(system)
    registry.default_window = tuple(payload["default_window"])
    db = Database(calendars=registry)
    for cal in payload["calendars"]:
        registry.define(
            cal["name"],
            script=cal["script"],
            values=([tuple(p) for p in cal["values"]]
                    if cal["values"] is not None else None),
            granularity=cal["granularity"],
            lifespan=_decode_lifespan(cal["lifespan"]))
    for spec in payload.get("series", ()):
        from repro.timeseries.integration import register_series
        from repro.timeseries.series import RegularTimeSeries
        register_series(
            registry,
            RegularTimeSeries(
                Calendar.from_intervals([tuple(p)
                                         for p in spec["calendar"]]),
                spec["values"], name=spec["name"],
                anchor=spec["anchor"]),
            name=spec["name"])
    for rel in payload["relations"]:
        relation = db.create_table(
            rel["name"], [tuple(c) for c in rel["columns"]],
            key=tuple(rel["key"]),
            valid_time_column=rel["valid_time_column"])
        for row in rel["rows"]:
            relation.insert({k: _decode_value(v) for k, v in row.items()},
                            fire_hooks=False)
        for column in rel["indexes"]:
            db.create_index(rel["name"], column)
    if payload["event_rules"] or payload["temporal_rules"]:
        from repro.rules.manager import RuleManager
        manager = RuleManager(db)
        for spec in payload["event_rules"]:
            rule = manager.declare_event(
                spec["name"], event=spec["event"],
                relation=spec["relation"],
                condition=spec["condition"], actions=spec["actions"],
                tenant=spec.get("tenant", "default"),
                priority=spec.get("priority", 0))
            rule.enabled = spec["enabled"]
        for spec in payload["temporal_rules"]:
            rule = manager.declare_temporal(
                spec["name"], expression=spec["expression"],
                actions=spec["actions"],
                catchup=spec.get("catchup", "all"),
                tenant=spec.get("tenant", "default"),
                priority=spec.get("priority", 0))
            rule.enabled = spec["enabled"]
            manager.tables.set_next_fire(spec["name"], spec["next_fire"])
    return db


def save_database(db: Database, path: str) -> SaveReport:
    """Serialise ``db`` to a JSON file; returns what was saved/skipped."""
    payload, report = dump_database(db)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
    return report


def load_database(path: str) -> Database:
    """Load a database previously written by :func:`save_database`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return restore_database(payload)
