"""Bridging calendar expressions and iCalendar (RFC 5545) RRULEs.

The modern descendants of the paper's recurrence machinery are iCalendar
``RRULE`` strings.  This module converts in both directions:

* :func:`expression_to_rrule` recognises the common calendar-expression
  shapes and emits the equivalent RRULE —
  ``[2]/DAYS:during:WEEKS``            → ``FREQ=WEEKLY;BYDAY=TU``
  ``[15]/DAYS:during:MONTHS``          → ``FREQ=MONTHLY;BYMONTHDAY=15``
  ``[n]/DAYS:during:MONTHS``           → ``FREQ=MONTHLY;BYMONTHDAY=-1``
  ``[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS``
                                       → ``FREQ=MONTHLY;BYDAY=3FR``
  ``[40]/DAYS:during:YEARS``           → ``FREQ=YEARLY;BYYEARDAY=40``
  Expressions outside these shapes raise :class:`UnsupportedExpression`
  (the calendar algebra is strictly more expressive than RRULE).

* :func:`rrule_to_calendar` evaluates an RRULE string (DAILY / WEEKLY /
  MONTHLY / YEARLY with INTERVAL, BYDAY incl. ordinal prefixes,
  BYMONTHDAY, BYMONTH) over a day window, producing an explicit order-1
  calendar on the system's axis — cross-checked against
  ``dateutil.rrule`` in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.basis import CalendarSystem
from repro.core.calendar import Calendar
from repro.core.chrono import CivilDate, days_in_month, weekday
from repro.core.errors import CalendarError
from repro.core.granularity import Granularity
from repro.lang import ast
from repro.lang.parser import parse_expression

__all__ = [
    "UnsupportedExpression",
    "expression_to_rrule",
    "rrule_to_calendar",
    "calendar_to_dates",
]

#: iCalendar weekday codes indexed by ISO weekday (Mon=1..Sun=7).
_BYDAY_CODES = (None, "MO", "TU", "WE", "TH", "FR", "SA", "SU")
_CODE_TO_ISO = {code: i for i, code in enumerate(_BYDAY_CODES) if code}


class UnsupportedExpression(CalendarError):
    """The expression has no RRULE equivalent."""


# ---------------------------------------------------------------------------
# expression -> RRULE
# ---------------------------------------------------------------------------

def _single_index(predicate) -> int | None:
    """The predicate's single integer index (n => -1), else None."""
    from repro.core.algebra import LAST
    if len(predicate.items) != 1:
        return None
    item = predicate.items[0]
    if item is LAST:
        return -1
    if isinstance(item, int):
        return item
    return None


def _is_basic(node, name: str) -> bool:
    return isinstance(node, ast.Name) and node.ident.upper() == name


def expression_to_rrule(expression: "str | ast.Expr") -> str:
    """Translate a recognised calendar expression to an RRULE string."""
    expr = (parse_expression(expression)
            if isinstance(expression, str) else expression)
    if not isinstance(expr, ast.Select):
        raise UnsupportedExpression(
            f"no RRULE equivalent for {expr} (expected a selection)")
    index = _single_index(expr.predicate)
    if index is None:
        raise UnsupportedExpression(
            "RRULE export needs a single selection index")
    child = expr.child
    if not isinstance(child, ast.ForEach):
        raise UnsupportedExpression(f"no RRULE equivalent for {expr}")

    # [k]/DAYS:during:WEEKS  ->  weekly on weekday k
    if _is_basic(child.left, "DAYS") and _is_basic(child.right, "WEEKS"):
        if not 1 <= index <= 7:
            raise UnsupportedExpression(
                f"weekday index {index} out of range")
        return f"FREQ=WEEKLY;BYDAY={_BYDAY_CODES[index]}"

    # [k]/DAYS:during:MONTHS  ->  monthly on month day k (negative ok)
    if _is_basic(child.left, "DAYS") and _is_basic(child.right, "MONTHS"):
        if index == 0 or abs(index) > 31:
            raise UnsupportedExpression(
                f"month-day index {index} out of range")
        return f"FREQ=MONTHLY;BYMONTHDAY={index}"

    # [k]/DAYS:during:YEARS  ->  yearly on year day k
    if _is_basic(child.left, "DAYS") and _is_basic(child.right, "YEARS"):
        if index == 0 or abs(index) > 366:
            raise UnsupportedExpression(
                f"year-day index {index} out of range")
        return f"FREQ=YEARLY;BYYEARDAY={index}"

    # [j]/(weekday calendar):overlaps|during:MONTHS -> monthly ordinal BYDAY
    if child.op in ("overlaps", "during") and \
            _is_basic(child.right, "MONTHS") and \
            isinstance(child.left, ast.Select):
        weekday_index = _weekday_calendar_index(child.left)
        if weekday_index is not None:
            if index == 0 or abs(index) > 5:
                raise UnsupportedExpression(
                    f"ordinal {index} out of range for monthly BYDAY")
            return (f"FREQ=MONTHLY;BYDAY={index}"
                    f"{_BYDAY_CODES[weekday_index]}")
    raise UnsupportedExpression(f"no RRULE equivalent for {expr}")


def _weekday_calendar_index(node: ast.Select) -> int | None:
    """k when ``node`` is ``[k]/DAYS:during:WEEKS`` with 1 <= k <= 7."""
    index = _single_index(node.predicate)
    child = node.child
    if index is not None and 1 <= index <= 7 and \
            isinstance(child, ast.ForEach) and child.op == "during" and \
            _is_basic(child.left, "DAYS") and _is_basic(child.right,
                                                        "WEEKS"):
        return index
    return None


# ---------------------------------------------------------------------------
# RRULE -> calendar
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Rule:
    freq: str
    interval: int = 1
    by_day: tuple = ()          # of (ordinal | None, iso_weekday)
    by_month_day: tuple = ()    # of ints (negative = from end)
    by_month: tuple = ()        # of ints 1..12
    by_year_day: tuple = ()     # of ints


def _parse_rrule(text: str) -> _Rule:
    body = text.strip()
    if body.upper().startswith("RRULE:"):
        body = body[6:]
    parts: dict[str, str] = {}
    for chunk in body.split(";"):
        if not chunk:
            continue
        if "=" not in chunk:
            raise CalendarError(f"malformed RRULE component {chunk!r}")
        key, value = chunk.split("=", 1)
        parts[key.strip().upper()] = value.strip()
    freq = parts.get("FREQ", "").upper()
    if freq not in ("DAILY", "WEEKLY", "MONTHLY", "YEARLY"):
        raise CalendarError(f"unsupported RRULE FREQ {freq!r}")
    by_day = []
    for token in filter(None, parts.get("BYDAY", "").split(",")):
        token = token.strip().upper()
        code = token[-2:]
        if code not in _CODE_TO_ISO:
            raise CalendarError(f"bad BYDAY token {token!r}")
        prefix = token[:-2]
        ordinal = int(prefix) if prefix else None
        by_day.append((ordinal, _CODE_TO_ISO[code]))
    def int_list(key):
        return tuple(int(v) for v in
                     filter(None, parts.get(key, "").split(",")))
    return _Rule(
        freq=freq,
        interval=int(parts.get("INTERVAL", "1")),
        by_day=tuple(by_day),
        by_month_day=int_list("BYMONTHDAY"),
        by_month=int_list("BYMONTH"),
        by_year_day=int_list("BYYEARDAY"),
    )


def _nth_weekday(year: int, month: int, iso_weekday: int,
                 ordinal: int) -> CivilDate | None:
    if ordinal > 0:
        first = CivilDate(year, month, 1)
        day = 1 + (iso_weekday - weekday(first)) % 7 + (ordinal - 1) * 7
    else:
        last_day = days_in_month(year, month)
        last = CivilDate(year, month, last_day)
        day = last_day - (weekday(last) - iso_weekday) % 7 + \
            (ordinal + 1) * 7
    if 1 <= day <= days_in_month(year, month):
        return CivilDate(year, month, day)
    return None


def rrule_to_calendar(system: CalendarSystem, text: str,
                      start, end) -> Calendar:
    """Materialise an RRULE over ``[start, end]`` as an explicit calendar.

    ``start``/``end`` are civil dates, date strings or axis day ticks.
    The recurrence anchor (DTSTART equivalent) is ``start``; INTERVAL
    counts days/weeks/months/years from it.
    """
    rule = _parse_rrule(text)
    lo, hi = system.day_window(start, end)
    start_date = system.date_of(lo)
    days: list[int] = []
    for day in system.epoch.iter_days(lo, hi):
        date = system.date_of(day)
        if _matches(rule, date, start_date, system, day, lo):
            days.append(day)
    return Calendar.from_intervals([(d, d) for d in days],
                                   Granularity.DAYS)


def _matches(rule: _Rule, date: CivilDate, anchor: CivilDate,
             system: CalendarSystem, day: int, anchor_day: int) -> bool:
    if rule.by_month and date.month not in rule.by_month:
        return False
    if rule.freq == "DAILY":
        if rule.by_day and (None, weekday(date)) not in rule.by_day and \
                not any(wd == weekday(date) for _, wd in rule.by_day):
            return False
        return system.epoch.diff_days(day, anchor_day) % rule.interval == 0
    if rule.freq == "WEEKLY":
        if rule.by_day:
            if not any(wd == weekday(date) for _, wd in rule.by_day):
                return False
        elif weekday(date) != weekday(anchor):
            return False
        if rule.interval > 1:
            # Weeks counted from the anchor's week (Monday-aligned).
            anchor_week_start = anchor_day - (
                system.epoch.weekday_of(anchor_day) - 1)
            delta_days = system.epoch.diff_days(day, anchor_day) + (
                system.epoch.weekday_of(anchor_day) - 1)
            if (delta_days // 7) % rule.interval != 0:
                return False
        return True
    if rule.freq == "MONTHLY":
        months_from_anchor = ((date.year - anchor.year) * 12
                              + (date.month - anchor.month))
        if months_from_anchor % rule.interval != 0:
            return False
        if rule.by_month_day:
            n = days_in_month(date.year, date.month)
            allowed = {d if d > 0 else n + 1 + d
                       for d in rule.by_month_day}
            return date.day in allowed
        if rule.by_day:
            for ordinal, iso in rule.by_day:
                if ordinal is None:
                    if weekday(date) == iso:
                        return True
                else:
                    hit = _nth_weekday(date.year, date.month, iso, ordinal)
                    if hit == date:
                        return True
            return False
        return date.day == min(anchor.day,
                               days_in_month(date.year, date.month))
    # YEARLY
    if (date.year - anchor.year) % rule.interval != 0:
        return False
    if rule.by_year_day:
        jan1 = CivilDate(date.year, 1, 1)
        doy = (system.epoch.day_number(date)
               - system.epoch.day_number(jan1)) + 1
        year_len = 366 if days_in_month(date.year, 2) == 29 else 365
        allowed = {d if d > 0 else year_len + 1 + d
                   for d in rule.by_year_day}
        return doy in allowed
    if rule.by_month_day or rule.by_month:
        months = rule.by_month or (anchor.month,)
        month_days = rule.by_month_day or (anchor.day,)
        if date.month not in months:
            return False
        n = days_in_month(date.year, date.month)
        allowed = {d if d > 0 else n + 1 + d for d in month_days}
        return date.day in allowed
    return date.month == anchor.month and date.day == anchor.day


def calendar_to_dates(system: CalendarSystem, cal: Calendar) -> list:
    """Civil dates of an order-1 instant calendar (export helper)."""
    dates = []
    for iv in cal.iter_intervals():
        for day in iv:
            dates.append(system.date_of(day))
    return dates
