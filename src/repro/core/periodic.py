"""Periodic-set compilation: O(1) membership and next-occurrence.

CEL calendars over the paper's Gregorian basis are *eventually periodic*
(Bettini & Mascetti, "Mapping Calendar Expressions to Minimal Periodic
Sets"): weekday patterns repeat every 7 days, month/year boundary
patterns every 146 097 days (400 proleptic Gregorian years), and every
basis combination divides their lcm.  A :class:`PeriodicSet` captures a
calendar as

* a **period** ``P`` in day ticks with sorted coverage **offsets** (the
  residues covered inside one period), and
* an optional finite **patch** region — exact coverage runs over a
  bounded window that *overrides* the periodic part, which is how
  eventually-periodic sets (``Tuesdays - HOLIDAYS``, anything anchored
  to a literal year) keep their aperiodic prefix.

Membership, next/previous occurrence and forward iteration then run by
modular arithmetic over the offsets — no interval materialisation.

The compiler (:func:`compile_expression_periodic`) does **not** try to
compile the algebra symbolically.  It splits the work:

1. **Classify** the factorized AST conservatively: derive the period
   (lcm of basis periods), the extent of any finite contribution
   (explicit values, label-selected years, interval literals) and the
   maximum element span, or raise a fallback for shapes it cannot prove
   eventually periodic (sub-day/oversized granularities, unbounded
   lookback ``<``/``<=`` groupings, window-dependent selections,
   ``today``, function calls other than ``flatten``, unexpanded derived
   scripts, lcm above the Gregorian bound).
2. **Evaluate with the materialising oracle** over an anchor window one
   period wide (placed clear of the finite extent) and over the patch
   extent, then read coverage runs out of the result.  The compiled set
   is byte-identical to the oracle *by construction*.
3. **Verify** periodicity empirically on flank zones of the oracle
   windows: coverage left/right of the anchor period must match the
   extracted residues, and coverage just outside the patch window must
   match the periodic part (or be empty for purely finite sets).  Any
   mismatch falls back to ``None`` — the compiled path never guesses.

All arithmetic happens in *linear coordinates* ``L(t) = t - 1 if t > 0
else t`` (the order-preserving bijection that removes the zero-skip of
the axis), so residues are plain ``L % P``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from math import gcd
from typing import Callable, Iterator

from repro.core.calendar import Calendar
from repro.core.granularity import Granularity

__all__ = [
    "GREGORIAN_PERIOD_DAYS",
    "PeriodicSet",
    "compile_expression_periodic",
]

#: 400 proleptic Gregorian years: the master period of the day basis.
#: Both the weekday cycle (7) and the month/year boundary pattern divide
#: it, so every compilable basis combination has lcm <= this bound.
GREGORIAN_PERIOD_DAYS = 146_097

#: Basic granularity facts: (period in days, max element span in days).
#: DECADES/CENTURY are deliberately absent — their spans would force
#: margins (and anchor evaluations) past any sensible one-time budget.
_BASIC_FACTS = {
    Granularity.DAYS: (1, 1),
    Granularity.WEEKS: (7, 7),
    Granularity.MONTHS: (GREGORIAN_PERIOD_DAYS, 31),
    Granularity.YEARS: (GREGORIAN_PERIOD_DAYS, 366),
}

#: Grouping relations whose member window is unbounded to the left.
_UNBOUNDED_LOOKBACK = ("<", "<=")


def _lin(tick: int) -> int:
    """Axis tick -> linear coordinate (removes the zero skip)."""
    return tick - 1 if tick > 0 else tick


def _unlin(lin: int) -> int:
    """Linear coordinate -> axis tick."""
    return lin + 1 if lin >= 0 else lin


# ---------------------------------------------------------------------------
# Coverage-run helpers (runs are inclusive (lo, hi) pairs, linear coords)
# ---------------------------------------------------------------------------

def _coverage_runs(cal: Calendar) -> list[tuple[int, int]]:
    """Merged, sorted coverage runs of a calendar, in linear coords."""
    spans = sorted((iv.lo, iv.hi) for iv in cal.iter_intervals())
    runs: list[tuple[int, int]] = []
    for lo, hi in spans:
        llo, lhi = _lin(lo), _lin(hi)
        if runs and llo <= runs[-1][1] + 1:
            if lhi > runs[-1][1]:
                runs[-1] = (runs[-1][0], lhi)
        else:
            runs.append((llo, lhi))
    return runs


def _clip_runs(runs, lo: int, hi: int) -> list[tuple[int, int]]:
    """The part of sorted ``runs`` inside ``[lo, hi]``."""
    out = []
    for a, b in runs:
        if b < lo or a > hi:
            continue
        out.append((max(a, lo), min(b, hi)))
    return out


def _next_in_runs(los, his, x: int) -> int | None:
    """Smallest covered value >= x within sorted runs, else None."""
    idx = bisect_right(los, x) - 1
    if idx >= 0 and his[idx] >= x:
        return x
    idx += 1
    if idx < len(los):
        return los[idx]
    return None


def _prev_in_runs(los, his, x: int) -> int | None:
    """Largest covered value <= x within sorted runs, else None."""
    idx = bisect_right(los, x) - 1
    if idx < 0:
        return None
    return min(his[idx], x)


def _covered(los, his, x: int) -> bool:
    idx = bisect_right(los, x) - 1
    return idx >= 0 and his[idx] >= x


# ---------------------------------------------------------------------------
# PeriodicSet
# ---------------------------------------------------------------------------

@dataclass
class PeriodicSet:
    """A (eventually) periodic set of day ticks with O(log offsets) probes.

    ``period == 0`` means no periodic part (a purely finite set); an
    empty ``offsets`` with ``period > 0`` is the empty periodic part.
    ``patch_window``/``patch`` (linear coords) override the periodic
    part inside the window — the aperiodic prefix/region.

    ``elements``/``patch_elements`` additionally record the *element
    structure* of the oracle result (per-period offsets resp. absolute
    linear intervals); when ``exact_elements`` is true they reproduce
    the materialising backend's order-1 result exactly and the plan
    optimizer may substitute a :class:`~repro.lang.plan.PeriodicStep`.
    """

    period: int
    offsets: tuple = ()
    patch_window: tuple | None = None
    patch: tuple = ()
    elements: tuple = ()
    patch_elements: tuple = ()
    granularity: Granularity | None = None
    exact_elements: bool = False
    source: str = ""

    # bisect arrays, built once
    _off_los: list = field(init=False, repr=False, default_factory=list)
    _off_his: list = field(init=False, repr=False, default_factory=list)
    _patch_los: list = field(init=False, repr=False, default_factory=list)
    _patch_his: list = field(init=False, repr=False, default_factory=list)

    def __post_init__(self) -> None:
        self._off_los = [a for a, _ in self.offsets]
        self._off_his = [b for _, b in self.offsets]
        self._patch_los = [a for a, _ in self.patch]
        self._patch_his = [b for _, b in self.patch]

    # -- point probes ------------------------------------------------------------

    def contains(self, tick: int) -> bool:
        """Membership of an axis day tick, by modular arithmetic."""
        lin = _lin(tick)
        pw = self.patch_window
        if pw is not None and pw[0] <= lin <= pw[1]:
            return _covered(self._patch_los, self._patch_his, lin)
        if self.period and self._off_los:
            return _covered(self._off_los, self._off_his,
                            lin % self.period)
        return False

    def _next_periodic(self, lin: int) -> int | None:
        if not (self.period and self._off_los):
            return None
        block, residue = divmod(lin, self.period)
        value = _next_in_runs(self._off_los, self._off_his, residue)
        if value is not None:
            return block * self.period + value
        return (block + 1) * self.period + self._off_los[0]

    def _prev_periodic(self, lin: int) -> int | None:
        if not (self.period and self._off_los):
            return None
        block, residue = divmod(lin, self.period)
        value = _prev_in_runs(self._off_los, self._off_his, residue)
        if value is not None:
            return block * self.period + value
        return (block - 1) * self.period + self._off_his[-1]

    def _next_linear(self, lin: int) -> int | None:
        pw = self.patch_window
        best = None
        candidate = self._next_periodic(lin)
        if candidate is not None and pw is not None and \
                pw[0] <= candidate <= pw[1]:
            candidate = self._next_periodic(pw[1] + 1)
        best = candidate
        if pw is not None and lin <= pw[1]:
            hit = _next_in_runs(self._patch_los, self._patch_his,
                                max(lin, pw[0]))
            if hit is not None and hit <= pw[1] and \
                    (best is None or hit < best):
                best = hit
        return best

    def _prev_linear(self, lin: int) -> int | None:
        pw = self.patch_window
        candidate = self._prev_periodic(lin)
        if candidate is not None and pw is not None and \
                pw[0] <= candidate <= pw[1]:
            candidate = self._prev_periodic(pw[0] - 1)
        best = candidate
        if pw is not None and lin >= pw[0]:
            hit = _prev_in_runs(self._patch_los, self._patch_his,
                                min(lin, pw[1]))
            if hit is not None and hit >= pw[0] and \
                    (best is None or hit > best):
                best = hit
        return best

    def next_occurrence(self, tick: int) -> int | None:
        """Smallest member strictly after axis tick ``tick`` (or None)."""
        lin = self._next_linear(_lin(tick) + 1)
        return None if lin is None else _unlin(lin)

    def prev_occurrence(self, tick: int) -> int | None:
        """Largest member strictly before axis tick ``tick`` (or None)."""
        lin = self._prev_linear(_lin(tick) - 1)
        return None if lin is None else _unlin(lin)

    def iter_from(self, tick: int) -> Iterator[int]:
        """Members >= ``tick`` in increasing order (possibly unbounded)."""
        current = tick if self.contains(tick) else \
            self.next_occurrence(tick)
        while current is not None:
            yield current
            current = self.next_occurrence(current)

    # -- element expansion (plan backend) -----------------------------------------

    @property
    def _max_element_span(self) -> int:
        spans = [b - a for a, b in self.elements] or [0]
        return max(spans)

    def expand(self, window: tuple[int, int]) -> Calendar:
        """The order-1 calendar of elements overlapping ``window`` (ticks).

        Only meaningful when ``exact_elements`` is true — the compiler
        sets it only for purely periodic or purely finite sets whose
        element structure provably tiles, so periodic and patch elements
        never need to be mixed here.
        """
        lo, hi = _lin(window[0]), _lin(window[1])
        out: list[tuple[int, int]] = []
        if self.period and self.elements:
            span = self._max_element_span
            first = (lo - span - self.period) // self.period
            for block in range(first, hi // self.period + 1):
                base = block * self.period
                for elo, ehi in self.elements:
                    alo, ahi = base + elo, base + ehi
                    if ahi < lo or alo > hi:
                        continue
                    out.append((alo, ahi))
        for elo, ehi in self.patch_elements:
            if ehi < lo or elo > hi:
                continue
            out.append((elo, ehi))
        return Calendar.from_intervals(
            [(_unlin(a), _unlin(b)) for a, b in out], self.granularity)

    def expansion_cost(self, window: tuple[int, int]) -> int:
        """Estimated interval count of :meth:`expand` over ``window``."""
        days = _lin(window[1]) - _lin(window[0]) + 1
        cost = len(self.patch_elements)
        if self.period and self.elements:
            cost += (days // self.period + 2) * len(self.elements)
        return cost

    def describe(self) -> str:
        """One-line summary for plans/explain output."""
        if self.period:
            text = f"period={self.period}d offsets={len(self.offsets)}"
        else:
            text = "finite"
        if self.patch_window is not None:
            width = self.patch_window[1] - self.patch_window[0] + 1
            text += f" patch={width}d/{len(self.patch)} runs"
        return text


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------

class _Fallback(Exception):
    """Raised when an expression cannot be proven eventually periodic."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class _Shape:
    """Conservative facts about a subexpression's coverage.

    ``period == 0`` with an extent is a purely finite set; ``period >
    0`` with an extent is eventually periodic (patch region needed);
    both unset never occurs.  ``span`` bounds the day length of any
    single coverage element (used for margins and extent padding).
    """

    period: int = 0
    extent: tuple | None = None
    span: int = 1


def _lcm0(a: int, b: int) -> int:
    """lcm treating 0 as the absorbing 'no periodic part'."""
    if a == 0:
        return b
    if b == 0:
        return a
    return a * b // gcd(a, b)


def _hull(*extents) -> tuple | None:
    present = [e for e in extents if e is not None]
    if not present:
        return None
    return (min(e[0] for e in present), max(e[1] for e in present))


def _pad(extent: tuple | None, amount: int) -> tuple | None:
    if extent is None:
        return None
    return (extent[0] - amount, extent[1] + amount)


class _Classifier:
    """AST walk deriving a :class:`_Shape` (or raising :class:`_Fallback`)."""

    def __init__(self, resolver, system, max_period: int) -> None:
        self.resolver = resolver
        self.system = system
        self.max_period = max_period
        self.max_span = 1
        # Deferred: repro.lang imports repro.core modules at import time;
        # pulling the AST in lazily keeps core -> lang acyclic.
        from repro.lang import ast
        from repro.lang.defs import BasicDef, DerivedDef, ExplicitDef
        self.ast = ast
        self.BasicDef = BasicDef
        self.DerivedDef = DerivedDef
        self.ExplicitDef = ExplicitDef

    def classify(self, node) -> _Shape:
        ast = self.ast
        if isinstance(node, ast.Name):
            return self._name(node)
        if isinstance(node, ast.ForEach):
            return self._foreach(node)
        if isinstance(node, ast.Select):
            return self._select(node)
        if isinstance(node, ast.LabelSelect):
            return self._label_select(node)
        if isinstance(node, ast.SetOp):
            return self._setop(node)
        if isinstance(node, ast.IntervalLit):
            return self._interval(node)
        if isinstance(node, ast.FunCall):
            if node.name.lower() == "flatten" and len(node.args) == 1 \
                    and isinstance(node.args[0], ast.Expr):
                # flatten only collapses order; coverage is unchanged.
                return self.classify(node.args[0])
            raise _Fallback(f"function call {node.name!r}")
        if isinstance(node, ast.Today):
            raise _Fallback("'today' is environment-dependent")
        raise _Fallback(f"unsupported node {type(node).__name__}")

    def _note_span(self, span: int) -> int:
        self.max_span = max(self.max_span, span)
        return span

    def _name(self, node) -> _Shape:
        definition = self.resolver(node.ident)
        if definition is None:
            raise _Fallback(f"unknown name {node.ident!r}")
        if isinstance(definition, self.BasicDef):
            facts = _BASIC_FACTS.get(definition.granularity)
            if facts is None:
                raise _Fallback(
                    f"granularity {definition.granularity} is outside the "
                    f"compilable basis")
            period, span = facts
            self._note_span(span)
            return _Shape(period=period, span=span)
        if isinstance(definition, self.ExplicitDef):
            values = definition.values
            if len(values) == 0:
                return _Shape(period=0, extent=(0, 0), span=1)
            hull = values.span()
            span = max((iv.hi - iv.lo + 1 for iv in values.iter_intervals()),
                       default=1)
            self._note_span(span)
            return _Shape(period=0,
                          extent=(_lin(hull.lo), _lin(hull.hi)), span=span)
        # A Name surviving factorization resolves to a multi-statement
        # derived script (or something stranger): not expandable.
        raise _Fallback(f"{node.ident!r} is not an inlinable definition")

    def _foreach(self, node) -> _Shape:
        if node.op in _UNBOUNDED_LOOKBACK:
            raise _Fallback(f"unbounded lookback relation {node.op!r}")
        left = self.classify(node.left)
        right = self.classify(node.right)
        span = left.span
        pad = left.span + right.span + 2
        if left.period == 0:
            # Members only exist near the left extent.
            return _Shape(period=0, extent=_pad(left.extent, pad),
                          span=span)
        if right.period == 0:
            # Groups only form near the (finite) reference extent.
            return _Shape(period=0, extent=_pad(right.extent, pad),
                          span=span)
        period = self._cap(_lcm0(left.period, right.period))
        extent = _hull(_pad(left.extent, pad), _pad(right.extent, pad))
        return _Shape(period=period, extent=extent, span=span)

    def _select(self, node) -> _Shape:
        # Positional selection is window-independent only inside the
        # groups of a bounded foreach; over anything order-1 the chosen
        # positions depend on the evaluation window.
        child = node.child
        if not isinstance(child, self.ast.ForEach):
            raise _Fallback("positional selection over a non-grouping "
                            "expression is window-dependent")
        return self.classify(child)

    def _label_select(self, node) -> _Shape:
        # Only year labels are unique along the axis; any other label
        # select picks the first match in the window.
        child = node.child
        if isinstance(child, self.ast.Name) and \
                isinstance(node.label, int):
            definition = self.resolver(child.ident)
            if isinstance(definition, self.BasicDef) and \
                    definition.granularity == Granularity.YEARS:
                lo, hi = self.system.epoch.days_of_year(node.label)
                self._note_span(366)
                return _Shape(period=0, extent=(_lin(lo), _lin(hi)),
                              span=366)
        raise _Fallback(f"label selection {node.label!r} is "
                        "window-dependent")

    def _setop(self, node) -> _Shape:
        left = self.classify(node.left)
        right = self.classify(node.right)
        span = max(left.span, right.span)
        if node.op == "&":
            if left.period == 0:
                return _Shape(period=0, extent=left.extent, span=span)
            if right.period == 0:
                return _Shape(period=0, extent=right.extent, span=span)
        elif node.op == "-":
            if left.period == 0:
                return _Shape(period=0, extent=left.extent, span=span)
        elif node.op != "+":
            raise _Fallback(f"set operator {node.op!r}")
        if node.op == "+" and left.period == 0 and right.period == 0:
            return _Shape(period=0, extent=_hull(left.extent, right.extent),
                          span=span)
        period = self._cap(_lcm0(left.period, right.period))
        return _Shape(period=period,
                      extent=_hull(left.extent, right.extent), span=span)

    def _interval(self, node) -> _Shape:
        lo, hi = _lin(node.lo), _lin(node.hi)
        span = max(1, hi - lo + 1)
        self._note_span(span)
        return _Shape(period=0, extent=(lo, hi), span=span)

    def _cap(self, period: int) -> int:
        if period > self.max_period:
            raise _Fallback(
                f"combined period {period} exceeds the bound "
                f"{self.max_period}")
        return period


# ---------------------------------------------------------------------------
# Compilation (oracle construction + flank verification)
# ---------------------------------------------------------------------------

def _expected_from_offsets(offsets, period: int, lo: int,
                           hi: int) -> list[tuple[int, int]]:
    """Coverage runs of the periodic tiling inside ``[lo, hi]``."""
    if not offsets or period == 0:
        return []
    out: list[tuple[int, int]] = []
    for block in range(lo // period - 1, hi // period + 1):
        base = block * period
        for a, b in offsets:
            ra, rb = base + a, base + b
            if rb < lo or ra > hi:
                continue
            out.append((max(ra, lo), min(rb, hi)))
    # Merge adjacency across block boundaries (a run wrapping the period
    # boundary is stored split).
    merged: list[tuple[int, int]] = []
    for a, b in out:
        if merged and a <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], b))
        else:
            merged.append((a, b))
    return merged


def _merge_adjacent(runs) -> list[tuple[int, int]]:
    merged: list[tuple[int, int]] = []
    for a, b in runs:
        if merged and a <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], b))
        else:
            merged.append((a, b))
    return merged


def _oracle_calendar(evaluate, lo_lin: int, hi_lin: int) -> Calendar:
    result = evaluate((_unlin(lo_lin), _unlin(hi_lin)))
    if not isinstance(result, Calendar):
        raise _Fallback("oracle evaluation did not produce a calendar")
    return result


def _element_offsets(cal: Calendar, lo: int, hi: int, base: int):
    """Order-1 element intervals with lo in ``[lo, hi]``, shifted by -base.

    Returns None when the result's element structure cannot be reused
    (higher order, labels, unsorted elements).
    """
    if cal.order != 1 or cal.labels is not None:
        return None
    out = []
    previous = None
    for iv in cal.elements:
        llo, lhi = _lin(iv.lo), _lin(iv.hi)
        if previous is not None and llo < previous:
            return None
        previous = llo
        if lo <= llo <= hi:
            out.append((llo - base, lhi - base))
    return out


def compile_expression_periodic(
        expr, *, system, resolver,
        evaluate: Callable[[tuple], Calendar],
        source: str = "",
        max_period: int = GREGORIAN_PERIOD_DAYS,
        max_eval_days: int = 220_000,
        reason_out: list | None = None) -> PeriodicSet | None:
    """Compile a factorized CEL AST to a :class:`PeriodicSet`.

    ``evaluate`` is the materialising oracle: a callable mapping an axis
    tick window to the expression's Calendar over that window (the
    registry passes its interpreter path).  Returns ``None`` — with the
    reason appended to ``reason_out`` — whenever the expression cannot
    be proven eventually periodic or the oracle windows would exceed
    ``max_eval_days``; the caller then stays on the materialising path.
    """
    try:
        return _compile(expr, system, resolver, evaluate, source,
                        max_period, max_eval_days)
    except _Fallback as fallback:
        if reason_out is not None:
            reason_out.append(fallback.reason)
        return None


def _compile(expr, system, resolver, evaluate, source, max_period,
             max_eval_days) -> PeriodicSet:
    classifier = _Classifier(resolver, system, max_period)
    shape = classifier.classify(expr)
    margin = 2 * classifier.max_span + 70

    offsets: tuple = ()
    elements: tuple = ()
    granularity = None
    exact = False
    period = shape.period

    if period:
        (offsets, elements, granularity,
         exact) = _compile_periodic_part(shape, margin, period, evaluate,
                                         max_eval_days)

    patch_window = None
    patch: tuple = ()
    patch_elements: tuple = ()
    if shape.extent is not None:
        (patch_window, patch, patch_elements, patch_gran,
         patch_exact) = _compile_patch(shape, margin, offsets, period,
                                       evaluate, max_eval_days)
        if period:
            exact = False  # hybrid: never substitute the plan backend
            patch_elements = ()
        else:
            granularity = patch_gran
            exact = patch_exact

    return PeriodicSet(period=period, offsets=offsets,
                       patch_window=patch_window, patch=patch,
                       elements=elements, patch_elements=patch_elements,
                       granularity=granularity, exact_elements=exact,
                       source=source)


def _compile_periodic_part(shape, margin, period, evaluate,
                           max_eval_days):
    """Anchor-evaluate one period plus flanks; extract + verify offsets."""
    flank = min(period, 2 * margin)
    base = margin + flank + 1
    if shape.extent is not None:
        base = max(base, shape.extent[1] + 2 * margin + 1)
    anchor = ((base + period - 1) // period) * period
    lo = anchor - margin - flank
    hi = anchor + period - 1 + margin + flank
    if hi - lo + 1 > max_eval_days:
        raise _Fallback(
            f"anchor window of {hi - lo + 1} days exceeds the "
            f"{max_eval_days}-day evaluation budget")
    calendar = _oracle_calendar(evaluate, lo, hi)
    runs = _coverage_runs(calendar)
    period_runs = _clip_runs(runs, anchor, anchor + period - 1)
    offsets = tuple((a - anchor, b - anchor) for a, b in period_runs)
    # Flank verification: the trusted interior of the oracle window is
    # [anchor - flank, anchor + period - 1 + flank]; both flanks must
    # reproduce the extracted residues exactly.
    for zone in ((anchor - flank, anchor - 1),
                 (anchor + period, anchor + period - 1 + flank)):
        if zone[0] > zone[1]:
            continue
        observed = _merge_adjacent(_clip_runs(runs, zone[0], zone[1]))
        expected = _expected_from_offsets(offsets, period, zone[0],
                                          zone[1])
        if observed != expected:
            raise _Fallback(
                "flank verification failed: the expression is not "
                f"{period}-day periodic near the anchor window")

    elements: tuple = ()
    exact = False
    if shape.extent is None:
        block = _element_offsets(calendar, anchor, anchor + period - 1,
                                 anchor)
        if block is not None:
            left = _element_offsets(calendar, anchor - flank, anchor - 1,
                                    anchor - period)
            right = _element_offsets(calendar, anchor + period,
                                     anchor + period - 1 + flank,
                                     anchor + period)
            head = [e for e in block if e[0] <= flank - 1]
            tail = [e for e in block if e[0] >= period - flank]
            if left == tail and right == head:
                elements = tuple(block)
                exact = True
    return offsets, elements, calendar.granularity, exact


def _compile_patch(shape, margin, offsets, period, evaluate,
                   max_eval_days):
    """Oracle-evaluate the finite region; verify it rejoins the period."""
    ext_lo, ext_hi = shape.extent
    patch_window = (ext_lo - margin, ext_hi + margin)
    lo = ext_lo - 3 * margin
    hi = ext_hi + 3 * margin
    if hi - lo + 1 > max_eval_days:
        raise _Fallback(
            f"patch window of {hi - lo + 1} days exceeds the "
            f"{max_eval_days}-day evaluation budget")
    calendar = _oracle_calendar(evaluate, lo, hi)
    runs = _coverage_runs(calendar)
    patch = tuple(_clip_runs(runs, patch_window[0], patch_window[1]))
    # Outside the patch window (but inside the trusted interior
    # [ext - 2*margin, ext + 2*margin]) the set must already equal the
    # periodic part — empty when there is none.
    for zone in ((ext_lo - 2 * margin, patch_window[0] - 1),
                 (patch_window[1] + 1, ext_hi + 2 * margin)):
        if zone[0] > zone[1]:
            continue
        observed = _merge_adjacent(_clip_runs(runs, zone[0], zone[1]))
        expected = _expected_from_offsets(offsets, period, zone[0],
                                          zone[1])
        if observed != expected:
            raise _Fallback(
                "patch verification failed: aperiodic coverage leaks "
                "outside the computed patch window")

    patch_elements: tuple = ()
    exact = False
    if period == 0:
        els = _element_offsets(calendar, patch_window[0] + 2,
                               patch_window[1] - 2, 0)
        count = len(calendar.elements) if calendar.order == 1 else -1
        if els is not None and count == len(els):
            # Every element of the oracle result lies strictly inside
            # the patch window, so overlap-filtering them reproduces
            # the materialised result under any evaluation window.
            patch_elements = tuple(els)
            exact = True
    return patch_window, patch, patch_elements, calendar.granularity, exact
