"""Mini-POSTGRES substrate: extensible types, storage, Postquel, indexes."""

from repro.db.database import Database
from repro.db.errors import (
    DatabaseError,
    DataTypeError,
    ExecutionError,
    IntegrityError,
    QueryError,
    RuleError,
    SchemaError,
)
from repro.db.executor import Executor, Result
from repro.db.index import IntervalIndex, OrderedIndex
from repro.db.ql.parser import parse_ql_expression, parse_statement
from repro.db.storage import Column, Relation, Schema
from repro.db.types import (
    ANY,
    DataType,
    FunctionRegistry,
    OperatorRegistry,
    TypeRegistry,
)

__all__ = [
    "Database", "Result", "Executor",
    "Column", "Schema", "Relation",
    "DataType", "TypeRegistry", "OperatorRegistry", "FunctionRegistry",
    "ANY", "OrderedIndex", "IntervalIndex",
    "parse_statement", "parse_ql_expression",
    "DatabaseError", "SchemaError", "DataTypeError", "QueryError",
    "ExecutionError", "IntegrityError", "RuleError",
]
