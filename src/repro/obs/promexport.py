"""Prometheus text exposition and OTLP-style JSON span export.

Two wire formats over the in-process observability state:

* :func:`render_prometheus` turns a
  :class:`~repro.obs.metrics.MetricsRegistry` into the Prometheus text
  exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` per
  metric, ``_total``-suffixed counters, and full histogram series with
  monotone cumulative ``_bucket{le="…"}`` lines ending in ``+Inf``.
* :func:`spans_to_otlp` turns finished :class:`~repro.obs.tracer.Span`
  trees (``Tracer.recent()``) into an OTLP/JSON-shaped document
  (``resourceSpans`` → ``scopeSpans`` → ``spans``) with deterministic
  ids and wall-clock-anchored nanosecond timestamps, so the trace ring
  can be shipped to any OTLP-compatible viewer.

Both are pure functions over snapshots — no locks are held while
rendering beyond the per-instrument snapshot reads.
"""

from __future__ import annotations

import math
import re
import time

from repro.obs.metrics import (Counter, CounterFamily, Gauge, GaugeFamily,
                               Histogram, HistogramFamily, MetricsRegistry,
                               escape_label_value)
from repro.obs.tracer import Span

__all__ = ["prometheus_name", "render_prometheus", "render_labels",
           "spans_to_otlp"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, namespace: str = "repro") -> str:
    """A valid Prometheus metric name for a dotted instrument name."""
    base = _NAME_RE.sub("_", name)
    if namespace:
        base = f"{_NAME_RE.sub('_', namespace)}_{base}"
    if base and base[0].isdigit():
        base = "_" + base
    return base


def _format_value(value: float) -> str:
    """A Prometheus-parseable rendering of a sample value."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == math.inf else repr(float(bound))


def _help_text(instrument) -> str:
    text = instrument.description or f"repro instrument {instrument.name}"
    # HELP lines may not contain raw newlines or backslashes.
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_labels(label_names: "tuple[str, ...]",
                  values: "tuple[str, ...]",
                  extra: str = "") -> str:
    """A ``{k="v",...}`` label block (empty string when no labels)."""
    parts = [f'{k}="{escape_label_value(v)}"'
             for k, v in zip(label_names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _exemplar_suffix(exemplar) -> str:
    """OpenMetrics exemplar annotation for one bucket line, or ''."""
    if exemplar is None:
        return ""
    value, trace_id, wall_ts = exemplar
    return (f' # {{trace_id="{escape_label_value(trace_id)}"}} '
            f"{_format_value(float(value))} {repr(float(wall_ts))}")


def _render_histogram_series(lines: "list[str]", pname: str,
                             histogram: Histogram, labels: str,
                             label_extra_open: str,
                             exemplars: bool) -> None:
    """Bucket/_sum/_count lines for one histogram series.

    ``labels`` is the rendered label block for _sum/_count;
    ``label_extra_open`` is the same block with a trailing comma ready
    for the ``le`` label to be appended (``'{tenant="x",'`` or ``'{'``).
    """
    examples = histogram.exemplars() if exemplars else {}
    for index, (bound, cumulative) in enumerate(
            histogram.cumulative_buckets()):
        suffix = _exemplar_suffix(examples.get(index))
        lines.append(f'{pname}_bucket{label_extra_open}le='
                     f'"{_format_bound(bound)}"}} {cumulative}{suffix}')
    lines.append(f"{pname}_sum{labels} {_format_value(histogram.sum)}")
    lines.append(f"{pname}_count{labels} {histogram.count}")


def render_prometheus(metrics: MetricsRegistry,
                      namespace: str = "repro",
                      exemplars: bool = True) -> str:
    """The registry's instruments in Prometheus text exposition format.

    Counters are exported with the conventional ``_total`` suffix,
    histograms as ``_bucket``/``_sum``/``_count`` series with cumulative
    (monotone non-decreasing) bucket counts ending in the mandatory
    ``le="+Inf"`` bucket.  Labelled families render one sample per child
    series under a single ``# HELP``/``# TYPE`` block, label values
    escaped per the exposition grammar.  Histogram buckets that hold a
    trace-tagged observation carry an OpenMetrics exemplar annotation
    (``# {trace_id="…"} value ts``) unless ``exemplars`` is False.
    """
    lines: list[str] = []
    for name in metrics.names():
        instrument = metrics.get(name)
        if isinstance(instrument, (Counter, CounterFamily)):
            pname = prometheus_name(name, namespace)
            if not pname.endswith("_total"):
                pname += "_total"
            lines.append(f"# HELP {pname} {_help_text(instrument)}")
            lines.append(f"# TYPE {pname} counter")
            if isinstance(instrument, Counter):
                lines.append(f"{pname} {_format_value(instrument.value)}")
            else:
                for values, child in sorted(instrument.series().items()):
                    labels = render_labels(instrument.label_names, values)
                    lines.append(
                        f"{pname}{labels} {_format_value(child.value)}")
        elif isinstance(instrument, (Gauge, GaugeFamily)):
            pname = prometheus_name(name, namespace)
            lines.append(f"# HELP {pname} {_help_text(instrument)}")
            lines.append(f"# TYPE {pname} gauge")
            if isinstance(instrument, Gauge):
                lines.append(f"{pname} {_format_value(instrument.value)}")
            else:
                for values, child in sorted(instrument.series().items()):
                    labels = render_labels(instrument.label_names, values)
                    lines.append(
                        f"{pname}{labels} {_format_value(child.value)}")
        elif isinstance(instrument, (Histogram, HistogramFamily)):
            pname = prometheus_name(name, namespace)
            lines.append(f"# HELP {pname} {_help_text(instrument)}")
            lines.append(f"# TYPE {pname} histogram")
            if isinstance(instrument, Histogram):
                _render_histogram_series(lines, pname, instrument,
                                         "", "{", exemplars)
            else:
                for values, child in sorted(instrument.series().items()):
                    labels = render_labels(instrument.label_names, values)
                    label_open = labels[:-1] + "," if labels else "{"
                    _render_histogram_series(lines, pname, child,
                                             labels, label_open, exemplars)
    return "\n".join(lines) + "\n" if lines else ""


# -- OTLP-style span export ----------------------------------------------------


def _otlp_value(value) -> dict:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _otlp_attributes(meta: dict) -> list:
    return [{"key": str(key), "value": _otlp_value(value)}
            for key, value in meta.items()]


def spans_to_otlp(spans: "list[Span]",
                  service_name: str = "repro") -> dict:
    """Finished span trees as an OTLP/JSON-shaped document.

    Span timestamps are :func:`time.perf_counter` readings; they are
    anchored to the wall clock with a single offset computed at export
    time, so cross-span *relative* timing is exact and absolute times
    are approximate (good enough for a trace viewer, not for auditing).
    Ids are deterministic counters — one trace id per root span.
    """
    offset = time.time() - time.perf_counter()

    def nanos(value: float | None) -> str:
        if value is None:
            return "0"
        return str(int((value + offset) * 1e9))

    flat: list[dict] = []
    next_id = 0

    def walk(span: Span, trace_id: str, parent_id: str) -> None:
        nonlocal next_id
        next_id += 1
        span_id = f"{next_id:016x}"
        entry = {
            "traceId": trace_id,
            "spanId": span_id,
            "name": span.name,
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": nanos(span.start),
            "endTimeUnixNano": nanos(span.end),
            "attributes": _otlp_attributes(span.meta),
            "status": ({"code": 2, "message": str(span.meta["error"])}
                       if "error" in span.meta else {"code": 0}),
        }
        if parent_id:
            entry["parentSpanId"] = parent_id
        flat.append(entry)
        for child in span.children:
            walk(child, trace_id, span_id)

    for index, root in enumerate(spans, start=1):
        walk(root, root.trace_id or f"{index:032x}", "")

    return {
        "resourceSpans": [{
            "resource": {"attributes": [
                {"key": "service.name",
                 "value": {"stringValue": service_name}},
            ]},
            "scopeSpans": [{
                "scope": {"name": "repro.obs"},
                "spans": flat,
            }],
        }],
    }
