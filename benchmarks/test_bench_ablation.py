"""Ablations: which optimisation buys what.

DESIGN.md calls out three design choices; each is ablated independently:

* **factorization** (the section 3.4 rewrite) — on/off;
* **window narrowing** (selection look-ahead) — on/off;
* **sorted-view candidate ranges** in ``foreach`` — exercised by feeding
  the same intervals sorted (fast path) vs shuffled (full-scan
  fallback).

The 2x2 factorize/narrow grid runs the Figure-2 expression over a 30-year
context; the enforced shape is monotone improvement in generated
intervals along both axes.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core import Calendar, Interval, foreach
from repro.lang import (
    EvalContext,
    PlanVM,
    compile_expression,
    expand,
    factorize,
    parse_expression,
)
from repro.lang.defs import basic_resolver

EXPRESSION = ("[1]/DAYS:during:WEEKS:during:"
              "[1]/MONTHS:during:1993/YEARS")
UNFACTORIZED = ("([1]/DAYS:during:WEEKS):during:"
                "(([1]/MONTHS:during:YEARS):during:1993/YEARS)")


def window_of(registry):
    lo, _ = registry.system.epoch.days_of_year(1987)
    _, hi = registry.system.epoch.days_of_year(2016)
    return lo, hi


def run_variant(registry, factorized: bool, narrowed: bool):
    window = window_of(registry)
    text = EXPRESSION if factorized else UNFACTORIZED
    expr = parse_expression(text)
    if factorized:
        expr = factorize(expr, basic_resolver).expression
    else:
        expr = expand(expr, basic_resolver)
    plan = compile_expression(expr, registry.system, basic_resolver,
                              context_window=window, narrow=narrowed)
    ctx = EvalContext(system=registry.system, resolver=basic_resolver,
                      window=window)
    result = PlanVM(ctx).run(plan)
    return result, ctx.stats["intervals_generated"]


@pytest.mark.parametrize("factorized", [False, True])
@pytest.mark.parametrize("narrowed", [False, True])
def test_grid_benchmark(benchmark, registry, factorized, narrowed):
    result, _ = benchmark(
        lambda: run_variant(registry, factorized, narrowed))


def test_report_ablation_grid(registry):
    print("\n=== Ablation: factorization x window narrowing "
          "(Mondays of January 1993, 30-year context)")
    print(f"{'factorize':>9} | {'narrow':>6} | {'intervals':>9} | "
          f"{'ms':>8}")
    grid = {}
    reference = None
    for factorized in (False, True):
        for narrowed in (False, True):
            t0 = time.perf_counter()
            result, intervals = run_variant(registry, factorized,
                                            narrowed)
            elapsed = (time.perf_counter() - t0) * 1e3
            grid[(factorized, narrowed)] = intervals
            if reference is None:
                reference = result.to_pairs()
            assert result.to_pairs() == reference
            print(f"{str(factorized):>9} | {str(narrowed):>6} | "
                  f"{intervals:>9} | {elapsed:>8.2f}")
    # Monotone improvement along both axes.
    assert grid[(True, False)] <= grid[(False, False)]
    assert grid[(False, True)] <= grid[(False, False)]
    assert grid[(True, True)] <= grid[(True, False)]
    assert grid[(True, True)] <= grid[(False, True)]
    assert grid[(True, True)] < grid[(False, False)] / 3


class TestSortedViewAblation:
    N = 20_000

    def _sorted_calendar(self):
        return Calendar.from_intervals([(d, d)
                                        for d in range(1, self.N + 1)])

    def _shuffled_calendar(self):
        days = list(range(1, self.N + 1))
        random.Random(7).shuffle(days)
        return Calendar.from_intervals([(d, d) for d in days])

    def test_sorted_fast_path(self, benchmark):
        cal = self._sorted_calendar()
        ref = Interval(self.N // 2, self.N // 2 + 100)
        result = benchmark(lambda: foreach("during", cal, ref))
        assert len(result) == 101

    def test_shuffled_full_scan(self, benchmark):
        cal = self._shuffled_calendar()
        ref = Interval(self.N // 2, self.N // 2 + 100)
        result = benchmark(lambda: foreach("during", cal, ref))
        assert len(result) == 101

    def test_report_sorted_vs_shuffled(self):
        ref = Interval(self.N // 2, self.N // 2 + 100)
        cal_sorted = self._sorted_calendar()
        cal_shuffled = self._shuffled_calendar()
        t0 = time.perf_counter()
        for _ in range(20):
            foreach("during", cal_sorted, ref)
        fast = (time.perf_counter() - t0) / 20 * 1e3
        t0 = time.perf_counter()
        for _ in range(20):
            foreach("during", cal_shuffled, ref)
        slow = (time.perf_counter() - t0) / 20 * 1e3
        print(f"\n=== Ablation: SortedView candidate ranges "
              f"(20k-instant calendar, 101-day probe)")
        print(f"   sorted (binary-searched): {fast:8.3f} ms")
        print(f"   shuffled (full scan):     {slow:8.3f} ms  "
              f"({slow / max(fast, 1e-9):.0f}x slower)")
        assert fast < slow
