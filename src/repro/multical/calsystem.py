"""MultiCal calendars and calendric systems (section 5).

MultiCal views a *calendar* as "a system of divisions of the time line"
— the Webster definition the paper quotes — rather than an extracted
list of intervals.  A :class:`MCCalendar` converts between chronons and
field representations (year/month/day …) and performs variable-span
arithmetic; a :class:`CalendricSystem` groups several calendars over one
epoch and handles input/output of temporal constants in per-calendar
formats, which is MultiCal's main concern.

Two concrete calendars are provided:

* :class:`GregorianMCCalendar` — the civil calendar;
* :class:`FiscalMCCalendar` — a fiscal year starting in an arbitrary
  month (the US federal fiscal year starts Oct 1), demonstrating that
  the *same chronon* renders differently per calendar ("FY1994 M1 D15"
  vs "Oct 15 1993").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chrono import (
    CivilDate,
    Epoch,
    MONTH_ABBREVS,
    days_in_month,
    parse_date,
)
from repro.core.errors import CalendarError
from repro.multical.types import MCEvent, MCInterval, MCSpan

__all__ = ["MCCalendar", "GregorianMCCalendar", "FiscalMCCalendar",
           "CalendricSystem"]


class MCCalendar:
    """Abstract MultiCal calendar: chronon <-> field conversion."""

    name = "abstract"

    def __init__(self, epoch: Epoch) -> None:
        self.epoch = epoch

    # -- conversion ---------------------------------------------------------

    def to_fields(self, chronon: int) -> dict:
        """Field representation (year/month/day) of a chronon."""
        raise NotImplementedError

    def from_fields(self, fields: dict) -> int:
        """Chronon of a field representation."""
        raise NotImplementedError

    def format(self, chronon: int) -> str:
        """Output format of a chronon in this calendar."""
        raise NotImplementedError

    def parse(self, text: str) -> int:
        """Input: parse this calendar's spelling into a chronon."""
        raise NotImplementedError

    # -- variable-span arithmetic --------------------------------------------

    def add_span(self, chronon: int, span: MCSpan) -> int:
        """Anchor a (possibly variable) span at a chronon."""
        result = chronon
        if span.months:
            result = self._add_months(result, span.months)
        if span.days:
            result = self.epoch.add_days(result, span.days)
        return result

    def _add_months(self, chronon: int, months: int) -> int:
        raise NotImplementedError


class GregorianMCCalendar(MCCalendar):
    """The civil calendar as a MultiCal calendar."""

    name = "gregorian"

    def to_fields(self, chronon: int) -> dict:
        date = self.epoch.date_of(chronon)
        return {"year": date.year, "month": date.month, "day": date.day}

    def from_fields(self, fields: dict) -> int:
        return self.epoch.day_number(
            CivilDate(fields["year"], fields["month"], fields["day"]))

    def format(self, chronon: int) -> str:
        return str(self.epoch.date_of(chronon))

    def parse(self, text: str) -> int:
        return self.epoch.day_number(parse_date(text))

    def _add_months(self, chronon: int, months: int) -> int:
        date = self.epoch.date_of(chronon)
        total = date.year * 12 + (date.month - 1) + months
        year, month0 = divmod(total, 12)
        month = month0 + 1
        day = min(date.day, days_in_month(year, month))
        return self.epoch.day_number(CivilDate(year, month, day))


class FiscalMCCalendar(MCCalendar):
    """A fiscal calendar: the year starts in ``start_month``.

    Fiscal year N covers ``start_month`` of civil year N-1 through the
    month before ``start_month`` of civil year N (the US convention:
    FY1994 = Oct 1 1993 .. Sep 30 1994).
    """

    name = "fiscal"

    def __init__(self, epoch: Epoch, start_month: int = 10) -> None:
        super().__init__(epoch)
        if not 2 <= start_month <= 12:
            raise CalendarError(
                "fiscal start month must be 2..12 (1 would be Gregorian)")
        self.start_month = start_month

    def _civil_to_fiscal(self, date: CivilDate) -> tuple[int, int, int]:
        if date.month >= self.start_month:
            fy = date.year + 1
            fm = date.month - self.start_month + 1
        else:
            fy = date.year
            fm = date.month + 12 - self.start_month + 1
        return fy, fm, date.day

    def _fiscal_to_civil(self, fy: int, fm: int, day: int) -> CivilDate:
        if not 1 <= fm <= 12:
            raise CalendarError(f"fiscal month out of range: {fm}")
        month = self.start_month + fm - 1
        year = fy - 1
        if month > 12:
            month -= 12
            year += 1
        return CivilDate(year, month, day)

    def to_fields(self, chronon: int) -> dict:
        fy, fm, day = self._civil_to_fiscal(self.epoch.date_of(chronon))
        return {"year": fy, "month": fm, "day": day}

    def from_fields(self, fields: dict) -> int:
        return self.epoch.day_number(self._fiscal_to_civil(
            fields["year"], fields["month"], fields["day"]))

    def format(self, chronon: int) -> str:
        fields = self.to_fields(chronon)
        return (f"FY{fields['year']} "
                f"M{fields['month']:02d} D{fields['day']:02d}")

    def parse(self, text: str) -> int:
        tokens = text.strip().split()
        try:
            fy = int(tokens[0].upper().removeprefix("FY"))
            fm = int(tokens[1].upper().removeprefix("M"))
            day = int(tokens[2].upper().removeprefix("D"))
        except (IndexError, ValueError):
            raise CalendarError(
                f"cannot parse fiscal date {text!r} "
                "(expected 'FY1994 M01 D15')") from None
        return self.from_fields({"year": fy, "month": fm, "day": day})

    def _add_months(self, chronon: int, months: int) -> int:
        fields = self.to_fields(chronon)
        total = fields["year"] * 12 + (fields["month"] - 1) + months
        fy, fm0 = divmod(total, 12)
        civil = self._fiscal_to_civil(fy, fm0 + 1, 1)
        day = min(fields["day"], days_in_month(civil.year, civil.month))
        return self.epoch.day_number(civil.replace(day=day))


@dataclass
class CalendricSystem:
    """A set of named calendars over one epoch (MultiCal's core object)."""

    epoch: Epoch

    def __post_init__(self) -> None:
        self._calendars: dict[str, MCCalendar] = {}
        self.register(GregorianMCCalendar(self.epoch))

    def register(self, calendar: MCCalendar, name: str | None = None
                 ) -> None:
        """Add a calendar to the system (under its name by default)."""
        self._calendars[(name or calendar.name).lower()] = calendar

    def calendar(self, name: str) -> MCCalendar:
        """The calendar registered under ``name`` (raises if unknown)."""
        try:
            return self._calendars[name.lower()]
        except KeyError:
            raise CalendarError(f"unknown MultiCal calendar {name!r}") \
                from None

    def names(self) -> list[str]:
        """Sorted registered calendar names."""
        return sorted(self._calendars)

    # -- temporal-constant I/O (MultiCal's main feature) -----------------------

    def input_event(self, text: str, calendar: str = "gregorian"
                    ) -> MCEvent:
        """Parse a temporal constant in the given calendar's format."""
        return MCEvent(self.calendar(calendar).parse(text), calendar)

    def output_event(self, event: MCEvent,
                     calendar: str | None = None) -> str:
        """Render an event (in its own or another calendar's format)."""
        return self.calendar(calendar or event.calendar).format(
            event.chronon)

    def input_interval(self, start_text: str, end_text: str,
                       calendar: str = "gregorian") -> MCInterval:
        """Parse an interval constant from two date spellings."""
        cal = self.calendar(calendar)
        return MCInterval(cal.parse(start_text), cal.parse(end_text))

    def output_interval(self, interval: MCInterval,
                        calendar: str = "gregorian") -> str:
        """Render an interval in a calendar's format."""
        cal = self.calendar(calendar)
        return f"[{cal.format(interval.start)} .. {cal.format(interval.end)}]"

    # -- arithmetic ----------------------------------------------------------

    def add(self, event: MCEvent, span: MCSpan) -> MCEvent:
        """``event + span`` under the event's own calendar semantics."""
        calendar = self.calendar(event.calendar)
        return MCEvent(calendar.add_span(event.chronon, span),
                       event.calendar)
