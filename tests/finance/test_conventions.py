"""Unit tests for day-count conventions (E11 support)."""

import pytest

from repro.core import CivilDate
from repro.finance import (
    Actual365Fixed,
    ActualActual,
    PAPER_BOND_CONVENTION,
    Thirty360,
)


class TestThirty360:
    def test_thirty_day_months(self):
        c = Thirty360()
        assert c.days(CivilDate(1993, 1, 15), CivilDate(1993, 2, 15)) == 30
        assert c.days(CivilDate(1993, 2, 15), CivilDate(1993, 3, 15)) == 30

    def test_year_fraction_with_365_basis(self):
        """The paper's convention: 30-day months, 365-day year."""
        c = Thirty360(year_basis=365)
        fraction = c.year_fraction(CivilDate(1993, 1, 1),
                                   CivilDate(1994, 1, 1))
        assert fraction == pytest.approx(360 / 365)

    def test_year_fraction_with_360_basis(self):
        c = Thirty360(year_basis=360)
        fraction = c.year_fraction(CivilDate(1993, 1, 1),
                                   CivilDate(1994, 1, 1))
        assert fraction == pytest.approx(1.0)

    def test_paper_convention_is_365(self):
        assert PAPER_BOND_CONVENTION.year_basis == 365


class TestActual365:
    def test_days_are_civil(self):
        c = Actual365Fixed()
        assert c.days(CivilDate(1993, 1, 15), CivilDate(1993, 2, 15)) == 31
        assert c.days(CivilDate(1988, 1, 1), CivilDate(1989, 1, 1)) == 366

    def test_year_fraction(self):
        c = Actual365Fixed()
        assert c.year_fraction(CivilDate(1993, 1, 1),
                               CivilDate(1993, 12, 31)) == \
            pytest.approx(364 / 365)


class TestActualActual:
    def test_same_year(self):
        c = ActualActual()
        assert c.year_fraction(CivilDate(1993, 1, 1),
                               CivilDate(1993, 12, 31)) == \
            pytest.approx(364 / 365)

    def test_leap_year_denominator(self):
        c = ActualActual()
        assert c.year_fraction(CivilDate(1988, 1, 1),
                               CivilDate(1988, 12, 31)) == \
            pytest.approx(365 / 366)

    def test_spanning_years(self):
        c = ActualActual()
        fraction = c.year_fraction(CivilDate(1993, 7, 1),
                                   CivilDate(1995, 7, 1))
        assert fraction == pytest.approx(2.0, abs=0.01)

    def test_negative_when_inverted(self):
        c = ActualActual()
        assert c.year_fraction(CivilDate(1994, 1, 1),
                               CivilDate(1993, 1, 1)) < 0


class TestConventionsDiffer:
    def test_same_dates_three_conventions(self):
        a, b = CivilDate(1993, 1, 15), CivilDate(1993, 7, 15)
        values = {
            "30/360-365": Thirty360(365).year_fraction(a, b),
            "30/360-360": Thirty360(360).year_fraction(a, b),
            "act/365": Actual365Fixed().year_fraction(a, b),
        }
        assert len(set(values.values())) == 3  # all distinct
