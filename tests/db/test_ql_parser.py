"""Unit tests for the Postquel-like query language parser."""

import pytest

from repro.db import QueryError, parse_ql_expression, parse_statement
from repro.db.ql.ast import (
    Append,
    BinOp,
    ColumnRef,
    Const,
    Delete,
    FuncCall,
    Replace,
    Retrieve,
    UnOp,
)


class TestRetrieve:
    def test_basic(self):
        stmt = parse_statement(
            "retrieve (s.name) from s in students")
        assert isinstance(stmt, Retrieve)
        assert stmt.targets[0].expr == ColumnRef("s", "name")
        assert stmt.range_vars[0].var == "s"
        assert stmt.range_vars[0].relation == "students"

    def test_multiple_targets_and_vars(self):
        stmt = parse_statement(
            "retrieve (s.name, c.title) from s in students, c in courses")
        assert len(stmt.targets) == 2
        assert len(stmt.range_vars) == 2

    def test_alias(self):
        stmt = parse_statement(
            "retrieve (s.hours * 2 as double_hours) from s in students")
        assert stmt.targets[0].name == "double_hours"

    def test_default_target_name(self):
        stmt = parse_statement("retrieve (s.name) from s in students")
        assert stmt.targets[0].name == "name"

    def test_where(self):
        stmt = parse_statement(
            "retrieve (s.name) from s in students where s.hours > 20")
        assert isinstance(stmt.where, BinOp)
        assert stmt.where.op == ">"

    def test_on_calendar_clause(self):
        stmt = parse_statement(
            'retrieve (s.price) from s in stock on expiration_date')
        assert stmt.on_calendar == "expiration_date"
        stmt2 = parse_statement(
            'retrieve (s.price) from s in stock on "[2]/DAYS:during:WEEKS"')
        assert stmt2.on_calendar == "[2]/DAYS:during:WEEKS"

    def test_no_from_clause(self):
        stmt = parse_statement("retrieve (day(\"Jan 1 1993\") as d)")
        assert stmt.range_vars == ()


class TestMutations:
    def test_append(self):
        stmt = parse_statement(
            'append students (name = "zoe", hours = 12)')
        assert isinstance(stmt, Append)
        assert stmt.relation == "students"
        assert stmt.assignments[0] == ("name", Const("zoe"))

    def test_replace(self):
        stmt = parse_statement(
            "replace s (hours = s.hours + 1) from s in students "
            "where s.name = \"al\"")
        assert isinstance(stmt, Replace)
        assert stmt.var == "s"
        assert stmt.assignments[0][0] == "hours"

    def test_delete(self):
        stmt = parse_statement(
            "delete s from s in students where s.hours < 1")
        assert isinstance(stmt, Delete)
        assert stmt.var == "s"

    def test_delete_implicit_range(self):
        stmt = parse_statement("delete students")
        assert stmt.var == "students"
        assert stmt.range_vars == ()


class TestExpressions:
    def test_precedence_and_or(self):
        expr = parse_ql_expression("a.x = 1 or a.y = 2 and a.z = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not(self):
        expr = parse_ql_expression("not a.x = 1")
        assert isinstance(expr, UnOp) and expr.op == "not"

    def test_arithmetic_precedence(self):
        expr = parse_ql_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_unary_minus(self):
        expr = parse_ql_expression("-5 + 2")
        assert expr.left == UnOp("-", Const(5))

    def test_comparisons(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            expr = parse_ql_expression(f"a.x {op} 3")
            assert expr.op == op

    def test_within(self):
        expr = parse_ql_expression('s.day within "Mondays"')
        assert expr.op == "within"
        assert expr.right == Const("Mondays")

    def test_string_concat(self):
        expr = parse_ql_expression('"a" || "b"')
        assert expr.op == "||"

    def test_function_call(self):
        expr = parse_ql_expression('member(s.day, "HOLIDAYS")')
        assert isinstance(expr, FuncCall)
        assert expr.name == "member"
        assert len(expr.args) == 2

    def test_booleans(self):
        assert parse_ql_expression("true") == Const(True)
        assert parse_ql_expression("false") == Const(False)

    def test_float_literal(self):
        assert parse_ql_expression("3.5") == Const(3.5)

    def test_single_quoted_string(self):
        assert parse_ql_expression("'abc'") == Const("abc")

    def test_parentheses(self):
        expr = parse_ql_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_comment(self):
        stmt = parse_statement(
            "retrieve (s.name) -- names only\nfrom s in students")
        assert isinstance(stmt, Retrieve)


class TestErrors:
    def test_unknown_statement(self):
        with pytest.raises(QueryError):
            parse_statement("select * from t")

    def test_trailing_garbage(self):
        with pytest.raises(QueryError):
            parse_statement("retrieve (s.x) from s in t extra")

    def test_missing_paren(self):
        with pytest.raises(QueryError):
            parse_statement("retrieve s.x from s in t")

    def test_bad_expression(self):
        with pytest.raises(QueryError):
            parse_ql_expression("1 +")

    def test_unterminated_string(self):
        with pytest.raises(QueryError):
            parse_ql_expression('"abc')

    def test_position_in_error(self):
        try:
            parse_statement("retrieve (s.name) frm s in t")
        except QueryError as exc:
            assert exc.line == 1
        else:
            raise AssertionError("expected QueryError")
