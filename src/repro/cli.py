r"""An interactive shell for calendars, queries and rules.

Run with ``python -m repro``.  Three kinds of input:

* **Postquel statements** (``retrieve …``, ``append …``, ``create table``,
  ``define rule`` …) execute against the session database;
* **calendar expressions** (anything else without a leading backslash,
  e.g. ``[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS``) evaluate over
  the session window and print civil dates;
* **backslash commands** control the session::

      \help                     this text
      \calendars                list the CALENDARS catalog
      \show NAME                Figure-1 style catalog record
      \define NAME { script }   define a calendar
      \window START .. END      set the evaluation window
      \cache [clear]            materialisation-cache stats (or clear it)
      \clock                    show the simulated clock
      \advance N                advance the clock N days (DBCRON fires)
      \rules                    list event and temporal rules
      \tables                   list relations
      \explain retrieve ...     show a query's execution strategy
      \save FILE / \load FILE   persist / restore the session database
      \quit                     leave

The session database starts with the standard calendars, US holidays, a
rule manager and a DBCRON daemon on a simulated clock.
"""

from __future__ import annotations

import sys

from repro.catalog import (
    CalendarRegistry,
    install_standard_calendars,
    install_us_holidays,
)
from repro.core import Calendar, CalendarSystem
from repro.core.errors import CalendarError
from repro.db import Database, DatabaseError
from repro.db.executor import Result
from repro.rules import DBCron, RuleManager, SimulatedClock

__all__ = ["Session", "main"]

_QL_KEYWORDS = ("retrieve", "append", "replace", "delete", "create",
                "drop", "define rule", "define calendar")


class Session:
    """One interactive session: database, clock, window, dispatch."""

    def __init__(self, epoch: str = "Jan 1 1987",
                 holiday_years: tuple[int, int] = (1987, 2016)) -> None:
        registry = CalendarRegistry(CalendarSystem.starting(epoch),
                                    default_horizon_years=30)
        install_standard_calendars(registry)
        install_us_holidays(registry, *holiday_years)
        self.db = Database(calendars=registry)
        self.registry = registry
        self.system = registry.system
        self.manager = RuleManager(self.db)
        self.clock = SimulatedClock(now=1)
        self.cron = DBCron(self.manager, self.clock, period=7)
        self.window: tuple | None = None

    # -- dispatch -----------------------------------------------------------

    def run_line(self, line: str) -> str:
        """Execute one input line; returns the printable response."""
        text = line.strip()
        if not text:
            return ""
        try:
            if text.startswith("\\"):
                return self._command(text[1:])
            lowered = text.lower()
            if any(lowered.startswith(k) for k in _QL_KEYWORDS):
                return self._render(self.db.execute(text))
            value = self.registry.eval_expression(text,
                                                  window=self.window)
            return self._render(value)
        except (CalendarError, DatabaseError) as exc:
            return f"error: {exc}"

    # -- rendering ------------------------------------------------------------

    def _render(self, value) -> str:
        if isinstance(value, Result):
            return value.to_table()
        if isinstance(value, Calendar):
            return self._render_calendar(value)
        return str(value)

    def _render_calendar(self, cal: Calendar) -> str:
        if cal.order != 1:
            lines = [f"order-{cal.order} calendar, "
                     f"{len(cal)} groups:"]
            for sub in cal.elements:
                lines.append("  " + self._one_line(sub.flatten()))
            return "\n".join(lines)
        return self._one_line(cal)

    def _one_line(self, cal: Calendar) -> str:
        parts = []
        for iv in cal.elements[:10]:
            if iv.is_instant():
                parts.append(str(self.system.date_of(iv.lo)))
            else:
                parts.append(f"{self.system.date_of(iv.lo)} .. "
                             f"{self.system.date_of(iv.hi)}")
        suffix = f"  (+{len(cal) - 10} more)" if len(cal) > 10 else ""
        return "; ".join(parts) + suffix if parts else "(empty)"

    # -- commands --------------------------------------------------------------

    def _command(self, text: str) -> str:
        parts = text.split(None, 1)
        command = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        if command in ("help", "h", "?"):
            return __doc__
        if command in ("quit", "q", "exit"):
            raise EOFError
        if command == "calendars":
            return "\n".join(self.registry.names())
        if command == "show":
            return self.registry.render(argument)
        if command == "define":
            name, _, script = argument.partition(" ")
            if not script.strip():
                return "usage: \\define NAME { script }"
            self.registry.define(name, script=script.strip(),
                                 replace=True)
            return f"defined calendar {name}"
        if command == "window":
            start, _, end = argument.partition("..")
            if not end:
                return "usage: \\window Jan 1 1993 .. Dec 31 1993"
            self.window = (start.strip(), end.strip())
            return f"window set to {self.window[0]} .. {self.window[1]}"
        if command == "cache":
            if argument.lower() == "clear":
                self.registry.matcache.clear()
                self.registry.matcache.reset_stats()
                return "materialisation cache cleared"
            if argument:
                return "usage: \\cache [clear]"
            stats = self.registry.cache_stats()
            return (f"materialisation cache: {stats['entries']} entries, "
                    f"{stats['memo_entries']} memo entries\n"
                    f"  hits {stats['hits']}  misses {stats['misses']}  "
                    f"extensions {stats['extensions']}  "
                    f"evictions {stats['evictions']}  "
                    f"hit ratio {stats['hit_ratio']:.1%}\n"
                    f"  intervals served {stats['served_intervals']}  "
                    f"generated {stats['generated_intervals']}\n"
                    f"  memo hits {stats['memo_hits']}  "
                    f"memo misses {stats['memo_misses']}")
        if command == "clock":
            return (f"clock at {self.system.date_of(self.clock.now)} "
                    f"(tick {self.clock.now})")
        if command == "advance":
            try:
                days = int(argument)
            except ValueError:
                return "usage: \\advance N"
            before = self.cron.stats.fires
            self.cron.run_until(self.clock.now + days)
            fired = self.cron.stats.fires - before
            return (f"clock at {self.system.date_of(self.clock.now)}; "
                    f"{fired} temporal rule firing(s)")
        if command == "rules":
            lines = [f"event    {name}: on {rule.event} to "
                     f"{rule.relation}"
                     for name, rule in self.manager.event_rules.items()]
            lines += [f"temporal {name}: {rule.expression_text}"
                      for name, rule in
                      self.manager.temporal_rules.items()]
            return "\n".join(lines) if lines else "(no rules)"
        if command == "tables":
            return "\n".join(self.db.relation_names())
        if command == "explain":
            if not argument:
                return "usage: \\explain retrieve (...) from ..."
            return self.db.explain(argument)
        if command == "save":
            from repro.db.persist import save_database
            report = save_database(self.db, argument)
            return (f"saved {report.relations} relations, "
                    f"{report.calendars} calendars, "
                    f"{report.event_rules + report.temporal_rules} rules")
        if command == "load":
            from repro.db.persist import load_database
            self.db = load_database(argument)
            self.registry = self.db.calendars
            self.system = self.registry.system
            self.manager = self.db.rule_manager or RuleManager(self.db)
            self.clock = SimulatedClock(now=1)
            self.cron = DBCron(self.manager, self.clock, period=7)
            return f"loaded {argument}"
        return f"unknown command \\{command} (try \\help)"


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    epoch = "Jan 1 1987"
    commands: list[str] = []
    while argv:
        arg = argv.pop(0)
        if arg in ("-e", "--epoch") and argv:
            epoch = argv.pop(0)
        elif arg in ("-c", "--command") and argv:
            commands.append(argv.pop(0))
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            print(f"unknown argument {arg!r}", file=sys.stderr)
            return 2
    session = Session(epoch=epoch)
    if commands:
        for command in commands:
            output = session.run_line(command)
            if output:
                print(output)
        return 0
    print(f"repro calendar shell — epoch {epoch}; \\help for help")
    while True:
        try:
            line = input("cal> ")
        except EOFError:
            print()
            return 0
        try:
            output = session.run_line(line)
        except EOFError:
            return 0
        if output:
            print(output)


if __name__ == "__main__":
    raise SystemExit(main())
