"""Property-based parity: the vectorized retrieve pipeline must agree
with the row-at-a-time engine on every query — same result multiset,
same row order under ``order by`` unique keys, and same error class when
a query raises — across random schemas, NULL columns, inverted
intervals, equi/overlap/valid-time predicate mixes and ``as of`` scans.
"""

from hypothesis import given, settings, strategies as st

from repro.catalog import CalendarRegistry, install_standard_calendars
from repro.core import CalendarSystem
from repro.db import Database
from repro.db import vector

_REGISTRY = None


def _registry() -> CalendarRegistry:
    """One shared registry — building it per example would dominate."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = CalendarRegistry(
            CalendarSystem.starting("Jan 1 1987"),
            default_horizon_years=5)
        install_standard_calendars(_REGISTRY)
    return _REGISTRY


# Row values: small ints so joins actually match, None for NULL
# semantics, and independently drawn interval endpoints so inverted
# (lo > hi) intervals appear and must take the sweep's scalar escape.
_key = st.one_of(st.none(), st.integers(min_value=0, max_value=4))
_tick = st.one_of(st.none(), st.integers(min_value=1, max_value=60))
_rows = st.lists(st.tuples(_key, _tick, _tick), max_size=10)


def _build(rows_a, rows_b, index_a, index_b) -> Database:
    db = Database(calendars=_registry())
    db.create_table("ta", [("k", "int4"), ("lo", "abstime"),
                           ("hi", "abstime")], valid_time_column="lo")
    db.create_table("tb", [("k", "int4"), ("lo", "abstime"),
                           ("hi", "abstime")])
    for k, lo, hi in rows_a:
        db.insert("ta", k=k, lo=lo, hi=hi)
    for k, lo, hi in rows_b:
        db.insert("tb", k=k, lo=lo, hi=hi)
    if index_a:
        db.create_index("ta", "k")
    if index_b:
        db.create_index("tb", "k")
    return db


def _run(db, query, bindings=None, ordered=False):
    """Outcome of one engine run: rows (sorted unless ordered) or the
    raised error class — errors must match across engines too."""
    try:
        rows = [repr(row) for row in db.execute(query, bindings).rows]
    except Exception as exc:
        return ("error", type(exc).__name__)
    return ("ok", rows if ordered else sorted(rows))


def _assert_parity(db, query, bindings=None, ordered=False):
    original = vector.set_enabled(True)
    try:
        vectorized = _run(db, query, bindings, ordered)
        vector.set_enabled(False)
        sequential = _run(db, query, bindings, ordered)
    finally:
        vector.set_enabled(original)
    assert vectorized == sequential, query


QUERIES = [
    # projection / single-variable filters (index probe when indexed)
    ("retrieve (a.k, a.lo, a.hi) from a in ta", None, False),
    ("retrieve (a.lo) from a in ta where a.k = 2", None, False),
    ("retrieve (a.lo) from a in ta where a.k = bound and a.lo > 10",
     {"bound": 1}, False),
    # batched calendar probe; raises on NULL ticks in both engines
    ('retrieve (a.lo) from a in ta where a.lo within "MONDAYS"',
     None, False),
    # single-variable interval predicate stays a scalar filter
    ("retrieve (a.k) from a in ta "
     "where overlaps(a.lo, a.hi, a.lo, a.hi)", None, False),
    # hash / merge equi join (merge when both sides fully indexed)
    ("retrieve (a.k, b.lo) from a in ta, b in tb where a.k = b.k",
     None, False),
    ("retrieve (a.k) from a in ta, b in tb "
     "where a.k = b.k and a.lo > 10 and b.hi < 50", None, False),
    # endpoint sweeps, incl. NULL and inverted intervals
    ("retrieve (a.lo, b.lo) from a in ta, b in tb "
     "where overlaps(a.lo, a.hi, b.lo, b.hi)", None, False),
    ("retrieve (a.lo, b.lo) from a in ta, b in tb "
     "where during(a.lo, a.hi, b.lo, b.hi)", None, False),
    # three variables: join fold plus a secondary edge filter
    ("retrieve (a.k) from a in ta, b in tb, c in tb "
     "where a.k = b.k and b.k = c.k and a.k = c.k", None, False),
    # valid-time restriction (NULL ticks silently excluded)
    ("retrieve (a.k, a.lo) from a in ta on MONDAYS", None, False),
    # aggregate fast path
    ("retrieve (count() as n) from a in ta, b in tb where a.k = b.k",
     None, False),
    # historical scan: both engines take the sequential path
    ("retrieve (a.k) from a in ta as of 1", None, False),
    # exact row order under a unique order-by key pair
    ("retrieve (a._tid as t1, b._tid as t2) from a in ta, b in tb "
     "where a.k = b.k order by t1, t2", None, True),
]


class TestVectorizedParity:
    @settings(max_examples=60, deadline=None)
    @given(rows_a=_rows, rows_b=_rows, index_a=st.booleans(),
           index_b=st.booleans())
    def test_engines_agree(self, rows_a, rows_b, index_a, index_b):
        db = _build(rows_a, rows_b, index_a, index_b)
        for query, bindings, ordered in QUERIES:
            _assert_parity(db, query, bindings, ordered)

    @settings(max_examples=30, deadline=None)
    @given(rows_a=_rows, deleted=st.sets(st.integers(0, 9)))
    def test_as_of_after_mutation(self, rows_a, deleted):
        db = _build(rows_a, [], True, False)
        relation = db.relation("ta")
        live = list(relation.scan())
        for i in sorted(deleted):
            if i < len(live):
                relation.delete(live[i]["_tid"])
        for xact in (1, db.current_xact()):
            _assert_parity(
                db, f"retrieve (a.k, a.lo) from a in ta as of {xact}")
        _assert_parity(db, "retrieve (a.k, a.lo) from a in ta")
