"""Temporal rules: ``On Calendar-Expression do Action`` (section 4).

A :class:`TemporalRule` triggers at every time point of a calendar
expression — e.g. ``On Every Tuesday do Proc_X`` with the calendar
expression ``{[2]/DAYS:during:WEEKS}``.  When declared, the expression is
parsed and factorized, an evaluation plan is compiled (exactly the
pipeline of section 3.4), and the *next trigger time point* is computed.
All of this is persisted by :class:`~repro.rules.tables.RuleTables` into
the RULE-INFO and RULE-TIME database tables that DBCRON probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.catalog.registry import CalendarRegistry
from repro.db.errors import RuleError
from repro.db.ql.ast import Statement
from repro.db.ql.parser import parse_statement
from repro.lang.errors import PlanError
from repro.lang.factorizer import factorize
from repro.lang.parser import parse_expression
from repro.lang.plan import Plan
from repro.lang.planner import compile_expression

__all__ = ["TemporalRule"]


@dataclass
class TemporalRule:
    """A parsed, compiled temporal rule."""

    name: str
    expression_text: str
    expression: object          # factorized AST
    plan: Plan | None
    #: Compiled periodic form (None = materialising fallback).  Purely
    #: informational on the rule: scheduling goes through
    #: ``registry.next_occurrence``, which re-derives the compiled form
    #: from the registry's own memo so catalog redefinitions are never
    #: served stale.
    periodic: object = None
    actions: tuple = ()
    callback: Callable | None = None
    enabled: bool = True
    #: Activation lifespan (inclusive axis ticks); the rule never
    #: triggers outside it.  None = always active.
    valid_between: tuple | None = None
    #: Catch-up policy when the clock jumps past several trigger points:
    #: "all" fires every missed point, "latest" only the most recent.
    catchup: str = "all"
    #: Owning tenant (admission-control and reporting key).
    tenant: str = "default"
    #: Shedding rank under overload: higher survives longer.
    priority: int = 0
    fire_count: int = field(default=0, init=False)
    last_fired: int | None = field(default=None, init=False)
    #: Fires shed by admission control (rescheduled without running).
    shed_count: int = field(default=0, init=False)

    @classmethod
    def define(cls, name: str, calendar_expression: str,
               registry: CalendarRegistry,
               actions: "Sequence[str] | None" = None,
               callback: Callable | None = None,
               valid_between: tuple | None = None,
               catchup: str = "all", tenant: str = "default",
               priority: int = 0) -> "TemporalRule":
        """Parse/factorize/plan a temporal rule declaration."""
        if not actions and callback is None:
            raise RuleError(f"temporal rule {name!r} has no action")
        if catchup not in ("all", "latest"):
            raise RuleError(f"unknown catch-up policy {catchup!r}")
        if valid_between is not None and \
                valid_between[0] > valid_between[1]:
            raise RuleError(f"inverted rule lifespan {valid_between}")
        # Parse/factorize/plan once per distinct expression text: at
        # alerting scale thousands of rules share a handful of calendar
        # expressions, and the compiled artifacts are immutable, so they
        # are memoised in the registry's cache (keyed on the catalog
        # version — a redefinition recompiles).
        compile_key = ("rule-compile", calendar_expression,
                       registry.memo_token, registry.version)
        cached = registry.matcache.memo_get(compile_key)
        if cached is not None:
            factored, plan = cached
        else:
            expr = parse_expression(calendar_expression)
            factored = factorize(expr, registry.resolver).expression
            try:
                plan = compile_expression(
                    factored, registry.system, registry.resolver,
                    context_window=registry.default_window)
            except PlanError:
                plan = None
            registry.matcache.memo_put(compile_key, (factored, plan))
        parsed_actions = tuple(
            a if isinstance(a, Statement) else parse_statement(a)
            for a in (actions or ()))
        # Warm the periodic compilation at declaration time (memoised in
        # the registry): every later next_trigger on a compiled rule is
        # then O(offsets) modular arithmetic with no window generation.
        pset = registry.periodic_set(calendar_expression)
        return cls(name=name, expression_text=calendar_expression,
                   expression=factored, plan=plan, periodic=pset,
                   actions=parsed_actions, callback=callback,
                   valid_between=valid_between, catchup=catchup,
                   tenant=tenant, priority=priority)

    # -- scheduling --------------------------------------------------------------

    def next_trigger(self, registry: CalendarRegistry, after: int,
                     horizon_days: int = 3700) -> int | None:
        """Next time point strictly after ``after`` at which to fire.

        Respects the activation lifespan: points before it are skipped,
        points after it end the schedule (returns None).  On a
        periodically compiled rule the registry answers by modular
        arithmetic (no window generation); either way the computed point
        is memoised in the registry's shared materialisation cache keyed
        on the registry version, so DBCRON re-probing an unchanged
        catalog after every fire costs one lookup.
        """
        key = ("rule-next", self.expression_text, after, horizon_days,
               self.valid_between, registry.memo_token, registry.version)
        cached = registry.matcache.memo_get(key)
        if cached is not None:
            return cached[0]
        tracer = registry.instrumentation.tracer
        if tracer is not None:
            with tracer.span("rule.next_trigger", rule=self.name,
                             after=after):
                result = self._next_trigger(registry, after, horizon_days)
        else:
            result = self._next_trigger(registry, after, horizon_days)
        registry.matcache.memo_put(key, (result,))
        return result

    def _next_trigger(self, registry: CalendarRegistry, after: int,
                      horizon_days: int) -> int | None:
        """The uncached :meth:`next_trigger` computation."""
        if self.valid_between is not None:
            lo, hi = self.valid_between
            if after < lo - 1:
                after = lo - 1 if lo - 1 != 0 else -1
            candidate = registry.next_occurrence(
                self.expression_text, after, horizon_days=horizon_days)
            if candidate is None or candidate > hi:
                return None
            return candidate
        return registry.next_occurrence(self.expression_text, after,
                                        horizon_days=horizon_days)

    # -- firing ------------------------------------------------------------------

    def fire(self, database, at_tick: int) -> None:
        """Run the rule's action at time point ``at_tick``.

        Postquel actions see a pseudo tuple variable ``now`` with columns
        ``t`` (the axis tick) and ``text`` (its civil-date spelling).
        """
        self.fire_count += 1
        self.last_fired = at_tick
        if self.callback is not None:
            self.callback(database, at_tick)
        if not self.actions:
            return
        bindings = {"now": {"t": at_tick,
                            "text": str(database.system.date_of(at_tick)),
                            "_tid": 0}}
        for action in self.actions:
            database._executor.execute(action, bindings)
