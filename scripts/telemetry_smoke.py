#!/usr/bin/env python
"""CI smoke: boot a telemetered session, scrape it, validate the scrape.

Exercises the telemetry acceptance path end to end, over a real socket:

1. boot a :class:`repro.Session` with ``REPRO_TELEMETRY_PORT`` (or
   ``--port``) and a forced-low slow-query threshold, tracing on;
2. run a 32-script ``eval_many`` batch (which feeds the per-script
   labelled latency family) plus a labelled workload with a hostile
   label value and a deliberately tiny ``max_series`` cap;
3. scrape ``/metrics`` and **fail on malformed exposition** — every
   sample line must parse (label escaping and OpenMetrics exemplar
   annotations included), every series needs ``# HELP``/``# TYPE``,
   histogram buckets must be cumulative and end in ``le="+Inf"`` equal
   to ``_count``;
4. assert the labelled series round-trip: the escaped label value
   appears, the series-cap collapse produced a ``tenant="other"``
   series and a non-zero ``series_dropped`` counter, and at least one
   histogram bucket carries a syntactically valid exemplar;
5. assert ``/healthz`` is 200/ok, ``/slowlog`` holds at least one
   record, ``/events`` saw the batch, ``/flamegraph`` serves parseable
   collapsed stacks, and a ``HEAD /metrics`` probe answers headers-only.

Exit code 0 on success, 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import json
import os
import re
import sys
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.session import Session  # noqa: E402 (path bootstrap first)

_VALUE = r"(?:[+-]?(?:\d+\.?\d*(?:e[+-]?\d+)?|Inf)|NaN)"
#: One sample line: name{labels} value, optionally followed by an
#: OpenMetrics exemplar (`` # {labels} value timestamp``).  Label blocks
#: allow any escaped content inside quoted values.
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?'
    rf' (?P<value>{_VALUE})'
    rf'(?P<exemplar> # \{{(?:[^"}}]|"(?:[^"\\]|\\.)*")*\}} {_VALUE}'
    rf'(?: {_VALUE})?)?$')


def _fail(message: str) -> "NoReturn":  # noqa: F821 (3.11+: typing only)
    print(f"telemetry smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as response:
        if response.status != 200:
            _fail(f"GET {url} -> {response.status}")
        return response.read()


def check_exposition(text: str) -> "tuple[int, int]":
    """Validate the whole scrape; (series seen, exemplars seen)."""
    if not text.endswith("\n"):
        _fail("exposition must end with a newline")
    typed: dict[str, str] = {}
    helped: set[str] = set()
    buckets: dict[str, list[tuple[str, int]]] = {}
    counts: dict[str, int] = {}
    exemplars = 0
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split(" ", 3)[2])
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            if kind not in ("counter", "gauge", "histogram"):
                _fail(f"unknown TYPE {kind!r}: {line!r}")
            typed[name] = kind
        elif line.startswith("#"):
            _fail(f"unexpected comment line: {line!r}")
        else:
            match = _SAMPLE_RE.match(line)
            if match is None:
                _fail(f"malformed sample line: {line!r}")
            name = match["name"]
            if match["exemplar"]:
                if not name.endswith("_bucket"):
                    _fail(f"exemplar outside a bucket line: {line!r}")
                exemplars += 1
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    base = name[: -len(suffix)]
            if base not in typed and name not in typed:
                _fail(f"sample without TYPE: {line!r}")
            if name.endswith("_bucket"):
                le = re.search(r'le="([^"]+)"', match["labels"] or "")
                if le is None:
                    _fail(f"bucket without le label: {line!r}")
                # Per-series bucket chains: key on the non-le labels so
                # labelled histogram families validate series by series.
                others = re.sub(r',?le="[^"]+"', "", match["labels"])
                key = f"{base}{{{others}}}"
                buckets.setdefault(key, []).append(
                    (le.group(1), int(match["value"])))
                counts.setdefault(key, -1)
            elif name.endswith("_count") and typed.get(base) == "histogram":
                others = match["labels"] or ""
                counts[f"{base}{{{others}}}"] = int(match["value"])
    for name, kind in typed.items():
        if name not in helped:
            _fail(f"series {name} has TYPE but no HELP")
    for key, series in buckets.items():
        if not series:
            _fail(f"histogram {key} has no buckets")
        values = [count for _, count in series]
        if values != sorted(values):
            _fail(f"histogram {key} buckets not cumulative: {values}")
        if series[-1][0] != "+Inf":
            _fail(f"histogram {key} does not end in +Inf")
        if series[-1][1] != counts.get(key):
            _fail(f"histogram {key}: +Inf bucket {series[-1][1]} != "
                  f"_count {counts.get(key)}")
    if not typed:
        _fail("empty exposition")
    return len(typed), exemplars


def check_flamegraph(text: str) -> int:
    """Validate collapsed-stack output; the number of stack lines."""
    lines = [line for line in text.splitlines() if line]
    for line in lines:
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            _fail(f"malformed collapsed-stack line: {line!r}")
    return len(lines)


def check_head(url: str) -> None:
    """A HEAD probe must answer headers-only with a body length."""
    request = urllib.request.Request(url, method="HEAD")
    with urllib.request.urlopen(request, timeout=10) as response:
        if response.status != 200:
            _fail(f"HEAD {url} -> {response.status}")
        if int(response.headers.get("Content-Length", 0)) <= 0:
            _fail("HEAD response missing Content-Length")
        if response.read() != b"":
            _fail("HEAD response carried a body")


def main() -> int:
    port = int(sys.argv[sys.argv.index("--port") + 1]) \
        if "--port" in sys.argv \
        else int(os.environ.get("REPRO_TELEMETRY_PORT", "0"))
    session = Session(telemetry_port=port, slow_query_threshold=0.0,
                      workers=4)
    try:
        server = session.server or session.start_telemetry_server(port)
        session.instrumentation.enable_tracing()  # exemplar source
        session.profiler.start()
        scripts = [f"[{i}]/DAYS:during:[1]/MONTHS:during:1993/YEARS"
                   for i in range(1, 17)]
        scripts += [f"[{i}]/WEEKS:during:1993/YEARS" for i in range(1, 17)]
        assert len(scripts) == 32
        results = session.eval_many(scripts)
        if len(results) != 32:
            _fail(f"eval_many returned {len(results)} results")

        # Labelled workload: a hostile label value (escaping) and a
        # tiny series cap (governor collapse), validated off the scrape.
        metrics = session.instrumentation.metrics
        hostile = metrics.counter("smoke.labelled",
                                  "smoke labelled workload",
                                  labels=("tenant",), max_series=4)
        hostile.labels('evil "tenant"\n\\1').inc()
        for i in range(50):
            hostile.labels(f"tenant-{i}").inc()

        text = _get(server.url + "/metrics").decode()
        series, exemplars = check_exposition(text)
        if r'tenant="evil \"tenant\"\n\\1"' not in text:
            _fail("escaped label value missing from exposition")
        if 'repro_smoke_labelled_total{tenant="other"}' not in text:
            _fail("series-cap collapse did not produce the other series")
        dropped = re.search(
            r"^repro_metrics_series_dropped_total (\d+)$", text, re.M)
        if dropped is None or int(dropped.group(1)) < 1:
            _fail("series_dropped counter missing or zero after collapse")
        if exemplars < 1:
            _fail("no exemplar annotations despite tracing being on")

        health = json.loads(_get(server.url + "/healthz"))
        if health["status"] != "ok":
            _fail(f"unhealthy: {health}")
        slowlog = json.loads(_get(server.url + "/slowlog"))
        if len(slowlog) < 1:
            _fail("no slow-query records despite forced-low threshold")
        events = json.loads(_get(server.url + "/events"))
        kinds = {event["kind"] for event in events}
        if "batch.finish" not in kinds:
            _fail(f"batch events missing from /events: {sorted(kinds)}")
        stacks = check_flamegraph(
            _get(server.url + "/flamegraph").decode())
        check_head(server.url + "/metrics")

        print(f"telemetry smoke OK: {series} series, "
              f"{exemplars} exemplar(s), {stacks} stack(s), "
              f"{len(slowlog)} slow-query record(s), "
              f"{len(events)} event(s), "
              f"{session.telemetry.dropped} dropped")
        return 0
    finally:
        session.close()


if __name__ == "__main__":
    raise SystemExit(main())
