"""DBCRON walk-through: the Figure 4 temporal-rule pipeline, visible.

Declares three temporal rules ("every Tuesday", "employment-figures days",
"quarter ends"), shows the RULE-INFO and RULE-TIME catalog tables they
produce, then advances the simulated clock through 1993 Q1 while the
daemon probes and fires.

Run with::

    python examples/dbcron_demo.py
"""

from repro import (
    CalendarRegistry,
    CalendarSystem,
    Database,
    DBCron,
    RuleManager,
    SimulatedClock,
)
from repro.catalog import install_standard_calendars, install_us_holidays


def main() -> None:
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=20)
    install_standard_calendars(registry)
    install_us_holidays(registry, 1987, 2006)
    db = Database(calendars=registry)
    system = db.system

    manager = RuleManager(db)
    clock = SimulatedClock(now=system.day_of("Jan 1 1993"))
    cron = DBCron(manager, clock, period=7)

    db.create_table("log", [("day", "abstime"), ("rule", "text")])
    registry.define("EMP_DAYS", script="""
        {LDOM_e = [n]/DAYS:during:MONTHS;
         LDOM_HOL = LDOM_e:intersects:HOLIDAYS;
         LAST_BUS = [n]/AM_BUS_DAYS:<:LDOM_HOL;
         return (LDOM_e - LDOM_HOL + LAST_BUS);}""",
        granularity="DAYS")

    for name, expression in [
            ("every_tuesday", "[2]/DAYS:during:WEEKS"),
            ("employment_figures", "EMP_DAYS"),
            ("quarter_end", "[n]/DAYS:during:caloperate(MONTHS, *; 3)")]:
        manager.declare_temporal(
            name, expression=expression,
            actions=[f'append log (day = now.t, rule = "{name}")'],
            after=clock.now)

    print("RULE-INFO after declaration (expression + compiled plan):")
    for row in db.execute(
            "retrieve (r.rulename, r.expression) from r in rule_info"):
        print(f"   {row['rulename']:20s} {row['expression']}")
    print()
    print("RULE-TIME (next trigger point per rule):")
    for row in db.execute(
            "retrieve (r.rulename, r.next_fire) from r in rule_time"):
        print(f"   {row['rulename']:20s} {system.date_of(row['next_fire'])}")
    print()

    print(f"Running DBCRON (probe period T = {cron.period} days) "
          "through Q1 1993 ...")
    cron.run_until(system.day_of("Apr 1 1993"))
    print(f"   probes: {cron.stats.probes}, fires: {cron.stats.fires}, "
          f"max schedule size: {cron.stats.max_heap_size}")
    print()

    print("Trigger log (last 12 entries):")
    rows = db.execute("retrieve (l.day, l.rule) from l in log").rows
    for row in rows[-12:]:
        print(f"   {system.date_of(row['day'])}: {row['rule']}")
    print()

    counts = db.execute(
        'retrieve (count()) from l in log where l.rule = "every_tuesday"')
    print("Tuesday firings in Q1 1993:", counts.rows[0]["count()"])
    counts = db.execute(
        'retrieve (count()) from l in log '
        'where l.rule = "employment_figures"')
    print("Employment-figures firings in Q1 1993:",
          counts.rows[0]["count()"])


if __name__ == "__main__":
    main()
